//! A minimal, deterministic stand-in for the parts of `rand` 0.8 that this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` convenience methods `gen`, `gen_range`, `gen_bool`, `gen_ratio`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — statistically
//! strong enough for the workloads and property tests here, and fully
//! deterministic per seed. The numeric stream differs from the real
//! crate's ChaCha-based `StdRng`, so absolute experiment outputs differ
//! from historical runs against crates.io `rand`, but all seed-determinism
//! properties are preserved.

/// Low-level RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable RNG interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64
    /// (same contract as the real crate: any `u64` is a valid seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Numeric types uniformly sampleable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                let draw = mul_shift(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let draw = mul_shift(rng.next_u64(), span as u64);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` by widening multiply (Lemire's
/// unbiased-enough-for-simulation reduction, without the rejection loop).
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + unit * (hi - lo)
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_range(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples via the [`Standard`] distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        // 53-bit unit draw is < 1.0 always, so p = 1.0 is always true and
        // p = 0.0 always false, while still consuming exactly one draw.
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        if numerator == denominator {
            return true;
        }
        mul_shift(self.next_u64(), u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A pathological all-zero state would be a fixed point.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// `use rand::prelude::*` compatibility.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let r = rng.gen_range(10u32..20);
            assert!((10..20).contains(&r));
            let ri = rng.gen_range(5u64..=5);
            assert_eq!(ri, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bernoulli_edge_cases_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_ratio(3, 3));
            assert!(!rng.gen_ratio(0, 5));
        }
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let mean = hits as f64 / 100_000.0;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
