//! A compact property-testing engine with the `proptest` API surface this
//! workspace uses: the `proptest!` macro, `prop_assert!`-family macros,
//! `ProptestConfig`, and strategies for numeric ranges, tuples, booleans
//! and `prop::collection::vec`.
//!
//! Cases are generated from a deterministic seed derived from the test's
//! module path and name, so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the fully rendered inputs.
//! `*.proptest-regressions` files are not replayed (their `cc` hashes are
//! seeds for the real crate's generator); shrunk regression inputs should
//! be pinned as explicit unit tests alongside the properties.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of generated values.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Constant strategy: always yields its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly random boolean (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Vector of values from an element strategy, with a length sampled
    /// from a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> VecStrategy<S> {
        pub(crate) fn new(element: S, len: Range<usize>) -> Self {
            VecStrategy { element, len }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case driving and failure reporting.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-property configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A property failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// A rejected case (`prop_assume!`); the runner skips it.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: format!("{}{}", REJECT_PREFIX, message.into()),
            }
        }

        pub(crate) fn is_rejection(&self) -> bool {
            self.message.starts_with(REJECT_PREFIX)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    const REJECT_PREFIX: &str = "\u{1}reject:";

    /// The deterministic per-case RNG: FNV-1a over the test path, mixed
    /// with the case index.
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Drives `cases` deterministic cases of `body`, panicking with the
    /// case number and rendered inputs on the first failure. `body` gets
    /// the per-case RNG and returns `(rendered_inputs, result)`.
    pub fn run(
        test_path: &str,
        config: &Config,
        mut body: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
    ) {
        let mut rejected = 0u32;
        for case in 0..config.cases {
            let mut rng = case_rng(test_path, case);
            let (inputs, result) = body(&mut rng);
            match result {
                Ok(()) => {}
                Err(e) if e.is_rejection() => rejected += 1,
                Err(e) => panic!(
                    "proptest property {test_path} failed at case {case}/{}:\n  {e}\ninputs:\n{inputs}",
                    config.cases
                ),
            }
        }
        assert!(
            rejected < config.cases,
            "proptest property {test_path}: every case was rejected by prop_assume!"
        );
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection`, `prop::bool`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// `Vec` strategy with element strategy `element` and a length in
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(element, len)
        }
    }

    pub mod bool {
        //! Boolean strategies.

        /// Uniformly random boolean.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
}

pub mod prelude {
    //! Everything the `proptest!` user needs in scope.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors the real crate's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0u64..9, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); ) => {};
    (@impl ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let path = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run(path, &config, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                let rendered = [
                    $(format!("  {} = {:?}", stringify!($arg), &$arg)),+
                ].join("\n");
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                (rendered, outcome)
            });
        }
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u32..17,
            f in -2.0f64..2.0,
            pair in (0u64..8, -4i64..4),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pair.0 < 8);
            prop_assert!((-4..4).contains(&pair.1));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for &e in &v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn bool_any_and_assume(b in prop::bool::ANY, x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_eq!(u32::from(b) <= 1, true);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::prop::collection::vec(0u64..100, 1..20);
        let mut a = crate::test_runner::case_rng("demo", 5);
        let mut b = crate::test_runner::case_rng("demo", 5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        crate::test_runner::run(
            "demo::always_fails",
            &crate::test_runner::Config::with_cases(3),
            |_rng| {
                (
                    "  x = 1".to_string(),
                    Err(crate::test_runner::TestCaseError::fail("boom")),
                )
            },
        );
    }
}
