//! Minimal Criterion-compatible harness: times each benchmark closure over
//! a warm-up pass plus `sample_size` timed samples and prints the mean
//! time per iteration. API surface matches what `crates/bench/benches/*`
//! uses; it is a timing loop, not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for call sites importing `criterion::black_box`.
pub use std::hint::black_box;

/// Per-sample iteration driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{id}"), self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the stub's timing loop is bounded by `sample_size` alone).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up sample (not recorded), then timed samples of one iteration
    // each — the workloads in this workspace are long enough per iteration
    // that multi-iteration samples would only slow the suite down.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        f(&mut bench);
        total += bench.elapsed;
        iters += bench.iters;
    }
    let per_iter = total.as_secs_f64() / iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "{label}: {:.3} ms/iter ({:.0} elem/s)",
            per_iter * 1e3,
            n as f64 / per_iter.max(1e-12)
        ),
        Some(Throughput::Bytes(n)) => println!(
            "{label}: {:.3} ms/iter ({:.1} MiB/s)",
            per_iter * 1e3,
            n as f64 / per_iter.max(1e-12) / (1024.0 * 1024.0)
        ),
        None => println!("{label}: {:.3} ms/iter", per_iter * 1e3),
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            });
        });
        group.finish();
        assert!(runs >= 4, "warm-up plus samples: {runs}");
    }
}
