//! Minimal stand-in for `crossbeam::channel`: an unbounded MPMC channel
//! with disconnect semantics, built on `Mutex` + `Condvar`.

pub mod channel {
    //! Multi-producer multi-consumer unbounded channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable across threads (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when every receiver has dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_within_channel() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded();
            let producer = thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let sum: u64 = (0..1000).map(|_| rx.recv().unwrap()).sum();
            producer.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn drained_before_disconnect_error() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
