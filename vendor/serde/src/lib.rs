//! Marker traits standing in for serde's `Serialize`/`Deserialize`.
//!
//! `use serde::{Serialize, Deserialize}` imports both the (empty) traits
//! and, with the `derive` feature, the same-named no-op derive macros —
//! exactly the import shape the real crate offers.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the vendored stub defines no serialization machinery.
pub trait Serialize {}

/// Marker trait; the vendored stub defines no deserialization machinery.
pub trait Deserialize<'de>: Sized {}
