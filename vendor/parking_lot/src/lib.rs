//! `parking_lot::Mutex` facade over `std::sync::Mutex`. Like the real
//! crate, `lock()` returns the guard directly (no poisoning surface —
//! a poisoned std mutex is unwrapped into its inner guard).

use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }
}
