//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives the serde traits for documentation value and
//! forward compatibility, but never serializes through them at runtime
//! (JSON output is hand-rolled). The stubs accept the inert `#[serde(...)]`
//! helper attribute and expand to nothing.

use proc_macro::TokenStream;

/// Derives nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
