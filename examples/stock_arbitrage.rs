//! Stock arbitrage monitoring — the paper's financial motivation.
//!
//! Bid and ask streams from multiple exchanges are cross-referenced to
//! spot price collisions (arbitrage candidates) in real time. Each
//! exchange feeds a different node; the distributed window join matches
//! bids against asks at the same integer price.
//!
//! The example also demonstrates the compression analysis of Section 5.3:
//! how many DFT coefficients a price stream really needs.
//!
//! ```text
//! cargo run --release --example stock_arbitrage
//! ```

use dsjoin::core::{Algorithm, ClusterConfig, TargetComplexity};
use dsjoin::dft::compress::choose_kappa;
use dsjoin::dft::CompressedDft;
use dsjoin::stream::gen::{price_series, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Part 1: how compressible is a price stream? ==");
    // A day of tick-level prices for one symbol (cf. Figures 5/6).
    let ticks = price_series(65_536, 7, 480.0, 0.012);
    let kappa = choose_kappa(&ticks, 0.25)?;
    println!("ticks                : {}", ticks.len());
    println!("max lossless kappa   : {kappa}");
    let c = CompressedDft::from_signal(&ticks, kappa)?;
    let stats = c.stats(&ticks);
    println!(
        "coefficients shipped : {} ({} bytes instead of {})",
        c.retained(),
        c.size_bytes(),
        ticks.len() * 8
    );
    println!("E[MSE]               : {:.4}", stats.mse);
    println!(
        "values exact after rounding: {:.1}%",
        100.0 * stats.lossless_fraction
    );

    println!("\n== Part 2: distributed bid/ask join across 6 exchanges ==");
    for (name, algorithm) in [("DFTT", Algorithm::Dftt), ("BASE", Algorithm::Base)] {
        let report = ClusterConfig::new(6, algorithm)
            .workload(WorkloadKind::Financial)
            .window(512)
            .domain(1 << 11)
            .tuples(18_000)
            .locality(0.7)
            .target(TargetComplexity::LogN)
            .seed(99)
            .run()?;
        println!(
            "{name:>5}: {:>7} arbitrage matches reported (eps {:.3}), {:>7} messages, {:.2} msgs/match",
            report.reported_matches, report.epsilon, report.messages, report.messages_per_result
        );
    }
    println!("\nDFTT finds nearly the same arbitrage windows with a fraction of the traffic.");
    Ok(())
}
