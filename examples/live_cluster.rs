//! The prototype mode: run the distributed join as real concurrent
//! threads, like the paper's C++ prototype, and compare against the
//! deterministic WAN simulation of the same configuration.
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```

use dsjoin::core::{Algorithm, ClusterConfig};
use dsjoin::runtime::LiveCluster;
use dsjoin::stream::gen::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::new(8, Algorithm::Dftt)
        .window(512)
        .domain(1 << 11)
        .tuples(40_000)
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        .seed(17);

    println!("== live threaded cluster (8 node threads, channel links) ==");
    let live = LiveCluster::run(&cfg)?;
    println!("exact result size   : {}", live.truth_matches);
    println!("reported            : {}", live.reported_matches);
    println!("epsilon             : {:.3}", live.epsilon);
    println!("messages            : {}", live.messages);
    println!("wall time           : {:?}", live.wall_time);
    println!("tuples/second (real): {:.0}", live.tuples_per_sec);

    println!("\n== same configuration under the simulated WAN ==");
    let sim = cfg.run()?;
    println!("epsilon             : {:.3}", sim.epsilon);
    println!("messages            : {}", sim.messages);
    println!(
        "virtual duration    : {:.2}s at 20-100ms latency / 90kbps links",
        sim.duration_secs
    );

    println!(
        "\nThe live cluster's error ({:.3}) lower-bounds the simulated WAN's ({:.3}):",
        live.epsilon, sim.epsilon
    );
    println!("with instant links nothing goes stale in flight, so what remains is the");
    println!("approximation itself — the routing decisions the DFT summaries make.");
    Ok(())
}
