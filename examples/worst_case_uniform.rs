//! The worst case: uniformly distributed join attributes.
//!
//! Theorem 1 says that with `T = 1` message per tuple under uniform data,
//! no distributed join algorithm can report more than `2/N` of the result —
//! every node holds an equal share of the partners, and a tuple can visit
//! only one of them. This example measures a cluster against that bound
//! and shows the worst-case detector firing (Section 5.2.2): the nodes
//! notice the flat correlation profile and switch to round-robin.
//!
//! ```text
//! cargo run --release --example worst_case_uniform
//! ```

use dsjoin::core::theory;
use dsjoin::core::{Algorithm, ClusterConfig, TargetComplexity};
use dsjoin::stream::gen::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>10}",
        "N", "measured", "bound(T=1)", "bnd(T=logN)", "fallback"
    );
    for n in [4u16, 8, 12, 16] {
        let report = ClusterConfig::new(n, Algorithm::Dft)
            .workload(WorkloadKind::Uniform)
            .locality(0.0) // no geographic structure at all
            .window(384)
            .domain(1 << 10)
            .tuples(12_000)
            .target(TargetComplexity::Constant(1.0))
            .seed(4)
            .run()?;
        println!(
            "{:>3} {:>12.3} {:>12.3} {:>12.3} {:>9.1}%",
            n,
            report.epsilon,
            theory::uniform_error_bound_t1(n),
            theory::uniform_error_bound_tlog(n),
            100.0 * report.fallback_fraction,
        );
    }
    println!("\nMeasured error tracks the Theorem 1 bound (1 - 2/N): the tuple finds its");
    println!("local partners plus one round-robin remote visit. Raising the budget to");
    println!("T = log N buys the Theorem 2 line; only data skew can do better.");

    // Show the log N operating point too.
    println!();
    for n in [4u16, 8, 16] {
        let report = ClusterConfig::new(n, Algorithm::Dft)
            .workload(WorkloadKind::Uniform)
            .locality(0.0)
            .window(384)
            .domain(1 << 10)
            .tuples(12_000)
            .target(TargetComplexity::LogN)
            .seed(4)
            .run()?;
        println!(
            "N={n:>2} T=logN: measured eps {:.3} vs bound {:.3}",
            report.epsilon,
            theory::uniform_error_bound_tlog(n)
        );
    }
    Ok(())
}
