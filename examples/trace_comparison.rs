//! Record a workload once, replay it against every algorithm, and render
//! the side-by-side comparison — the workflow the paper's evaluation used
//! with its recorded FIN/NWRK traces.
//!
//! ```text
//! cargo run --release --example trace_comparison
//! ```

use dsjoin::core::report::compare;
use dsjoin::core::{Algorithm, ClusterConfig};
use dsjoin::stream::gen::WorkloadKind;
use dsjoin::stream::trace::Trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record one network-monitoring workload to a trace file.
    let base_cfg = ClusterConfig::new(8, Algorithm::Base)
        .window(512)
        .domain(1 << 11)
        .tuples(20_000)
        .workload(WorkloadKind::Network)
        .seed(31);
    let trace = Trace::from_arrivals(base_cfg.arrivals());
    let path = std::env::temp_dir().join("dsjoin-nwrk.trace");
    trace.save(&path)?;
    println!(
        "recorded {} arrivals to {} ({} bytes)\n",
        trace.len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // Replay the identical trace through all five algorithms.
    let loaded = Trace::load(&path)?;
    let reports: Vec<_> = Algorithm::ALL
        .into_iter()
        .map(|alg| {
            ClusterConfig::new(8, alg)
                .window(512)
                .domain(1 << 11)
                .workload(WorkloadKind::Network)
                .seed(31)
                .with_trace(loaded.clone())
                .run()
        })
        .collect::<Result<_, _>>()?;

    println!("all five algorithms over the SAME recorded packet trace:\n");
    print!("{}", compare(&reports));
    println!("\n(every run consumed identical arrivals — differences are purely algorithmic)");
    std::fs::remove_file(&path).ok();
    Ok(())
}
