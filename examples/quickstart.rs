//! Quickstart: run one distributed approximate join and read its report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsjoin::core::{Algorithm, ClusterConfig};
use dsjoin::stream::gen::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-node cluster answering R ⋈ S over Zipf-skewed keys, using the
    // paper's best algorithm: DFT flow filtering + tuple matching (DFTT).
    let report = ClusterConfig::new(8, Algorithm::Dftt)
        .window(512) // W tuples per stream per node
        .domain(1 << 11) // join attribute domain
        .tuples(16_000) // total stream length
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        .locality(0.8) // geographic skew: tuples mostly land on their key-range owner
        .seed(1)
        .run()?;

    println!("algorithm            : {}", report.algorithm);
    println!("nodes                : {}", report.n);
    println!("exact result size    : {}", report.truth_matches);
    println!("reported results     : {}", report.reported_matches);
    println!("epsilon (Eqn. 1)     : {:.3}", report.epsilon);
    println!("messages transmitted : {}", report.messages);
    println!("messages per result  : {:.2}", report.messages_per_result);
    println!("avg msgs per tuple   : {:.2}", report.msgs_per_tuple);
    println!(
        "coefficient overhead : {:.2}%",
        100.0 * report.overhead_ratio
    );
    println!("throughput           : {:.0} results/s", report.throughput);

    // Compare with the exact broadcast baseline: same workload, N-1
    // messages per tuple, near-zero error.
    let base = ClusterConfig::new(8, Algorithm::Base)
        .window(512)
        .domain(1 << 11)
        .tuples(16_000)
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        .locality(0.8)
        .seed(1)
        .run()?;
    println!(
        "\nBASE sends {:.1}x the messages for {:.1}% lower error",
        base.messages as f64 / report.messages as f64,
        100.0 * (report.epsilon - base.epsilon)
    );
    Ok(())
}
