//! Distributed network-traffic cross-referencing — the paper's security
//! motivation: tracking malicious packets flowing across multiple domains.
//!
//! Packet streams observed at different vantage points are joined on the
//! flow identifier; a flow seen at two monitors within the window is a
//! cross-domain correlation hit. NWRK traffic is bursty and heavy-tailed,
//! so membership-based routing (DFTT/BLOOM) shines: most flows are local,
//! and only the heavy hitters cross domains.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```

use dsjoin::core::{Algorithm, ClusterConfig};
use dsjoin::stream::gen::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("monitoring 10 network domains, bursty heavy-tailed flows (NWRK)\n");
    println!(
        "{:>6} {:>9} {:>8} {:>10} {:>10} {:>9}",
        "algo", "matches", "eps", "messages", "msgs/res", "fallback"
    );
    let mut base_msgs = 0u64;
    for algorithm in [
        Algorithm::Base,
        Algorithm::Dft,
        Algorithm::Dftt,
        Algorithm::Bloom,
        Algorithm::Sketch,
    ] {
        let report = ClusterConfig::new(10, algorithm)
            .workload(WorkloadKind::Network)
            .window(512)
            .domain(1 << 12)
            .tuples(20_000)
            .locality(0.8)
            .kappa(64)
            .seed(2025)
            .run()?;
        if algorithm == Algorithm::Base {
            base_msgs = report.messages;
        }
        println!(
            "{:>6} {:>9} {:>8.3} {:>10} {:>10.2} {:>8.1}%",
            report.algorithm.label(),
            report.reported_matches,
            report.epsilon,
            report.messages,
            report.messages_per_result,
            100.0 * report.fallback_fraction,
        );
    }
    println!("\n(BASE transmits {base_msgs} messages; the approximate algorithms trade a bounded");
    println!("fraction of cross-domain hits for an order of magnitude less traffic.)");
    Ok(())
}
