//! # dsjoin — approximate data stream joins in distributed systems
//!
//! Umbrella crate re-exporting the `dsjoin` workspace: a Rust reproduction
//! of *"Approximate Data Stream Joins in Distributed Systems"* (Kriakov,
//! Delis, Kollios — ICDCS 2007).
//!
//! The system answers sliding-window join queries `R ⋈ S` over streams
//! partitioned across `N` nodes while holding per-tuple message complexity
//! between `O(1)` and `O(log N)`, using incrementally maintained, compressed
//! discrete Fourier transforms as the inter-node summary.
//!
//! | Sub-crate | Contents |
//! |---|---|
//! | [`dft`] | complex numbers, FFT, incremental DFT, compression, spectra |
//! | [`sketch`] | AGMS sketches and counting Bloom filters (baselines) |
//! | [`stream`] | tuples, sliding windows, exact window join, workload generators |
//! | [`simnet`] | discrete-event WAN simulator (latency + bandwidth model) |
//! | [`core`] | the distributed approximate-join algorithms and experiment runner |
//! | [`runtime`] | the same nodes as live threads over channels (prototype mode) |
//!
//! # Quickstart
//!
//! ```
//! use dsjoin::core::{ClusterConfig, Algorithm};
//! use dsjoin::stream::gen::WorkloadKind;
//!
//! let report = ClusterConfig::new(4, Algorithm::Dftt)
//!     .window(1024)
//!     .domain(1 << 12)
//!     .tuples(2_000)
//!     .seed(7)
//!     .workload(WorkloadKind::Zipf { alpha: 0.4 })
//!     .run()?;
//! assert!(report.epsilon <= 1.0);
//! # Ok::<(), dsjoin::core::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use dsj_core as core;
pub use dsj_dft as dft;
pub use dsj_runtime as runtime;
pub use dsj_simnet as simnet;
pub use dsj_sketch as sketch;
pub use dsj_stream as stream;
