//! Argument parsing for the `dsjoin` command-line tool.
//!
//! Hand-rolled (the workspace's dependency policy admits no CLI crates) but
//! complete: every [`ClusterConfig`] knob is reachable as a `--flag value`
//! pair, and errors point at the offending token.

use dsj_core::{Algorithm, ClusterConfig, TargetComplexity};
use dsj_simnet::LinkConfig;
use dsj_stream::gen::WorkloadKind;
use std::fmt;

/// A CLI parsing failure: what was wrong and with which token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// The usage text printed by `dsjoin --help`.
pub const USAGE: &str = "\
dsjoin — distributed approximate stream joins (ICDCS 2007 reproduction)

USAGE:
    dsjoin [OPTIONS]

OPTIONS:
    --algo <base|dft|dftt|bloom|skch>   algorithm            [default: dftt]
    --nodes <N>                         cluster size         [default: 8]
    --window <W>                        tuples per window    [default: 1024]
    --domain <D>                        attribute domain     [default: 4096]
    --tuples <T>                        stream length        [default: 20000]
    --workload <uni|zipf|fin|nwrk>      workload             [default: zipf]
    --alpha <A>                         Zipf skew            [default: 0.4]
    --locality <L>                      geographic locality  [default: 0.8]
    --kappa <K>                         compression factor   [default: 256]
    --target <T|logn>                   msgs/tuple budget    [default: 1]
    --rate <R>                          arrivals/s per node  [default: 200]
    --budget-bps <B>                    bandwidth governor   [off]
    --loss <P>                          link loss prob       [default: 0]
    --time-window-ms <MS>               time-based windows   [off]
    --seed <S>                          master seed          [default: 42]
    --calibrate <EPS>                   tune budget to an error rate
    --help                              print this text
";

/// What a parsed invocation asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print [`USAGE`].
    Help,
    /// Run one experiment.
    Run {
        /// The configuration to run.
        config: Box<ClusterConfig>,
        /// Calibrate the budget to this error rate first, if set.
        calibrate: Option<f64>,
    },
}

/// Parses CLI arguments (without the program name).
///
/// # Errors
///
/// [`CliError`] describing the first unknown flag, missing value, or
/// malformed number.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut cfg = ClusterConfig::new(8, Algorithm::Dftt);
    let mut alpha = 0.4f64;
    let mut workload: Option<String> = None;
    let mut calibrate = None;
    let mut loss = 0.0f64;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(Command::Help);
        }
        let mut value = || {
            it.next()
                .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--algo" => {
                cfg.algorithm = match value()?.to_ascii_lowercase().as_str() {
                    "base" => Algorithm::Base,
                    "dft" => Algorithm::Dft,
                    "dftt" => Algorithm::Dftt,
                    "bloom" => Algorithm::Bloom,
                    "skch" | "sketch" => Algorithm::Sketch,
                    other => return Err(CliError::new(format!("unknown algorithm '{other}'"))),
                };
            }
            "--nodes" => cfg.n = parse_num(flag, value()?)?,
            "--window" => cfg.window = parse_num(flag, value()?)?,
            "--domain" => cfg.domain = parse_num(flag, value()?)?,
            "--tuples" => cfg.tuples = parse_num(flag, value()?)?,
            "--workload" => workload = Some(value()?.clone()),
            "--alpha" => alpha = parse_num(flag, value()?)?,
            "--locality" => cfg.locality = parse_num(flag, value()?)?,
            "--kappa" => cfg.kappa = parse_num(flag, value()?)?,
            "--target" => {
                let v = value()?;
                cfg.target = if v.eq_ignore_ascii_case("logn") {
                    TargetComplexity::LogN
                } else {
                    TargetComplexity::Constant(parse_num(flag, v)?)
                };
            }
            "--rate" => cfg.arrival_rate = parse_num(flag, value()?)?,
            "--budget-bps" => cfg.bandwidth_budget_bps = Some(parse_num(flag, value()?)?),
            "--loss" => loss = parse_num(flag, value()?)?,
            "--time-window-ms" => cfg.time_window_ms = Some(parse_num(flag, value()?)?),
            "--seed" => cfg.seed = parse_num(flag, value()?)?,
            "--calibrate" => calibrate = Some(parse_num(flag, value()?)?),
            other => return Err(CliError::new(format!("unknown flag '{other}'"))),
        }
    }
    cfg.workload = match workload.as_deref().map(str::to_ascii_lowercase).as_deref() {
        None | Some("zipf") => WorkloadKind::Zipf { alpha },
        Some("uni") | Some("uniform") => WorkloadKind::Uniform,
        Some("fin") | Some("financial") => WorkloadKind::Financial,
        Some("nwrk") | Some("network") => WorkloadKind::Network,
        Some(other) => return Err(CliError::new(format!("unknown workload '{other}'"))),
    };
    if loss > 0.0 {
        if !(0.0..=1.0).contains(&loss) {
            return Err(CliError::new("--loss must be in [0, 1]"));
        }
        cfg.link = LinkConfig::paper_wan().with_loss(loss);
    }
    Ok(Command::Run {
        config: Box::new(cfg),
        calibrate,
    })
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| CliError::new(format!("{flag}: cannot parse '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let Command::Run { config, calibrate } = parse(&[]).unwrap() else {
            panic!("expected a run");
        };
        assert_eq!(config.algorithm, Algorithm::Dftt);
        assert_eq!(config.n, 8);
        assert!(calibrate.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let Command::Run { config, calibrate } = parse(&args(
            "--algo bloom --nodes 12 --window 256 --domain 2048 --tuples 5000 \
             --workload nwrk --locality 0.6 --kappa 64 --target logn --rate 800 \
             --budget-bps 50000 --loss 0.1 --time-window-ms 500 --seed 9 --calibrate 0.15",
        ))
        .unwrap() else {
            panic!("expected a run");
        };
        assert_eq!(config.algorithm, Algorithm::Bloom);
        assert_eq!(config.n, 12);
        assert_eq!(config.window, 256);
        assert_eq!(config.domain, 2048);
        assert_eq!(config.tuples, 5000);
        assert_eq!(config.workload, WorkloadKind::Network);
        assert_eq!(config.kappa, 64);
        assert_eq!(config.target, TargetComplexity::LogN);
        assert_eq!(config.bandwidth_budget_bps, Some(50_000));
        assert_eq!(config.time_window_ms, Some(500));
        assert!((config.link.loss_prob() - 0.1).abs() < 1e-9);
        assert_eq!(config.seed, 9);
        assert_eq!(calibrate, Some(0.15));
    }

    #[test]
    fn zipf_alpha_applies() {
        let Command::Run { config, .. } = parse(&args("--workload zipf --alpha 0.9")).unwrap()
        else {
            panic!("expected a run");
        };
        assert_eq!(config.workload, WorkloadKind::Zipf { alpha: 0.9 });
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--algo dft -h")).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_specific() {
        assert!(parse(&args("--nodes"))
            .unwrap_err()
            .to_string()
            .contains("requires a value"));
        assert!(parse(&args("--nodes abc"))
            .unwrap_err()
            .to_string()
            .contains("cannot parse"));
        assert!(parse(&args("--algo quantum"))
            .unwrap_err()
            .to_string()
            .contains("unknown algorithm"));
        assert!(parse(&args("--frobnicate 3"))
            .unwrap_err()
            .to_string()
            .contains("unknown flag"));
        assert!(parse(&args("--loss 2.0"))
            .unwrap_err()
            .to_string()
            .contains("[0, 1]"));
    }
}
