//! `dsjoin` — run one distributed approximate-join experiment from the
//! command line. See `dsjoin --help`.

use dsjoin::cli::{parse, Command, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (config, calibrate) = match command {
        Command::Help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Command::Run { config, calibrate } => (config, calibrate),
    };

    let outcome = match calibrate {
        Some(eps) => config.run_at_epsilon(eps).map(|(report, target)| {
            println!("# calibrated message-complexity target: {target:.2}");
            report
        }),
        None => config.run(),
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("algorithm            : {}", report.algorithm);
    println!("workload             : {}", report.workload);
    println!("nodes                : {}", report.n);
    println!(
        "window / domain      : {} / {}",
        report.window, report.domain
    );
    println!("tuples               : {}", report.tuples);
    println!("exact result size    : {}", report.truth_matches);
    println!("reported results     : {}", report.reported_matches);
    println!("epsilon              : {:.4}", report.epsilon);
    println!("messages             : {}", report.messages);
    println!("messages per result  : {:.3}", report.messages_per_result);
    println!("msgs per tuple       : {:.3}", report.msgs_per_tuple);
    println!(
        "bytes (data+summary) : {} ({} + {})",
        report.bytes, report.data_bytes, report.overhead_bytes
    );
    println!(
        "overhead ratio       : {:.2}%",
        100.0 * report.overhead_ratio
    );
    println!(
        "fallback fraction    : {:.2}%",
        100.0 * report.fallback_fraction
    );
    println!("load imbalance       : {:.2}", report.load_imbalance);
    println!("virtual duration     : {:.3}s", report.duration_secs);
    println!("throughput           : {:.1} results/s", report.throughput);
    ExitCode::SUCCESS
}
