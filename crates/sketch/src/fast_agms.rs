//! Fast-AGMS sketches (Cormode & Garofalakis, "Sketching streams through
//! the net" — reference \[8\] of the paper).
//!
//! Classic AGMS touches every one of its `s0·s1` counters per update. The
//! fast variant hash-*partitions* the domain: each of the `s1` rows picks
//! a single bucket of width `s0` by a pairwise hash and adds `ξ(v)·δ`
//! there, so an update costs `O(s1)` while the join-size estimator keeps
//! the same unbiasedness (the row estimate is the inner product of the two
//! rows' buckets) and tightens variance for skewed data.

use crate::hash::PolyHash;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when combining incompatible sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastSketchMismatchError {
    expected: (usize, usize, u64),
    found: (usize, usize, u64),
}

impl fmt::Display for FastSketchMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast-AGMS shapes/seeds differ: expected (buckets, rows, seed) = {:?}, found {:?}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for FastSketchMismatchError {}

/// A Fast-AGMS sketch: `rows` hash-partitioned rows of `buckets` counters.
///
/// ```
/// use dsj_sketch::FastAgmsSketch;
///
/// let mut r = FastAgmsSketch::new(32, 7, 9);
/// let mut s = FastAgmsSketch::new(32, 7, 9);
/// for v in 0..200u64 {
///     r.update(v, 1);
///     s.update(v, 1);
/// }
/// let est = r.join_size(&s)?;
/// assert!((est - 200.0).abs() < 120.0, "estimate {est}");
/// # Ok::<(), dsj_sketch::fast_agms::FastSketchMismatchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastAgmsSketch {
    buckets: usize,
    rows: usize,
    seed: u64,
    counters: Vec<i64>,
    #[serde(skip)]
    bucket_hashes: Vec<PolyHash>,
    #[serde(skip)]
    sign_hashes: Vec<PolyHash>,
    total_updates: u64,
}

impl FastAgmsSketch {
    /// Creates a sketch with `buckets` counters per row and `rows`
    /// median rows, derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `rows == 0`.
    pub fn new(buckets: usize, rows: usize, seed: u64) -> Self {
        assert!(
            buckets > 0 && rows > 0,
            "sketch dimensions must be positive"
        );
        let (bucket_hashes, sign_hashes) = Self::derive_hashes(rows, seed);
        FastAgmsSketch {
            buckets,
            rows,
            seed,
            counters: vec![0; buckets * rows],
            bucket_hashes,
            sign_hashes,
            total_updates: 0,
        }
    }

    /// Creates a sketch of at most `bytes` serialized size (8 bytes per
    /// counter), keeping the paper's 5:1 width-to-rows ratio.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 48`.
    pub fn with_size_bytes(bytes: usize, seed: u64) -> Self {
        let counters = bytes / 8;
        assert!(counters >= 5, "budget too small for a 5x1 sketch");
        let rows = (((counters as f64) / 5.0).sqrt().floor() as usize).max(1);
        let buckets = (counters / rows).max(1);
        FastAgmsSketch::new(buckets, rows, seed)
    }

    fn derive_hashes(rows: usize, seed: u64) -> (Vec<PolyHash>, Vec<PolyHash>) {
        let bucket = (0..rows)
            .map(|r| PolyHash::pairwise(seed ^ 0xFA57_0000 ^ ((r as u64) << 20)))
            .collect();
        let sign = (0..rows)
            .map(|r| PolyHash::four_wise(seed ^ 0x51C9_0000 ^ ((r as u64) << 20)))
            .collect();
        (bucket, sign)
    }

    /// Counters per row.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Number of median rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The derivation seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serialized size in bytes (8 per counter).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * 8
    }

    /// Total updates applied.
    #[inline]
    pub fn updates(&self) -> u64 {
        self.total_updates
    }

    /// Applies a frequency change `delta` for value `v` — `O(rows)`.
    pub fn update(&mut self, v: u64, delta: i64) {
        for r in 0..self.rows {
            let b = self.bucket_hashes[r].hash_to_range(v, self.buckets as u64) as usize;
            let sign = self.sign_hashes[r].sign(v);
            self.counters[r * self.buckets + b] += sign * delta;
        }
        self.total_updates += 1;
    }

    /// Re-derives hash functions after deserialization.
    pub fn rehydrate(&mut self) {
        if self.bucket_hashes.len() != self.rows {
            let (b, s) = Self::derive_hashes(self.rows, self.seed);
            self.bucket_hashes = b;
            self.sign_hashes = s;
        }
    }

    fn check_compatible(&self, other: &FastAgmsSketch) -> Result<(), FastSketchMismatchError> {
        if self.buckets != other.buckets || self.rows != other.rows || self.seed != other.seed {
            return Err(FastSketchMismatchError {
                expected: (self.buckets, self.rows, self.seed),
                found: (other.buckets, other.rows, other.seed),
            });
        }
        Ok(())
    }

    /// Estimates the join size `Σ_v f(v)·g(v)`: median over rows of the
    /// row-bucket inner products.
    ///
    /// # Errors
    ///
    /// Returns [`FastSketchMismatchError`] when shapes or seeds differ.
    pub fn join_size(&self, other: &FastAgmsSketch) -> Result<f64, FastSketchMismatchError> {
        self.check_compatible(other)?;
        Ok(self.join_size_unchecked(other))
    }

    /// The estimator body, once compatibility is established.
    fn join_size_unchecked(&self, other: &FastAgmsSketch) -> f64 {
        let mut row_estimates: Vec<f64> = (0..self.rows)
            .map(|r| {
                let base = r * self.buckets;
                (0..self.buckets)
                    .map(|b| (self.counters[base + b] * other.counters[base + b]) as f64)
                    .sum()
            })
            .collect();
        row_estimates.sort_by(f64::total_cmp);
        let mid = row_estimates.len() / 2;
        if row_estimates.len() % 2 == 1 {
            row_estimates[mid]
        } else {
            (row_estimates[mid - 1] + row_estimates[mid]) / 2.0
        }
    }

    /// Estimates the self-join size (second frequency moment).
    pub fn self_join_size(&self) -> f64 {
        self.join_size_unchecked(self)
    }

    /// Adds another sketch's counters into this one (union of multisets).
    ///
    /// # Errors
    ///
    /// Returns [`FastSketchMismatchError`] when shapes or seeds differ.
    pub fn merge(&mut self, other: &FastAgmsSketch) -> Result<(), FastSketchMismatchError> {
        self.check_compatible(other)?;
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
        self.total_updates += other.total_updates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    fn sketch_of(freqs: &[i64], seed: u64) -> FastAgmsSketch {
        let mut sk = FastAgmsSketch::new(64, 7, seed);
        for (v, &f) in freqs.iter().enumerate() {
            if f != 0 {
                sk.update(v as u64, f);
            }
        }
        sk
    }

    #[test]
    fn join_size_close_on_correlated_streams() {
        let mut rng = SplitMix64::new(4);
        let f: Vec<i64> = (0..512).map(|_| rng.next_below(6) as i64).collect();
        let g: Vec<i64> = f.iter().map(|&x| x / 2 + 1).collect();
        let exact: f64 = f.iter().zip(&g).map(|(a, b)| (a * b) as f64).sum();
        let est = sketch_of(&f, 3).join_size(&sketch_of(&g, 3)).unwrap();
        assert!(
            (est - exact).abs() / exact < 0.3,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn disjoint_streams_near_zero() {
        let mut f = vec![0i64; 1024];
        let mut g = vec![0i64; 1024];
        for i in 0..300 {
            f[i] = 3;
            g[512 + i] = 3;
        }
        let est = sketch_of(&f, 8).join_size(&sketch_of(&g, 8)).unwrap();
        let scale: f64 = f.iter().map(|&x| (x * x) as f64).sum();
        assert!(est.abs() < 0.3 * scale, "disjoint estimate {est}");
    }

    #[test]
    fn deletions_cancel() {
        let mut sk = FastAgmsSketch::new(32, 5, 1);
        for v in 0..100 {
            sk.update(v, 2);
        }
        for v in 0..100 {
            sk.update(v, -2);
        }
        assert_eq!(sk.self_join_size(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = FastAgmsSketch::new(16, 3, 6);
        let mut b = FastAgmsSketch::new(16, 3, 6);
        let mut u = FastAgmsSketch::new(16, 3, 6);
        for v in 0..40 {
            a.update(v, 1);
            u.update(v, 1);
        }
        for v in 40..80 {
            b.update(v, 1);
            u.update(v, 1);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn incompatible_rejected() {
        let a = FastAgmsSketch::new(16, 3, 6);
        assert!(a.join_size(&FastAgmsSketch::new(16, 3, 7)).is_err());
        assert!(a.join_size(&FastAgmsSketch::new(8, 3, 6)).is_err());
    }

    #[test]
    fn update_touches_only_rows_counters() {
        // Exactly `rows` counters change per update.
        let mut sk = FastAgmsSketch::new(64, 5, 2);
        let before = sk.counters.clone();
        sk.update(12345, 1);
        let changed = sk
            .counters
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 5);
    }

    #[test]
    fn with_size_bytes_budget() {
        let sk = FastAgmsSketch::with_size_bytes(4096, 1);
        assert!(sk.size_bytes() <= 4096);
        assert!(sk.rows() >= 1 && sk.buckets() >= sk.rows());
    }

    #[test]
    fn accuracy_comparable_to_classic_agms_at_equal_size() {
        use crate::agms::AgmsSketch;
        let mut rng = SplitMix64::new(9);
        let f: Vec<i64> = (0..1024).map(|_| rng.next_below(5) as i64).collect();
        let exact: f64 = f.iter().map(|&x| (x * x) as f64).sum();
        let rel = |est: f64| (est - exact).abs() / exact;
        let mut classic = AgmsSketch::with_size_bytes(2048, 5);
        let mut fast = FastAgmsSketch::with_size_bytes(2048, 5);
        for (v, &c) in f.iter().enumerate() {
            if c != 0 {
                classic.update(v as u64, c);
                fast.update(v as u64, c);
            }
        }
        let (rc, rf) = (rel(classic.self_join_size()), rel(fast.self_join_size()));
        assert!(
            rf < rc + 0.3,
            "fast variant should be in the same accuracy class: classic {rc}, fast {rf}"
        );
    }
}
