//! Counting Bloom filters.
//!
//! The paper's BLOOM baseline (Section 6) builds a counting Bloom filter at
//! each site and ships it to remote sites, where arriving tuples are tested
//! for membership against the remote windows; flow factors derive from the
//! positive-hit rates. Counting (rather than bit) filters are required
//! because sliding windows evict tuples, which must decrement the filter.

use crate::hash::PolyHash;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when combining incompatible filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterMismatchError {
    expected: (usize, usize, u64),
    found: (usize, usize, u64),
}

impl fmt::Display for FilterMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bloom filter shapes/seeds differ: expected (m, k, seed) = {:?}, found {:?}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for FilterMismatchError {}

/// A counting Bloom filter over `u64` values.
///
/// ```
/// use dsj_sketch::CountingBloomFilter;
///
/// let mut f = CountingBloomFilter::new(1024, 4, 7);
/// f.insert(99);
/// assert!(f.contains(99));
/// f.remove(99);
/// assert!(!f.contains(99));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    counters: Vec<u32>,
    k: usize,
    seed: u64,
    #[serde(skip)]
    hashes: Vec<PolyHash>,
    items: u64,
}

impl CountingBloomFilter {
    /// Creates a filter with `m` counters and `k` hash functions derived
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        assert!(m > 0, "filter must have counters");
        assert!(k > 0, "filter must have hash functions");
        CountingBloomFilter {
            counters: vec![0; m],
            k,
            seed,
            hashes: Self::derive_hashes(k, seed),
            items: 0,
        }
    }

    /// Creates a filter of at most `bytes` serialized size (4 bytes per
    /// counter), choosing the optimal hash count for `expected_items`:
    /// `k = (m/n)·ln 2`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 4` or `expected_items == 0`.
    pub fn with_size_bytes(bytes: usize, expected_items: usize, seed: u64) -> Self {
        assert!(bytes >= 4, "budget too small for a single counter");
        assert!(expected_items > 0, "expected item count must be positive");
        let m = bytes / 4;
        let k = (((m as f64 / expected_items as f64) * std::f64::consts::LN_2).round() as usize)
            .clamp(1, 16);
        CountingBloomFilter::new(m, k, seed)
    }

    fn derive_hashes(k: usize, seed: u64) -> Vec<PolyHash> {
        (0..k)
            .map(|i| PolyHash::pairwise(seed.wrapping_add(0xB10F ^ (i as u64) << 23)))
            .collect()
    }

    /// Number of counters `m`.
    #[inline]
    pub fn counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn hash_count(&self) -> usize {
        self.k
    }

    /// The derivation seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of items currently accounted (inserts minus removes).
    #[inline]
    pub fn len(&self) -> u64 {
        self.items
    }

    /// `true` when no items are accounted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Serialized size in bytes (4 per counter).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * 4
    }

    /// Re-derives hash functions after deserialization.
    pub fn rehydrate(&mut self) {
        if self.hashes.len() != self.k {
            self.hashes = Self::derive_hashes(self.k, self.seed);
        }
    }

    /// Rebuilds a filter from its wire representation: the counter vector
    /// plus the `(k, seed, items)` parameters. Hash functions are
    /// re-derived, so a reconstructed filter is bit-identical to the one
    /// that was serialized.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is empty or `k == 0` (the same contract as
    /// [`CountingBloomFilter::new`]); wire decoders validate before calling.
    pub fn from_parts(k: usize, seed: u64, counters: Vec<u32>, items: u64) -> Self {
        assert!(!counters.is_empty(), "filter must have counters");
        assert!(k > 0, "filter must have hash functions");
        CountingBloomFilter {
            counters,
            k,
            seed,
            hashes: Self::derive_hashes(k, seed),
            items,
        }
    }

    /// The raw counter vector, in index order (the wire representation).
    #[inline]
    pub fn counter_values(&self) -> &[u32] {
        &self.counters
    }

    /// Inserts a value (increments its `k` counters).
    pub fn insert(&mut self, v: u64) {
        let m = self.counters.len() as u64;
        for h in &self.hashes {
            let idx = h.hash_to_range(v, m) as usize;
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
        self.items += 1;
    }

    /// Removes a previously inserted value (decrements its counters).
    ///
    /// Removing a value that was never inserted corrupts the filter's
    /// accuracy guarantees (counters may hit zero for other members); in
    /// debug builds this is caught by an assertion when a counter would
    /// underflow.
    pub fn remove(&mut self, v: u64) {
        let m = self.counters.len() as u64;
        for h in &self.hashes {
            let idx = h.hash_to_range(v, m) as usize;
            debug_assert!(self.counters[idx] > 0, "removing non-member value {v}");
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
        self.items = self.items.saturating_sub(1);
    }

    /// Membership test — false positives possible, false negatives are not
    /// (absent counter corruption via bad `remove`s).
    pub fn contains(&self, v: u64) -> bool {
        let m = self.counters.len() as u64;
        self.hashes
            .iter()
            .all(|h| self.counters[h.hash_to_range(v, m) as usize] > 0)
    }

    /// Estimated multiplicity of `v`: the minimum of its counters
    /// (a Count-Min-style upper bound).
    pub fn count_estimate(&self, v: u64) -> u32 {
        let m = self.counters.len() as u64;
        self.hashes
            .iter()
            .map(|h| self.counters[h.hash_to_range(v, m) as usize])
            .min()
            .unwrap_or(0)
    }

    /// Expected false-positive rate at the current load:
    /// `(1 − e^{−k·n/m})^k`.
    pub fn false_positive_rate(&self) -> f64 {
        let m = self.counters.len() as f64;
        let n = self.items as f64;
        let k = self.k as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Adds another filter's counters into this one (union of contents).
    ///
    /// # Errors
    ///
    /// Returns [`FilterMismatchError`] when shapes or seeds differ.
    pub fn merge(&mut self, other: &CountingBloomFilter) -> Result<(), FilterMismatchError> {
        if self.counters.len() != other.counters.len()
            || self.k != other.k
            || self.seed != other.seed
        {
            return Err(FilterMismatchError {
                expected: (self.counters.len(), self.k, self.seed),
                found: (other.counters.len(), other.k, other.seed),
            });
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(*b);
        }
        self.items += other.items;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = CountingBloomFilter::new(4096, 4, 3);
        for v in 0..500 {
            f.insert(v * 7);
        }
        for v in 0..500 {
            assert!(f.contains(v * 7), "false negative for {}", v * 7);
        }
    }

    #[test]
    fn false_positive_rate_is_moderate() {
        let mut f = CountingBloomFilter::new(4096, 4, 3);
        for v in 0..500 {
            f.insert(v);
        }
        let fps = (10_000..20_000).filter(|&v| f.contains(v)).count();
        let measured = fps as f64 / 10_000.0;
        let predicted = f.false_positive_rate();
        assert!(
            measured < predicted * 3.0 + 0.01,
            "measured fpr {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn remove_restores_absence() {
        let mut f = CountingBloomFilter::new(1024, 3, 5);
        f.insert(42);
        f.insert(42);
        f.remove(42);
        assert!(f.contains(42), "one copy should remain");
        f.remove(42);
        assert!(!f.contains(42));
        assert!(f.is_empty());
    }

    #[test]
    fn count_estimate_upper_bounds_truth() {
        let mut f = CountingBloomFilter::new(2048, 4, 9);
        for _ in 0..7 {
            f.insert(1000);
        }
        for v in 0..100 {
            f.insert(v);
        }
        assert!(f.count_estimate(1000) >= 7);
    }

    #[test]
    fn sliding_window_usage_pattern() {
        // Insert a sliding window of 64 values over a stream of 1000;
        // after the run only the last 64 remain.
        let mut f = CountingBloomFilter::new(4096, 4, 1);
        let mut window = std::collections::VecDeque::new();
        for v in 0..1000u64 {
            f.insert(v);
            window.push_back(v);
            if window.len() > 64 {
                f.remove(window.pop_front().unwrap());
            }
        }
        assert_eq!(f.len(), 64);
        for &v in &window {
            assert!(f.contains(v));
        }
        let stale = (0..900).filter(|&v| f.contains(v)).count();
        assert!(stale < 45, "too many stale positives: {stale}");
    }

    #[test]
    fn with_size_bytes_budget() {
        let f = CountingBloomFilter::with_size_bytes(8192, 1000, 2);
        assert!(f.size_bytes() <= 8192);
        assert!(f.hash_count() >= 1);
    }

    #[test]
    fn merge_unions_contents() {
        let mut a = CountingBloomFilter::new(512, 3, 4);
        let mut b = CountingBloomFilter::new(512, 3, 4);
        a.insert(1);
        b.insert(2);
        a.merge(&b).unwrap();
        assert!(a.contains(1) && a.contains(2));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn merge_incompatible_errors() {
        let mut a = CountingBloomFilter::new(512, 3, 4);
        let b = CountingBloomFilter::new(512, 3, 5);
        let c = CountingBloomFilter::new(256, 3, 4);
        assert!(a.merge(&b).is_err());
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn fpr_grows_with_load() {
        let mut f = CountingBloomFilter::new(1024, 4, 6);
        let light = {
            for v in 0..50 {
                f.insert(v);
            }
            f.false_positive_rate()
        };
        for v in 50..2000 {
            f.insert(v);
        }
        assert!(f.false_positive_rate() > light);
    }

    #[test]
    #[should_panic(expected = "filter must have counters")]
    fn zero_counters_rejected() {
        CountingBloomFilter::new(0, 3, 1);
    }
}
