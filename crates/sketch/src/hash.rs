//! k-wise independent hash families.
//!
//! Degree-`(k−1)` polynomials with random coefficients over the Mersenne
//! prime field `GF(2⁶¹ − 1)` are k-wise independent; AGMS sketches need the
//! four-wise family for their variance bound, Bloom indexes get by with the
//! pairwise one. All randomness is derived deterministically from a caller
//! seed via SplitMix64 so that two sketches built from the same seed are
//! mergeable/joinable across nodes without shipping coefficient tables.

use serde::{Deserialize, Serialize};

/// The Mersenne prime `2⁶¹ − 1`.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// A deterministic seed-expansion PRNG (SplitMix64).
///
/// Used internally to derive hash coefficients; exposed because workload
/// generators in sibling crates also want cheap deterministic streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // bounds far below 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next `f64` uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Multiplication in `GF(2⁶¹ − 1)`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = a as u128 * b as u128;
    let lo = (prod & MERSENNE_61 as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// Addition in `GF(2⁶¹ − 1)`.
#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let mut s = a + b;
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// A k-wise independent polynomial hash `h(x) = Σ cᵢ·xⁱ mod (2⁶¹−1)`.
///
/// ```
/// use dsj_sketch::PolyHash;
///
/// let h = PolyHash::four_wise(42);
/// // Deterministic: the same seed yields the same function.
/// assert_eq!(h.hash(123), PolyHash::four_wise(42).hash(123));
/// // Signs are ±1.
/// assert!(h.sign(7) == 1 || h.sign(7) == -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolyHash {
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// A k-wise independent hash derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn k_wise(k: usize, seed: u64) -> Self {
        assert!(k > 0, "independence degree must be positive");
        let mut rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
        let coeffs = (0..k).map(|_| rng.next_u64() % MERSENNE_61).collect();
        PolyHash { coeffs }
    }

    /// A pairwise independent hash (degree-1 polynomial).
    pub fn pairwise(seed: u64) -> Self {
        PolyHash::k_wise(2, seed)
    }

    /// A four-wise independent hash (degree-3 polynomial) — the family AGMS
    /// sketches require for their variance guarantee.
    pub fn four_wise(seed: u64) -> Self {
        PolyHash::k_wise(4, seed)
    }

    /// The independence degree `k`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Hash of `x`, uniform over `[0, 2⁶¹ − 1)`.
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_61;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// Hash of `x`, mapped uniformly into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn hash_to_range(&self, x: u64, m: u64) -> u64 {
        assert!(m > 0, "range must be positive");
        ((self.hash(x) as u128 * m as u128) >> 61) as u64
    }

    /// A ±1 value derived from the hash (the AGMS `ξ` variable).
    pub fn sign(&self, x: u64) -> i64 {
        if self.hash(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_bounds_respected() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn field_arithmetic_sane() {
        assert_eq!(mul_mod(MERSENNE_61 - 1, 1), MERSENNE_61 - 1);
        assert_eq!(add_mod(MERSENNE_61 - 1, 1), 0);
        // (p-1)·(p-1) mod p = 1 since p-1 ≡ -1.
        assert_eq!(mul_mod(MERSENNE_61 - 1, MERSENNE_61 - 1), 1);
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let h1 = PolyHash::four_wise(5);
        let h2 = PolyHash::four_wise(5);
        let h3 = PolyHash::four_wise(6);
        assert_eq!(h1.hash(1000), h2.hash(1000));
        let same = (0..64).filter(|&x| h1.hash(x) == h3.hash(x)).count();
        assert!(same < 4, "different seeds should rarely collide");
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let h = PolyHash::four_wise(11);
        let pos = (0..10_000u64).filter(|&x| h.sign(x) == 1).count();
        assert!(
            (4_000..6_000).contains(&pos),
            "sign bias too strong: {pos}/10000"
        );
    }

    #[test]
    fn range_hash_covers_buckets() {
        let h = PolyHash::pairwise(3);
        let m = 16u64;
        let mut hit = vec![false; m as usize];
        for x in 0..2_000 {
            hit[h.hash_to_range(x, m) as usize] = true;
        }
        assert!(hit.iter().all(|&b| b), "every bucket should be reachable");
    }

    #[test]
    fn pairwise_uniformity_chi_squared() {
        let h = PolyHash::pairwise(77);
        let m = 32usize;
        let n = 32_000u64;
        let mut counts = vec![0f64; m];
        for x in 0..n {
            counts[h.hash_to_range(x, m as u64) as usize] += 1.0;
        }
        let expect = n as f64 / m as f64;
        let chi2: f64 = counts
            .iter()
            .map(|c| (c - expect) * (c - expect) / expect)
            .sum();
        // 31 degrees of freedom; 99.9th percentile is ~61.1.
        assert!(chi2 < 62.0, "chi² too large: {chi2}");
    }

    #[test]
    #[should_panic(expected = "independence degree must be positive")]
    fn zero_degree_rejected() {
        PolyHash::k_wise(0, 1);
    }
}
