//! AGMS ("tug-of-war") sketches for join-size estimation.
//!
//! An atomic estimator keeps `c = Σ_v f(v)·ξ(v)` where `f` is the frequency
//! vector of the summarized multiset and `ξ` is a four-wise independent ±1
//! hash. The product of two atomic estimators built with the *same* `ξ` is
//! an unbiased estimate of the join size `Σ_v f(v)·g(v)`. Averaging `s0`
//! independent estimators reduces variance; taking the median of `s1` such
//! averages boosts confidence. The paper's SKCH baseline keeps the
//! `s0 : s1` ratio at 5 : 1 (Section 6).

use crate::hash::PolyHash;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when combining incompatible sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchMismatchError {
    expected: (usize, usize, u64),
    found: (usize, usize, u64),
}

impl fmt::Display for SketchMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sketch shapes/seeds differ: expected (s0, s1, seed) = {:?}, found {:?}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for SketchMismatchError {}

/// An AGMS sketch with `s0 × s1` atomic estimators.
///
/// Two sketches can be compared (`join_size`) or merged (`merge`) only when
/// built with the same `(s0, s1, seed)` triple, which makes them share hash
/// functions.
///
/// ```
/// use dsj_sketch::AgmsSketch;
///
/// let mut r = AgmsSketch::new(25, 5, 42);
/// let mut s = AgmsSketch::new(25, 5, 42);
/// for v in 0..100u64 {
///     r.update(v, 1);
///     s.update(v, 1); // identical streams
/// }
/// let est = r.join_size(&s)?;
/// assert!((est - 100.0).abs() < 60.0, "estimate {est} too far from 100");
/// # Ok::<(), dsj_sketch::agms::SketchMismatchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgmsSketch {
    s0: usize,
    s1: usize,
    seed: u64,
    counters: Vec<i64>,
    #[serde(skip)]
    hashes: Vec<PolyHash>,
    total_updates: u64,
}

impl AgmsSketch {
    /// Creates a sketch with `s0` averaged estimators per group and `s1`
    /// median groups, derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `s0 == 0` or `s1 == 0`.
    pub fn new(s0: usize, s1: usize, seed: u64) -> Self {
        assert!(s0 > 0 && s1 > 0, "sketch dimensions must be positive");
        let hashes = Self::derive_hashes(s0, s1, seed);
        AgmsSketch {
            s0,
            s1,
            seed,
            counters: vec![0; s0 * s1],
            hashes,
            total_updates: 0,
        }
    }

    /// Creates a sketch whose serialized size is at most `bytes`, keeping
    /// the paper's 5:1 `s0 : s1` ratio (8 bytes per counter).
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 48` (too small for even a 5×1 sketch).
    pub fn with_size_bytes(bytes: usize, seed: u64) -> Self {
        let counters = bytes / 8;
        assert!(counters >= 5, "budget too small for a 5x1 AGMS sketch");
        // s0 = 5·s1 ⇒ counters = 5·s1².
        let s1 = (((counters as f64) / 5.0).sqrt().floor() as usize).max(1);
        let s0 = (counters / s1).min(5 * s1).max(1);
        AgmsSketch::new(s0, s1, seed)
    }

    fn derive_hashes(s0: usize, s1: usize, seed: u64) -> Vec<PolyHash> {
        (0..s0 * s1)
            .map(|i| PolyHash::four_wise(seed.wrapping_add(0x51ED_270B ^ (i as u64) << 17)))
            .collect()
    }

    /// Number of averaged estimators per median group.
    #[inline]
    pub fn s0(&self) -> usize {
        self.s0
    }

    /// Number of median groups.
    #[inline]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// The seed this sketch's hash family derives from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serialized size in bytes (8 per counter).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * 8
    }

    /// Total updates applied.
    #[inline]
    pub fn updates(&self) -> u64 {
        self.total_updates
    }

    /// Applies a frequency change `delta` for value `v` (use `-1` on window
    /// eviction). Cost is one ±1 hash per atomic estimator.
    pub fn update(&mut self, v: u64, delta: i64) {
        for (c, h) in self.counters.iter_mut().zip(self.hashes.iter()) {
            *c += h.sign(v) * delta;
        }
        self.total_updates += 1;
    }

    /// Re-derives hash functions after deserialization (hashes are not
    /// serialized — they are a pure function of `(s0, s1, seed)`).
    pub fn rehydrate(&mut self) {
        if self.hashes.len() != self.s0 * self.s1 {
            self.hashes = Self::derive_hashes(self.s0, self.s1, self.seed);
        }
    }

    /// Rebuilds a sketch from its wire representation: the counter vector
    /// plus the `(s0, s1, seed, total_updates)` parameters. Hash functions
    /// are re-derived, so a reconstructed sketch is bit-identical to the
    /// one that was serialized.
    ///
    /// # Panics
    ///
    /// Panics if `s0 == 0`, `s1 == 0` or `counters.len() != s0 * s1`; wire
    /// decoders validate before calling.
    pub fn from_parts(
        s0: usize,
        s1: usize,
        seed: u64,
        counters: Vec<i64>,
        total_updates: u64,
    ) -> Self {
        assert!(s0 > 0 && s1 > 0, "sketch dimensions must be positive");
        assert!(
            counters.len() == s0 * s1,
            "counter vector must be s0 * s1 long"
        );
        let hashes = Self::derive_hashes(s0, s1, seed);
        AgmsSketch {
            s0,
            s1,
            seed,
            counters,
            hashes,
            total_updates,
        }
    }

    /// The raw counter vector, in index order (the wire representation).
    #[inline]
    pub fn counter_values(&self) -> &[i64] {
        &self.counters
    }

    fn check_compatible(&self, other: &AgmsSketch) -> Result<(), SketchMismatchError> {
        if self.s0 != other.s0 || self.s1 != other.s1 || self.seed != other.seed {
            return Err(SketchMismatchError {
                expected: (self.s0, self.s1, self.seed),
                found: (other.s0, other.s1, other.seed),
            });
        }
        Ok(())
    }

    /// Estimates the join size `Σ_v f(v)·g(v)` between the two summarized
    /// multisets: median over `s1` groups of the mean of `s0` atomic
    /// products.
    ///
    /// # Errors
    ///
    /// Returns [`SketchMismatchError`] when the sketches were built with
    /// different shapes or seeds.
    pub fn join_size(&self, other: &AgmsSketch) -> Result<f64, SketchMismatchError> {
        self.check_compatible(other)?;
        Ok(self.join_size_unchecked(other))
    }

    /// The estimator body, once compatibility is established.
    fn join_size_unchecked(&self, other: &AgmsSketch) -> f64 {
        let mut group_means: Vec<f64> = (0..self.s1)
            .map(|g| {
                let start = g * self.s0;
                (0..self.s0)
                    .map(|i| (self.counters[start + i] * other.counters[start + i]) as f64)
                    .sum::<f64>()
                    / self.s0 as f64
            })
            .collect();
        group_means.sort_by(f64::total_cmp);
        let mid = group_means.len() / 2;
        if group_means.len() % 2 == 1 {
            group_means[mid]
        } else {
            (group_means[mid - 1] + group_means[mid]) / 2.0
        }
    }

    /// Estimates the self-join size (second frequency moment `F₂`).
    pub fn self_join_size(&self) -> f64 {
        self.join_size_unchecked(self)
    }

    /// Adds another sketch's counters into this one (the sketch of the
    /// union of the two multisets).
    ///
    /// # Errors
    ///
    /// Returns [`SketchMismatchError`] when the sketches were built with
    /// different shapes or seeds.
    pub fn merge(&mut self, other: &AgmsSketch) -> Result<(), SketchMismatchError> {
        self.check_compatible(other)?;
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
        self.total_updates += other.total_updates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    fn exact_join(f: &[i64], g: &[i64]) -> f64 {
        f.iter().zip(g).map(|(a, b)| (a * b) as f64).sum()
    }

    /// Builds frequency vectors and matching sketches for a small domain.
    fn sketch_of(freqs: &[i64], seed: u64) -> AgmsSketch {
        let mut sk = AgmsSketch::new(40, 8, seed);
        for (v, &f) in freqs.iter().enumerate() {
            if f != 0 {
                sk.update(v as u64, f);
            }
        }
        sk
    }

    #[test]
    fn join_size_is_close_on_correlated_streams() {
        let mut rng = SplitMix64::new(3);
        let f: Vec<i64> = (0..256).map(|_| rng.next_below(10) as i64).collect();
        let g: Vec<i64> = f.iter().map(|&x| (x + 1) / 2).collect();
        let exact = exact_join(&f, &g);
        let est = sketch_of(&f, 9).join_size(&sketch_of(&g, 9)).unwrap();
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.35,
            "relative error {rel} (est {est} vs exact {exact})"
        );
    }

    #[test]
    fn disjoint_streams_estimate_near_zero() {
        let mut f = vec![0i64; 512];
        let mut g = vec![0i64; 512];
        for i in 0..200 {
            f[i] = 5;
            g[i + 256] = 5;
        }
        let est = sketch_of(&f, 4).join_size(&sketch_of(&g, 4)).unwrap();
        let scale = exact_join(&f, &f);
        assert!(
            est.abs() < 0.3 * scale,
            "disjoint estimate {est} should be near zero (scale {scale})"
        );
    }

    #[test]
    fn self_join_estimates_f2() {
        let mut rng = SplitMix64::new(8);
        let f: Vec<i64> = (0..128).map(|_| rng.next_below(20) as i64).collect();
        let exact: f64 = f.iter().map(|&x| (x * x) as f64).sum();
        let est = sketch_of(&f, 21).self_join_size();
        assert!((est - exact).abs() / exact < 0.3, "{est} vs {exact}");
    }

    #[test]
    fn deletions_cancel_insertions() {
        let mut sk = AgmsSketch::new(10, 3, 5);
        for v in 0..50 {
            sk.update(v, 1);
        }
        for v in 0..50 {
            sk.update(v, -1);
        }
        assert_eq!(sk.self_join_size(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = AgmsSketch::new(10, 3, 7);
        let mut b = AgmsSketch::new(10, 3, 7);
        let mut union = AgmsSketch::new(10, 3, 7);
        for v in 0..30 {
            a.update(v, 2);
            union.update(v, 2);
        }
        for v in 30..60 {
            b.update(v, 3);
            union.update(v, 3);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, union);
    }

    #[test]
    fn incompatible_sketches_error() {
        let a = AgmsSketch::new(10, 3, 7);
        let b = AgmsSketch::new(10, 3, 8);
        let c = AgmsSketch::new(5, 3, 7);
        assert!(a.join_size(&b).is_err());
        assert!(a.join_size(&c).is_err());
        let err = a.join_size(&b).unwrap_err();
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn with_size_bytes_respects_budget_and_ratio() {
        for bytes in [512usize, 4096, 32768] {
            let sk = AgmsSketch::with_size_bytes(bytes, 1);
            assert!(sk.size_bytes() <= bytes, "{} > {bytes}", sk.size_bytes());
            let ratio = sk.s0() as f64 / sk.s1() as f64;
            assert!(
                (1.0..=6.0).contains(&ratio),
                "s0:s1 ratio {ratio} drifted from 5:1"
            );
        }
    }

    #[test]
    fn estimate_variance_shrinks_with_size() {
        // Bigger sketches should estimate a fixed join more tightly.
        let mut rng = SplitMix64::new(77);
        let f: Vec<i64> = (0..512).map(|_| rng.next_below(8) as i64).collect();
        let exact: f64 = f.iter().map(|&x| (x * x) as f64).sum();
        let spread = |s0: usize, s1: usize| -> f64 {
            (0..12)
                .map(|seed| {
                    let mut sk = AgmsSketch::new(s0, s1, seed);
                    for (v, &c) in f.iter().enumerate() {
                        if c != 0 {
                            sk.update(v as u64, c);
                        }
                    }
                    ((sk.self_join_size() - exact) / exact).abs()
                })
                .sum::<f64>()
                / 12.0
        };
        let small = spread(5, 1);
        let large = spread(60, 12);
        assert!(
            large < small + 0.05,
            "larger sketch should not be less accurate: small {small}, large {large}"
        );
    }
}
