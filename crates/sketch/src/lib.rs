//! Stream summary substrate for `dsjoin`: the two baseline summaries the
//! paper compares DFT flow filtering against (Section 6).
//!
//! * [`AgmsSketch`] — the AGMS "tug-of-war" sketch of Alon, Gibbons, Matias
//!   and Szegedy, used by the **SKCH** algorithm to estimate pairwise
//!   partition join sizes.
//! * [`CountingBloomFilter`] — a counting Bloom filter, used by the
//!   **BLOOM** algorithm for remote set-membership testing.
//! * [`hash`] — k-wise independent polynomial hash families over the
//!   Mersenne prime `2⁶¹ − 1` backing both summaries.
//!
//! Both summaries expose [`size_bytes`](AgmsSketch::size_bytes) so
//! experiments can equalize summary sizes across DFT coefficients, sketches
//! and Bloom filters, as the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agms;
pub mod bloom;
pub mod fast_agms;
pub mod hash;

pub use agms::AgmsSketch;
pub use bloom::CountingBloomFilter;
pub use fast_agms::FastAgmsSketch;
pub use hash::PolyHash;
