//! Property-based invariants of the sketch substrate.

use dsj_sketch::{AgmsSketch, CountingBloomFilter, FastAgmsSketch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sketching is linear: sketch(A) merged with sketch(B) equals
    /// sketch(A ∪ B) for any update sequences.
    #[test]
    fn agms_merge_is_union(
        a_ops in prop::collection::vec((0u64..256, -2i64..3), 0..80),
        b_ops in prop::collection::vec((0u64..256, -2i64..3), 0..80),
    ) {
        let mut a = AgmsSketch::new(10, 3, 5);
        let mut b = AgmsSketch::new(10, 3, 5);
        let mut u = AgmsSketch::new(10, 3, 5);
        for &(v, d) in &a_ops {
            a.update(v, d);
            u.update(v, d);
        }
        for &(v, d) in &b_ops {
            b.update(v, d);
            u.update(v, d);
        }
        a.merge(&b).unwrap();
        prop_assert_eq!(a, u);
    }

    /// Same for the fast variant.
    #[test]
    fn fast_agms_merge_is_union(
        a_ops in prop::collection::vec((0u64..256, -2i64..3), 0..80),
        b_ops in prop::collection::vec((0u64..256, -2i64..3), 0..80),
    ) {
        let mut a = FastAgmsSketch::new(16, 3, 5);
        let mut b = FastAgmsSketch::new(16, 3, 5);
        let mut u = FastAgmsSketch::new(16, 3, 5);
        for &(v, d) in &a_ops {
            a.update(v, d);
            u.update(v, d);
        }
        for &(v, d) in &b_ops {
            b.update(v, d);
            u.update(v, d);
        }
        a.merge(&b).unwrap();
        prop_assert_eq!(a, u);
    }

    /// Join-size estimation is symmetric.
    #[test]
    fn join_size_symmetric(
        f_ops in prop::collection::vec(0u64..128, 1..100),
        g_ops in prop::collection::vec(0u64..128, 1..100),
        seed in 0u64..64,
    ) {
        let mut f = AgmsSketch::new(20, 5, seed);
        let mut g = AgmsSketch::new(20, 5, seed);
        for &v in &f_ops {
            f.update(v, 1);
        }
        for &v in &g_ops {
            g.update(v, 1);
        }
        let fg = f.join_size(&g).unwrap();
        let gf = g.join_size(&f).unwrap();
        prop_assert!((fg - gf).abs() < 1e-9);
    }

    /// A Bloom filter over the live multiset never reports a false
    /// negative; an emptied filter reports nothing.
    #[test]
    fn bloom_lifecycle(values in prop::collection::vec(0u64..1000, 1..120)) {
        let mut f = CountingBloomFilter::new(4096, 4, 9);
        for &v in &values {
            f.insert(v);
        }
        for &v in &values {
            prop_assert!(f.contains(v));
            prop_assert!(f.count_estimate(v) >= 1);
        }
        for &v in &values {
            f.remove(v);
        }
        prop_assert!(f.is_empty());
        // Counters are fully zeroed: no residue positives at all.
        for &v in &values {
            prop_assert!(!f.contains(v));
        }
    }

    /// Self-join estimates are never negative for the classic sketch under
    /// insert-only updates (each row mean of squares is non-negative).
    #[test]
    fn self_join_nonnegative(values in prop::collection::vec(0u64..512, 0..150)) {
        let mut sk = AgmsSketch::new(15, 3, 2);
        for &v in &values {
            sk.update(v, 1);
        }
        prop_assert!(sk.self_join_size() >= 0.0);
    }
}
