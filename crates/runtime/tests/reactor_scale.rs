//! Reactor-mode scaling guarantees that the unit tests can't see:
//! cluster-level thread accounting (O(N), not O(N²)) and quiescence
//! under sustained backpressure.

use dsj_core::{Algorithm, ClusterConfig};
use dsj_runtime::{Pacing, TcpCluster, TcpMode};
use dsj_stream::gen::WorkloadKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn cfg(n: u16, tuples: usize) -> ClusterConfig {
    ClusterConfig::new(n, Algorithm::Base)
        .window(64)
        .domain(1 << 9)
        .tuples(tuples)
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        .seed(13)
}

/// Current thread count of this process, from `/proc/self/status`.
/// Linux-only by construction; the whole suite targets the Linux CI box.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn reactor_mode_thread_count_is_linear_in_n() {
    let n: u16 = 32;
    // A mesh at n=32 would spawn 32·31 = 992 reader threads on top of the
    // node threads. The reactor budget is: n node threads + a fixed shard
    // pool (≤ 8) + transient acceptors (n, but joined before nodes spawn)
    // + feeder/test overhead. Assert the peak stays within n + 16 extra
    // threads over the pre-run baseline — loose enough for scheduler
    // noise, an order of magnitude below O(N²).
    let baseline = thread_count();
    let done = Arc::new(AtomicBool::new(false));
    let sampler = {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut peak = 0usize;
            while !done.load(Ordering::SeqCst) {
                peak = peak.max(thread_count());
                thread::sleep(Duration::from_millis(1));
            }
            peak
        })
    };
    let outcome = TcpCluster::run_paced_mode(&cfg(n, 4_000), Pacing::Freerun, TcpMode::Reactor)
        .expect("reactor n=32");
    done.store(true, Ordering::SeqCst);
    let peak = sampler.join().expect("sampler");
    assert!(outcome.reported_matches > 0);
    let budget = baseline + n as usize + 16;
    assert!(
        peak <= budget,
        "thread peak {peak} exceeds O(N) budget {budget} (baseline {baseline})"
    );
}

#[test]
fn freerun_reactor_survives_bursty_backpressure() {
    // Broadcast (Base) at n=8 on a contended host: node threads are
    // constantly descheduled mid-stream, so every peer takes turns being
    // the slow reader while others keep writing. Quiescence must still
    // complete — parked bytes stay counted until the receiving engine
    // processes them, so the drain loop cannot be fooled — and accuracy
    // must not degrade (backpressure delays delivery, never drops it).
    let outcome = TcpCluster::run_paced_mode(&cfg(8, 8_000), Pacing::Freerun, TcpMode::Reactor)
        .expect("reactor n=8 freerun");
    assert!(
        outcome.epsilon < 0.05,
        "eps {} ({} of {})",
        outcome.epsilon,
        outcome.reported_matches,
        outcome.truth_matches
    );
    let frames: u64 = outcome
        .transport_per_node
        .iter()
        .map(|t| t.frames_sent)
        .sum();
    assert_eq!(frames, outcome.messages, "no frame lost or double-counted");
}
