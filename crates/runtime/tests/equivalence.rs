//! Cross-backend equivalence: the same configuration, driven in lockstep,
//! produces *identical* per-node results on all four backends —
//! deterministic simulation, threads-over-channels, blocking TCP sockets
//! (one reader thread per link), and reactor TCP (nonblocking sockets,
//! sharded event loop, coalesced vectored writes).
//!
//! This is the strongest statement the transport refactor can make: the
//! node logic is genuinely transport-agnostic, the wire codec is lossless,
//! and the four drive loops deliver the same events in the same order.
//! Equivalence requires the clock-free configuration subset — count-bounded
//! windows (the default), no bandwidth governor, lossless links — because
//! virtual and wall clocks necessarily disagree. Pacing must be
//! [`Pacing::Lockstep`]: each arrival's full causal cone (at most one
//! probe per peer, and probes trigger no further sends) lands before the
//! next arrival moves, so per-node event order is the same everywhere.

use dsj_core::{Algorithm, ClusterConfig, NodeMetrics};
use dsj_runtime::{LiveCluster, Pacing, TcpCluster, TcpMode};
use dsj_simnet::LinkConfig;
use dsj_stream::gen::WorkloadKind;

fn cfg(n: u16, algorithm: Algorithm) -> ClusterConfig {
    ClusterConfig::new(n, algorithm)
        .window(96)
        .domain(1 << 9)
        .tuples(1_200)
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        // Latency is irrelevant under lockstep (every arrival drains
        // fully), but losing messages is not: keep links perfect.
        .link(LinkConfig::instant())
        .seed(11)
}

/// One backend's per-node results, reduced to the comparable core.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    truth_matches: u64,
    reported_matches: u64,
    per_node: Vec<NodeMetrics>,
    match_digests: Vec<u64>,
}

fn check_equivalence(n: u16, algorithm: Algorithm) {
    let cfg = cfg(n, algorithm);
    let sim = cfg.run_lockstep().expect("simnet lockstep");
    let threads = LiveCluster::run_paced(&cfg, Pacing::Lockstep).expect("threads lockstep");
    let tcp = TcpCluster::run_paced(&cfg, Pacing::Lockstep).expect("tcp lockstep");
    let reactor = TcpCluster::run_paced_mode(&cfg, Pacing::Lockstep, TcpMode::Reactor)
        .expect("reactor lockstep");

    let from_sim = Fingerprint {
        truth_matches: sim.truth_matches,
        reported_matches: sim.reported_matches,
        per_node: sim.per_node.clone(),
        match_digests: sim.match_digests.clone(),
    };
    let from_threads = Fingerprint {
        truth_matches: threads.truth_matches,
        reported_matches: threads.reported_matches,
        per_node: threads.per_node.clone(),
        match_digests: threads.match_digests.clone(),
    };
    let from_tcp = Fingerprint {
        truth_matches: tcp.truth_matches,
        reported_matches: tcp.reported_matches,
        per_node: tcp.per_node.clone(),
        match_digests: tcp.match_digests.clone(),
    };
    let from_reactor = Fingerprint {
        truth_matches: reactor.truth_matches,
        reported_matches: reactor.reported_matches,
        per_node: reactor.per_node.clone(),
        match_digests: reactor.match_digests.clone(),
    };

    assert_eq!(
        from_sim, from_threads,
        "simnet vs threads diverged for {algorithm} at n={n}"
    );
    assert_eq!(
        from_threads, from_tcp,
        "threads vs tcp diverged for {algorithm} at n={n}"
    );
    assert_eq!(
        from_tcp, from_reactor,
        "blocking tcp vs reactor tcp diverged for {algorithm} at n={n}"
    );
    // Sanity: the run did real work — every node processed arrivals, and
    // the cluster moved messages.
    assert!(from_sim.per_node.iter().all(|m| m.arrivals > 0));
    let messages: u64 = from_sim
        .per_node
        .iter()
        .map(|m| m.tuple_msgs_sent + m.summary_msgs_sent)
        .sum();
    assert!(messages > 0, "{algorithm} at n={n} sent no messages");
}

#[test]
fn base_is_equivalent_across_backends() {
    check_equivalence(3, Algorithm::Base);
    check_equivalence(5, Algorithm::Base);
}

#[test]
fn dft_is_equivalent_across_backends() {
    check_equivalence(3, Algorithm::Dft);
    check_equivalence(5, Algorithm::Dft);
}

#[test]
fn dftt_is_equivalent_across_backends() {
    check_equivalence(3, Algorithm::Dftt);
    check_equivalence(5, Algorithm::Dftt);
}

#[test]
fn bloom_is_equivalent_across_backends() {
    check_equivalence(3, Algorithm::Bloom);
    check_equivalence(5, Algorithm::Bloom);
}

#[test]
fn sketch_is_equivalent_across_backends() {
    check_equivalence(3, Algorithm::Sketch);
    check_equivalence(5, Algorithm::Sketch);
}

#[test]
fn lockstep_live_runs_are_reproducible() {
    // Beyond matching the simulation once: repeated lockstep runs of the
    // racing backends are bit-identical run to run.
    let cfg = cfg(4, Algorithm::Dftt);
    let a = LiveCluster::run_paced(&cfg, Pacing::Lockstep).unwrap();
    let b = LiveCluster::run_paced(&cfg, Pacing::Lockstep).unwrap();
    assert_eq!(a.per_node, b.per_node);
    assert_eq!(a.match_digests, b.match_digests);
    let c = TcpCluster::run_paced(&cfg, Pacing::Lockstep).unwrap();
    assert_eq!(a.match_digests, c.match_digests);
    let d = TcpCluster::run_paced_mode(&cfg, Pacing::Lockstep, TcpMode::Reactor).unwrap();
    assert_eq!(a.match_digests, d.match_digests);
}
