//! One OS thread per node, crossbeam channels as links.

use crossbeam::channel::{unbounded, Receiver, Sender};
use dsj_core::obs;
use dsj_core::{ClusterConfig, Msg, NodeMetrics};
use dsj_stream::Tuple;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Error raised when the live cluster fails to run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// The configuration failed [`ClusterConfig::validate`] — rejected
    /// before any thread is spawned.
    Config(dsj_core::RunError),
    /// A node thread panicked.
    NodePanicked(u16),
    /// A channel closed unexpectedly (a peer died mid-run).
    ChannelClosed,
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            LiveError::NodePanicked(id) => write!(f, "node thread {id} panicked"),
            LiveError::ChannelClosed => write!(f, "inter-node channel closed unexpectedly"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsj_core::RunError> for LiveError {
    fn from(e: dsj_core::RunError) -> Self {
        LiveError::Config(e)
    }
}

/// What one live run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveOutcome {
    /// Exact result-set size (post warm-up) for the configuration's
    /// workload, computed by the sequential ground truth.
    pub truth_matches: u64,
    /// Matches the live cluster reported.
    pub reported_matches: u64,
    /// ε = (|Ψ| − |Ψ̂|)/|Ψ|.
    pub epsilon: f64,
    /// Messages exchanged between node threads.
    pub messages: u64,
    /// Aggregated per-node counters.
    pub totals: NodeMetrics,
    /// Real elapsed time from first arrival to quiescence.
    pub wall_time: Duration,
    /// Tuples processed per wall-clock second.
    pub tuples_per_sec: f64,
}

enum Event {
    Arrival(Tuple),
    Net { from: u16, msg: Msg },
    Shutdown,
}

/// Runs [`dsj_core::JoinNode`]s as live threads.
///
/// Message transport is unbounded channels with no injected latency —
/// the point is concurrency correctness and raw processing speed, not the
/// WAN model (that is `dsj-simnet`'s job). With effectively instant
/// links, accuracy is bounded below by the simulated runs' (probes never
/// go stale in flight).
pub struct LiveCluster;

impl LiveCluster {
    /// Runs the configuration's full workload through a live threaded
    /// cluster and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`LiveError::Config`] for configurations
    /// [`ClusterConfig::validate`] rejects; [`LiveError::NodePanicked`] if
    /// any node thread dies.
    pub fn run(cfg: &ClusterConfig) -> Result<LiveOutcome, LiveError> {
        cfg.validate()?;
        let mut reg = obs::Registry::default();
        let n = cfg.n;
        let (arrivals, truth_matches) =
            reg.time_phase("workload", || (cfg.arrivals(), cfg.ground_truth_matches()));

        let spawn_started = Instant::now();
        // One channel per node; every thread gets every sender.
        let mut senders: Vec<Sender<Event>> = Vec::with_capacity(n as usize);
        let mut receivers: Vec<Receiver<Event>> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        // Messages (of any kind) currently in channels.
        let in_flight = Arc::new(AtomicI64::new(0));
        let epoch = Instant::now();
        let failures: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::with_capacity(n as usize);
        for me in 0..n {
            let rx = receivers[me as usize].clone();
            let peers: Vec<Sender<Event>> = senders.clone();
            let in_flight = Arc::clone(&in_flight);
            let failures = Arc::clone(&failures);
            let mut node = cfg.build_node(me);
            handles.push(thread::spawn(move || {
                loop {
                    let Ok(event) = rx.recv() else {
                        failures.lock().push(me);
                        break;
                    };
                    match event {
                        Event::Arrival(tuple) => {
                            let now_us = epoch.elapsed().as_micros() as u64;
                            for (peer, msg) in node.handle_arrival(tuple, now_us) {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                if peers[peer as usize]
                                    .send(Event::Net { from: me, msg })
                                    .is_err()
                                {
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                    failures.lock().push(me);
                                }
                            }
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Event::Net { from, msg } => {
                            node.handle_message(from, msg);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Event::Shutdown => break,
                    }
                }
                node
            }));
        }

        reg.phase_add("spawn", spawn_started.elapsed());

        // Feed arrivals in global order (per-channel FIFO keeps each
        // node's sequence numbers ascending, as the windows require).
        // Backpressure: cap the events in flight so slow consumers don't
        // accumulate unbounded queues — unbounded backlog would let probe
        // messages arrive long after their window contents were evicted,
        // losing matches to staleness rather than to the algorithm.
        let max_in_flight = 8 * i64::from(n);
        let start = Instant::now();
        for a in &arrivals {
            while in_flight.load(Ordering::SeqCst) >= max_in_flight {
                thread::yield_now();
            }
            in_flight.fetch_add(1, Ordering::SeqCst);
            if senders[a.node as usize]
                .send(Event::Arrival(a.tuple()))
                .is_err()
            {
                return Err(LiveError::ChannelClosed);
            }
        }
        reg.phase_add("inject", start.elapsed());

        // Quiesce: wait until no events remain in any channel.
        let drain_started = Instant::now();
        while in_flight.load(Ordering::SeqCst) > 0 {
            thread::yield_now();
        }
        let wall_time = start.elapsed();
        reg.phase_add("drain", drain_started.elapsed());
        for tx in &senders {
            let _ = tx.send(Event::Shutdown);
        }

        let join_started = Instant::now();
        let mut totals = NodeMetrics::default();
        let mut nodes = Vec::with_capacity(n as usize);
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(node) => nodes.push(node),
                Err(_) => return Err(LiveError::NodePanicked(id as u16)),
            }
        }
        if let Some(&id) = failures.lock().first() {
            return Err(LiveError::NodePanicked(id));
        }
        for node in &nodes {
            totals.absorb(node.metrics());
        }
        reg.phase_add("join", join_started.elapsed());
        let reported_matches = totals.matches();
        let epsilon = if truth_matches == 0 {
            0.0
        } else {
            ((truth_matches as f64 - reported_matches as f64) / truth_matches as f64).max(0.0)
        };
        let secs = wall_time.as_secs_f64().max(1e-9);
        let outcome = LiveOutcome {
            truth_matches,
            reported_matches,
            epsilon,
            messages: totals.tuple_msgs_sent + totals.summary_msgs_sent,
            totals,
            wall_time,
            tuples_per_sec: arrivals.len() as f64 / secs,
        };
        if obs::enabled() {
            reg.counter_add("runs", 1);
            reg.counter_add("truth_matches", outcome.truth_matches);
            reg.counter_add("reported_matches", outcome.reported_matches);
            reg.counter_add("live.messages", outcome.messages);
            reg.counter_add("tuples", arrivals.len() as u64);
            reg.gauge_set("epsilon", outcome.epsilon);
            reg.gauge_set("wall_time_secs", outcome.wall_time.as_secs_f64());
            reg.gauge_set("tuples_per_sec", outcome.tuples_per_sec);
            for (me, node) in nodes.iter().enumerate() {
                node.metrics().record_into(&mut reg, me as u16);
            }
            obs::emit(reg);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_core::Algorithm;
    use dsj_stream::gen::WorkloadKind;

    fn quick(n: u16, algorithm: Algorithm) -> ClusterConfig {
        ClusterConfig::new(n, algorithm)
            .window(128)
            .domain(1 << 9)
            .tuples(3_000)
            .workload(WorkloadKind::Zipf { alpha: 0.4 })
            .seed(7)
    }

    #[test]
    fn base_live_cluster_is_nearly_exact() {
        let outcome = LiveCluster::run(&quick(4, Algorithm::Base)).unwrap();
        // Backpressure bounds in-flight events, so probe staleness is a
        // few window slots at most: broadcast recovers all but a fraction
        // of a percent of the ground truth.
        assert!(
            outcome.epsilon < 0.02,
            "eps {} ({} of {})",
            outcome.epsilon,
            outcome.reported_matches,
            outcome.truth_matches
        );
        assert!(
            outcome.tuples_per_sec > 1_000.0,
            "{}",
            outcome.tuples_per_sec
        );
    }

    #[test]
    fn dftt_live_cluster_approximates() {
        let outcome = LiveCluster::run(&quick(4, Algorithm::Dftt)).unwrap();
        assert!(outcome.epsilon < 0.6, "eps {}", outcome.epsilon);
        assert!(outcome.reported_matches > 0);
        // DFTT must move far fewer messages than broadcast.
        let base = LiveCluster::run(&quick(4, Algorithm::Base)).unwrap();
        assert!(outcome.messages < base.messages / 2);
    }

    #[test]
    fn all_algorithms_run_live() {
        for algorithm in Algorithm::ALL {
            let outcome = LiveCluster::run(&quick(3, algorithm)).unwrap();
            assert!(
                (0.0..=1.0).contains(&outcome.epsilon),
                "{algorithm}: {}",
                outcome.epsilon
            );
        }
    }

    #[test]
    fn live_run_emits_observation_record_when_scoped() {
        let collector = obs::Collector::install();
        let cfg = quick(3, Algorithm::Dft);
        let outcome = obs::scoped("live", 4, || LiveCluster::run(&cfg).unwrap());
        let records = collector.drain();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert_eq!((rec.index, rec.label.as_str()), (4, "live"));
        let reg = &rec.registry;
        assert_eq!(reg.counter("live.messages"), outcome.messages);
        assert_eq!(reg.counter("truth_matches"), outcome.truth_matches);
        for phase in ["workload", "spawn", "inject", "drain", "join"] {
            assert!(reg.phase(phase).is_some(), "missing phase {phase}");
        }
        let total_arrivals: u64 = (0..cfg.n)
            .map(|me| reg.counter(&format!("node.{me:02}.arrivals")))
            .sum();
        assert_eq!(total_arrivals, cfg.tuples as u64);
    }

    #[test]
    fn invalid_config_rejected_before_spawning() {
        let err = LiveCluster::run(&quick(1, Algorithm::Base)).unwrap_err();
        assert_eq!(err, LiveError::Config(dsj_core::RunError::TooFewNodes(1)));
        let err = LiveCluster::run(&quick(4, Algorithm::Dft).tuples(0)).unwrap_err();
        assert!(matches!(
            err,
            LiveError::Config(dsj_core::RunError::NoTuples)
        ));
    }

    #[test]
    fn local_matches_are_run_invariant() {
        // Local joins depend only on each node's own arrival order, which
        // the feeder fixes — so they are identical across live runs even
        // though remote probe timing races.
        let a = LiveCluster::run(&quick(4, Algorithm::Dft)).unwrap();
        let b = LiveCluster::run(&quick(4, Algorithm::Dft)).unwrap();
        assert_eq!(a.totals.local_matches, b.totals.local_matches);
        assert_eq!(a.truth_matches, b.truth_matches);
    }
}
