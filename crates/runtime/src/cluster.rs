//! One OS thread per node, crossbeam channels as links.

use crate::harness::{self, Pacing, Shared};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dsj_core::obs;
use dsj_core::{ClusterConfig, Msg, NodeEngine, NodeMetrics, Transport, TransportEvent};
use dsj_stream::gen::Arrival;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error raised when the live cluster fails to run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// The configuration failed [`ClusterConfig::validate`] — rejected
    /// before any thread is spawned.
    Config(dsj_core::RunError),
    /// A node thread panicked.
    NodePanicked(u16),
    /// A channel closed unexpectedly (a peer died mid-run).
    ChannelClosed,
    /// A socket operation failed on the TCP backend.
    Io {
        /// The node whose socket failed.
        node: u16,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// Bytes arriving on a TCP link failed to decode as a codec frame.
    Decode {
        /// The node that received the undecodable bytes.
        node: u16,
        /// The wire error, rendered.
        detail: String,
    },
    /// Several distinct transport failures surfaced in one run — the
    /// harness aggregates every reported failure (deduplicated by node
    /// and kind, in first-seen order) instead of dropping all but the
    /// first.
    Faults(Vec<LiveError>),
}

impl LiveError {
    /// Deduplication key: failure kind plus the node it implicates (when
    /// the variant names one). Two failures with the same key are the
    /// same event reported twice — e.g. every peer observing the same
    /// closed channel.
    pub(crate) fn kind_key(&self) -> (u8, Option<u16>) {
        match self {
            LiveError::Config(_) => (0, None),
            LiveError::NodePanicked(id) => (1, Some(*id)),
            LiveError::ChannelClosed => (2, None),
            LiveError::Io { node, .. } => (3, Some(*node)),
            LiveError::Decode { node, .. } => (4, Some(*node)),
            LiveError::Faults(_) => (5, None),
        }
    }
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            LiveError::NodePanicked(id) => write!(f, "node thread {id} panicked"),
            LiveError::ChannelClosed => write!(f, "inter-node channel closed unexpectedly"),
            LiveError::Io { node, detail } => write!(f, "socket error at node {node}: {detail}"),
            LiveError::Decode { node, detail } => {
                write!(f, "undecodable frame received at node {node}: {detail}")
            }
            LiveError::Faults(all) => {
                write!(f, "{} transport failures: ", all.len())?;
                for (i, e) in all.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsj_core::RunError> for LiveError {
    fn from(e: dsj_core::RunError) -> Self {
        LiveError::Config(e)
    }
}

/// Per-node transport-layer counters from one live run — socket
/// mechanics, not algorithm behavior, so they are *excluded* from the
/// cross-backend equivalence fingerprint (backends legitimately differ
/// here while producing identical joins).
///
/// All zeros on backends without a byte-level transport (channels) or
/// without write coalescing (per-link-thread TCP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Wire frames this node fully wrote to its peers.
    pub frames_sent: u64,
    /// Successful write syscalls (each moved ≥ 1 byte); coalescing makes
    /// `frames_sent / write_syscalls` > 1.
    pub write_syscalls: u64,
    /// Sum over peers of each pending-write queue's high-water mark of
    /// bytes parked while that peer's socket was full.
    pub pending_peak_bytes: u64,
    /// Reactor-shard sweeps charged to this node (shard total attributed
    /// to its first node; 0 for the shard's other nodes).
    pub reactor_wakeups: u64,
}

/// What one live run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveOutcome {
    /// Exact result-set size (post warm-up) for the configuration's
    /// workload, computed by the sequential ground truth.
    pub truth_matches: u64,
    /// Matches the live cluster reported.
    pub reported_matches: u64,
    /// ε = (|Ψ| − |Ψ̂|)/|Ψ|.
    pub epsilon: f64,
    /// Messages exchanged between node threads.
    pub messages: u64,
    /// Aggregated per-node counters.
    pub totals: NodeMetrics,
    /// Per-node counters, indexed by node id.
    pub per_node: Vec<NodeMetrics>,
    /// Per-node order-sensitive digests of every counted probe — equal
    /// digests mean equal match sets *in the same order* (see
    /// [`dsj_core::JoinNode::match_digest`]).
    pub match_digests: Vec<u64>,
    /// Per-node transport counters (empty on backends that don't report
    /// any). Deliberately *not* part of equivalence fingerprints.
    #[serde(default)]
    pub transport_per_node: Vec<TransportStats>,
    /// Injection → end-of-processing latency (µs) of stamped arrivals,
    /// merged across nodes. Populated only by open-loop (load-generator)
    /// runs; closed-loop feeders don't stamp arrivals, so this stays
    /// empty — and, like transport counters, it is excluded from
    /// equivalence fingerprints.
    #[serde(default)]
    pub delivery_latency_us: obs::Histogram,
    /// Real elapsed time from first arrival to quiescence.
    pub wall_time: Duration,
    /// Tuples processed per wall-clock second.
    pub tuples_per_sec: f64,
}

/// [`Transport`] over in-process crossbeam channels: one receiver per
/// node, a clone of every peer's sender.
pub(crate) struct ChannelTransport {
    me: u16,
    rx: Receiver<TransportEvent>,
    peers: Vec<Sender<TransportEvent>>,
    in_flight: Arc<AtomicI64>,
    epoch: Instant,
}

impl Transport for ChannelTransport {
    type Error = LiveError;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), LiveError> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.peers[to as usize]
            .send(TransportEvent::Net { from: self.me, msg })
            .is_err()
        {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Err(LiveError::ChannelClosed);
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, LiveError> {
        self.rx.recv().map_err(|_| LiveError::ChannelClosed)
    }

    fn poll_frame(&mut self, max: usize, frame: &mut Vec<TransportEvent>) -> Result<(), LiveError> {
        // Block for the first event, then drain whatever else is already
        // queued — the backlog a fast feeder or chatty peer built up while
        // this node was busy becomes one frame instead of `max` lock
        // round-trips through the run loop.
        frame.push(self.rx.recv().map_err(|_| LiveError::ChannelClosed)?);
        while frame.len() < max {
            match self.rx.try_recv() {
                Some(event) => frame.push(event),
                None => break,
            }
        }
        Ok(())
    }

    fn now_us(&mut self) -> u64 {
        // dsj-lint: allow(hot-path-opaque-call) — the live clock *is* wall time; it feeds only time-window eviction and the governor, never reproduced results
        self.epoch.elapsed().as_micros() as u64
    }

    fn quiesce(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs [`dsj_core::JoinNode`]s as live threads.
///
/// Message transport is unbounded channels with no injected latency —
/// the point is concurrency correctness and raw processing speed, not the
/// WAN model (that is `dsj-simnet`'s job). With effectively instant
/// links, accuracy is bounded below by the simulated runs' (probes never
/// go stale in flight).
pub struct LiveCluster;

impl LiveCluster {
    /// Runs the configuration's full workload through a live threaded
    /// cluster at full speed and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`LiveError::Config`] for configurations
    /// [`ClusterConfig::validate`] rejects; [`LiveError::NodePanicked`] if
    /// any node thread dies.
    pub fn run(cfg: &ClusterConfig) -> Result<LiveOutcome, LiveError> {
        Self::run_paced(cfg, Pacing::Freerun)
    }

    /// Runs the configuration's workload with an explicit feeder
    /// [`Pacing`]. [`Pacing::Lockstep`] makes the run deterministic and
    /// bit-equal to the simulated backend's
    /// [`ClusterConfig::run_lockstep`]; see the crate docs.
    ///
    /// # Errors
    ///
    /// As for [`LiveCluster::run`].
    pub fn run_paced(cfg: &ClusterConfig, pacing: Pacing) -> Result<LiveOutcome, LiveError> {
        let (mut reg, arrivals, truth_matches, spawned) = Self::spawn(cfg)?;
        harness::drive(cfg, pacing, &mut reg, &arrivals, truth_matches, spawned)
    }

    /// Runs the configuration's workload open-loop: arrivals are injected
    /// on a virtual-time schedule at `spec`'s target rate regardless of
    /// how fast the cluster drains them, and per-tuple delivery latency is
    /// recorded into the outcome's histogram. The load-generator entry
    /// point; see [`OpenLoop`](crate::OpenLoop).
    ///
    /// # Errors
    ///
    /// As for [`LiveCluster::run`].
    pub fn run_open_loop(
        cfg: &ClusterConfig,
        spec: &harness::OpenLoop,
    ) -> Result<harness::LoadRun, LiveError> {
        let (mut reg, arrivals, truth_matches, spawned) = Self::spawn(cfg)?;
        harness::drive_open(cfg, spec, &mut reg, &arrivals, truth_matches, spawned)
    }

    /// Validates `cfg`, generates its schedule and spawns the node
    /// threads over channel transports — everything up to (but not
    /// including) feeding, shared by the closed- and open-loop entry
    /// points.
    #[allow(clippy::type_complexity)]
    fn spawn(
        cfg: &ClusterConfig,
    ) -> Result<(obs::Registry, Vec<Arrival>, u64, harness::Spawned), LiveError> {
        cfg.validate()?;
        let mut reg = obs::Registry::default();
        let n = cfg.n;
        let (arrivals, truth_matches) =
            reg.time_phase("workload", || (cfg.arrivals(), cfg.ground_truth_matches()));

        let spawn_started = Instant::now();
        let shared = Shared::new();
        // One channel per node; every transport gets every sender.
        let mut senders: Vec<Sender<TransportEvent>> = Vec::with_capacity(n as usize);
        let mut receivers: Vec<Receiver<TransportEvent>> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n as usize);
        for me in 0..n {
            let transport = ChannelTransport {
                me,
                rx: receivers[me as usize].clone(),
                peers: senders.clone(),
                in_flight: Arc::clone(&shared.in_flight),
                epoch: shared.epoch,
            };
            let engine = NodeEngine::new(cfg.build_node(me));
            handles.push(harness::spawn_node(engine, transport, &shared));
        }
        reg.phase_add("spawn", spawn_started.elapsed());
        Ok((
            reg,
            arrivals,
            truth_matches,
            harness::Spawned {
                shared,
                senders,
                handles,
                finish: None,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_core::Algorithm;
    use dsj_stream::gen::WorkloadKind;

    fn quick(n: u16, algorithm: Algorithm) -> ClusterConfig {
        ClusterConfig::new(n, algorithm)
            .window(128)
            .domain(1 << 9)
            .tuples(3_000)
            .workload(WorkloadKind::Zipf { alpha: 0.4 })
            .seed(7)
    }

    #[test]
    fn base_live_cluster_is_nearly_exact() {
        let outcome = LiveCluster::run(&quick(4, Algorithm::Base)).unwrap();
        // Backpressure bounds in-flight events, so probe staleness is a
        // few window slots at most: broadcast recovers all but a fraction
        // of a percent of the ground truth.
        assert!(
            outcome.epsilon < 0.02,
            "eps {} ({} of {})",
            outcome.epsilon,
            outcome.reported_matches,
            outcome.truth_matches
        );
        assert!(
            outcome.tuples_per_sec > 1_000.0,
            "{}",
            outcome.tuples_per_sec
        );
    }

    #[test]
    fn dftt_live_cluster_approximates() {
        let outcome = LiveCluster::run(&quick(4, Algorithm::Dftt)).unwrap();
        assert!(outcome.epsilon < 0.6, "eps {}", outcome.epsilon);
        assert!(outcome.reported_matches > 0);
        // DFTT must move far fewer messages than broadcast.
        let base = LiveCluster::run(&quick(4, Algorithm::Base)).unwrap();
        assert!(outcome.messages < base.messages / 2);
    }

    #[test]
    fn all_algorithms_run_live() {
        for algorithm in Algorithm::ALL {
            let outcome = LiveCluster::run(&quick(3, algorithm)).unwrap();
            assert!(
                (0.0..=1.0).contains(&outcome.epsilon),
                "{algorithm}: {}",
                outcome.epsilon
            );
        }
    }

    #[test]
    fn live_run_emits_observation_record_when_scoped() {
        let collector = obs::Collector::install();
        let cfg = quick(3, Algorithm::Dft);
        let outcome = obs::scoped("live", 4, || LiveCluster::run(&cfg).unwrap());
        let records = collector.drain();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert_eq!((rec.index, rec.label.as_str()), (4, "live"));
        let reg = &rec.registry;
        assert_eq!(reg.counter("live.messages"), outcome.messages);
        assert_eq!(reg.counter("truth_matches"), outcome.truth_matches);
        for phase in ["workload", "spawn", "inject", "drain", "join"] {
            assert!(reg.phase(phase).is_some(), "missing phase {phase}");
        }
        let total_arrivals: u64 = (0..cfg.n)
            .map(|me| reg.counter(&format!("node.{me:02}.arrivals")))
            .sum();
        assert_eq!(total_arrivals, cfg.tuples as u64);
    }

    #[test]
    fn invalid_config_rejected_before_spawning() {
        let err = LiveCluster::run(&quick(1, Algorithm::Base)).unwrap_err();
        assert_eq!(err, LiveError::Config(dsj_core::RunError::TooFewNodes(1)));
        let err = LiveCluster::run(&quick(4, Algorithm::Dft).tuples(0)).unwrap_err();
        assert!(matches!(
            err,
            LiveError::Config(dsj_core::RunError::NoTuples)
        ));
    }

    #[test]
    fn local_matches_are_run_invariant() {
        // Local joins depend only on each node's own arrival order, which
        // the feeder fixes — so they are identical across live runs even
        // though remote probe timing races.
        let a = LiveCluster::run(&quick(4, Algorithm::Dft)).unwrap();
        let b = LiveCluster::run(&quick(4, Algorithm::Dft)).unwrap();
        assert_eq!(a.totals.local_matches, b.totals.local_matches);
        assert_eq!(a.truth_matches, b.truth_matches);
    }

    #[test]
    fn per_node_outcome_is_consistent_with_totals() {
        let outcome = LiveCluster::run(&quick(4, Algorithm::Base)).unwrap();
        assert_eq!(outcome.per_node.len(), 4);
        assert_eq!(outcome.match_digests.len(), 4);
        let mut totals = NodeMetrics::default();
        for m in &outcome.per_node {
            totals.absorb(m);
        }
        assert_eq!(totals, outcome.totals);
    }
}
