//! N nodes over real loopback TCP sockets, framed with the wire codec.
//!
//! Two socket topologies share this file, selected by [`TcpMode`]:
//!
//! * [`TcpMode::ThreadPerLink`] — the original full mesh of *directed*
//!   socket pairs: node `i` connects one `TcpStream` to every peer `j`'s
//!   listener and uses it for `i → j` traffic only; each accepted socket
//!   gets a blocking reader thread. Simple, but O(N²) sockets *and*
//!   threads — the honest baseline the reactor is benchmarked against.
//! * [`TcpMode::Reactor`] — one full-duplex socket per *unordered* node
//!   pair (N(N−1)/2 connections, halving fd pressure), every socket
//!   nonblocking, read by a fixed pool of [`crate::reactor`] shards and
//!   written through per-peer coalescing queues with vectored writes.
//!   O(N) threads total; the mode that scales to N = 128.
//!
//! In both modes the dialer writes a two-byte little-endian handshake
//! naming itself after `connect`, so the accepting side knows which peer
//! the bytes on that socket come from without trusting ephemeral port
//! numbers. Codec frames ([`dsj_core::wire::FrameDecoder`]) are
//! reassembled from the byte stream — frames arrive split and coalesced
//! at TCP's whim — and decoded messages land in the owning node's event
//! channel, where they meet arrivals injected by the feeder. Node
//! threads, feeder backpressure, quiescence detection and aggregation are
//! the backend-independent harness shared with [`crate::LiveCluster`].
//!
//! Everything stays on `127.0.0.1` with OS-assigned ports; nothing binds
//! a routable interface.

use crate::cluster::{LiveError, LiveOutcome, TransportStats};
use crate::harness::{self, FinishHook, Pacing, Shared};
use crate::reactor::{Kick, LinkWrite, OutLink, Reactor, ReadLink, ShardInput};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dsj_core::obs;
use dsj_core::wire::{self, FrameBatch, FrameDecoder};
use dsj_core::{ClusterConfig, Msg, NodeEngine, Transport, TransportEvent};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Read-buffer size for socket reader threads.
const READ_CHUNK: usize = 16 * 1024;

pub(crate) fn io_err(node: u16, e: &std::io::Error) -> LiveError {
    LiveError::Io {
        node,
        detail: e.to_string(),
    }
}

/// Reads the dialer's two-byte little-endian node-id handshake,
/// tolerating short reads and `EINTR`: loopback usually delivers both
/// bytes at once, but nothing guarantees it, and a handshake split across
/// reads must not be mistaken for a protocol error.
pub(crate) fn read_peer_id(stream: &mut TcpStream) -> std::io::Result<u16> {
    let mut hello = [0u8; 2];
    let mut got = 0;
    while got < hello.len() {
        match stream.read(&mut hello[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(u16::from_le_bytes(hello))
}

/// Which socket topology [`TcpCluster`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpMode {
    /// Directed full mesh, one blocking reader thread per link: O(N²)
    /// sockets and threads. The pre-reactor baseline.
    ThreadPerLink,
    /// One nonblocking full-duplex socket per node pair, served by a
    /// fixed shard pool with coalesced vectored writes: O(N) threads,
    /// N(N−1)/2 sockets.
    Reactor,
}

/// [`Transport`] over per-peer TCP sockets: decoded inbound traffic and
/// feeder arrivals share one channel; outbound messages are encoded into
/// per-peer write buffers and hit the socket in one `write_all` per peer
/// per frame when the engine calls [`Transport::flush`].
struct TcpTransport {
    me: u16,
    rx: Receiver<TransportEvent>,
    /// `writers[j]` is the `me → j` socket; `None` at `j == me`.
    writers: Vec<Option<TcpStream>>,
    in_flight: Arc<AtomicI64>,
    epoch: Instant,
    /// `wbufs[j]` holds frames encoded for peer `j` since the last flush.
    wbufs: Vec<Vec<u8>>,
    /// How many messages each write buffer holds (for in-flight repair on
    /// a failed flush).
    wpending: Vec<i64>,
}

impl Transport for TcpTransport {
    type Error = LiveError;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), LiveError> {
        let j = to as usize;
        if !matches!(self.writers.get(j), Some(Some(_))) {
            return Err(LiveError::Io {
                node: self.me,
                detail: format!("no socket from node {} to peer {to}", self.me),
            });
        }
        wire::encode_into(&msg, &mut self.wbufs[j]);
        self.wpending[j] += 1;
        // Count the message in flight at buffer time, before any byte
        // becomes visible to the peer: the counter may briefly over-report
        // (buffered, not yet written) but never under-reports, and the
        // engine flushes every frame before blocking, so buffered messages
        // cannot stall quiescence.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, LiveError> {
        self.rx.recv().map_err(|_| LiveError::ChannelClosed)
    }

    fn poll_frame(&mut self, max: usize, frame: &mut Vec<TransportEvent>) -> Result<(), LiveError> {
        // Block for the first event, then drain the already-queued backlog
        // (decoded socket traffic plus feeder arrivals) into one frame.
        frame.push(self.rx.recv().map_err(|_| LiveError::ChannelClosed)?);
        while frame.len() < max {
            match self.rx.try_recv() {
                Some(event) => frame.push(event),
                None => break,
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), LiveError> {
        for j in 0..self.wbufs.len() {
            if self.wbufs[j].is_empty() {
                continue;
            }
            // `send` only buffers toward peers with sockets, so a missing
            // writer under a non-empty buffer is unreachable; skipping it
            // beats panicking mid-abort.
            let Some(stream) = self.writers[j].as_mut() else {
                continue;
            };
            if let Err(e) = stream.write_all(&self.wbufs[j]) {
                // Un-count everything still buffered (this peer's bytes
                // and any peers not yet reached); the run is aborting, but
                // the cluster-wide counter must not leak phantom traffic.
                let orphaned: i64 = self.wpending.iter().sum();
                self.in_flight.fetch_sub(orphaned, Ordering::SeqCst);
                for (buf, pending) in self.wbufs.iter_mut().zip(&mut self.wpending) {
                    buf.clear();
                    *pending = 0;
                }
                return Err(io_err(self.me, &e));
            }
            self.wbufs[j].clear();
            self.wpending[j] = 0;
        }
        Ok(())
    }

    fn now_us(&mut self) -> u64 {
        // dsj-lint: allow(hot-path-opaque-call) — the live clock *is* wall time; it feeds only time-window eviction and the governor, never reproduced results
        self.epoch.elapsed().as_micros() as u64
    }

    fn quiesce(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// [`Transport`] for [`TcpMode::Reactor`]: outbound messages are batched
/// per peer ([`FrameBatch`]) and flushed once per engine frame through
/// the peer's [`OutLink`] — a coalesced vectored write on a nonblocking
/// socket. A full socket parks the tail in the link's write queue (the
/// destination's shard retries it); after every flush the destination
/// read-link is marked dirty and its shard kicked, which is what makes
/// the bytes *observed*, not just sent.
struct ReactorTransport {
    me: u16,
    rx: Receiver<TransportEvent>,
    /// `links[j]` is the `me → j` write half; `None` at `j == me`.
    links: Vec<Option<Arc<OutLink>>>,
    /// `batches[j]` holds frames encoded for peer `j` since the last
    /// flush (allocation reused across frames).
    batches: Vec<FrameBatch>,
    /// `dirty[j]` is peer `j`'s read-link flag for the `me → j` socket.
    dirty: Vec<Option<Arc<AtomicBool>>>,
    /// Shard wakeup latches; peer `j`'s shard is `j % kicks.len()`.
    kicks: Vec<Arc<Kick>>,
    /// Per-flush scratch: which shards have traffic and need one kick.
    kick_due: Vec<bool>,
    in_flight: Arc<AtomicI64>,
    epoch: Instant,
}

impl ReactorTransport {
    /// Un-counts every message still batched (a fatal flush error aborts
    /// the node; the cluster-wide counter must not leak phantom traffic).
    fn abandon_batches(&mut self) {
        let orphaned: i64 = self.batches.iter().map(|b| b.len() as i64).sum();
        if orphaned > 0 {
            self.in_flight.fetch_sub(orphaned, Ordering::SeqCst);
        }
        for batch in &mut self.batches {
            batch.clear();
        }
    }
}

impl Transport for ReactorTransport {
    type Error = LiveError;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), LiveError> {
        let j = to as usize;
        if !matches!(self.links.get(j), Some(Some(_))) {
            return Err(LiveError::Io {
                node: self.me,
                detail: format!("no socket from node {} to peer {to}", self.me),
            });
        }
        self.batches[j].push(&msg);
        // Counted at batch time, before any byte is visible — same
        // over-report-never-under-report contract as the mesh transport.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, LiveError> {
        self.rx.recv().map_err(|_| LiveError::ChannelClosed)
    }

    fn poll_frame(&mut self, max: usize, frame: &mut Vec<TransportEvent>) -> Result<(), LiveError> {
        frame.push(self.rx.recv().map_err(|_| LiveError::ChannelClosed)?);
        while frame.len() < max {
            match self.rx.try_recv() {
                Some(event) => frame.push(event),
                None => break,
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), LiveError> {
        for j in 0..self.batches.len() {
            if self.batches[j].is_empty() {
                continue;
            }
            let Some(link) = self.links[j].as_ref() else {
                continue; // unreachable: send() refuses peers without links
            };
            match link.flush_batch(&self.batches[j]) {
                LinkWrite::Clean | LinkWrite::Parked => {
                    // Accepted (on the wire or parked in the link's queue,
                    // where the destination shard owns the retry); either
                    // way the messages stay counted until the receiving
                    // engine processes them.
                    self.batches[j].clear();
                    if let Some(flag) = &self.dirty[j] {
                        flag.store(true, Ordering::SeqCst);
                    }
                    let shard = j % self.kick_due.len();
                    self.kick_due[shard] = true;
                }
                LinkWrite::Dead { error, orphaned } => {
                    // The link accepted the batch into its queue before
                    // dying, so `orphaned` covers these frames; a link
                    // that was *already* dead never accepted them, and
                    // `abandon_batches` gives this batch (and every other
                    // unflushed one) back to the counter.
                    if orphaned > 0 {
                        self.in_flight.fetch_sub(orphaned, Ordering::SeqCst);
                        self.batches[j].clear();
                    }
                    let e = error.unwrap_or_else(|| LiveError::Io {
                        node: self.me,
                        detail: format!("link from node {} to peer {j} is dead", self.me),
                    });
                    self.abandon_batches();
                    return Err(e);
                }
            }
        }
        // One kick per shard per flush, after every dirty flag is set —
        // a peer-count-independent wakeup cost.
        for s in 0..self.kick_due.len() {
            if self.kick_due[s] {
                self.kick_due[s] = false;
                self.kicks[s].notify();
            }
        }
        Ok(())
    }

    fn now_us(&mut self) -> u64 {
        // dsj-lint: allow(hot-path-opaque-call) — the live clock *is* wall time; it feeds only time-window eviction and the governor, never reproduced results
        self.epoch.elapsed().as_micros() as u64
    }

    fn quiesce(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reader half of one directed link: reassembles frames from `stream`
/// (bytes sent by `from`) and forwards decoded messages to node
/// `to_node`'s event channel.
///
/// Returns when the peer closes the socket (normal shutdown), the event
/// channel closes (the node is gone), or a fatal error is recorded in
/// `failures`. Decode errors are fatal for the link, not resynchronized:
/// after garbage, frame boundaries are unknowable.
pub(crate) fn pump_frames(
    mut stream: TcpStream,
    from: u16,
    to_node: u16,
    tx: &Sender<TransportEvent>,
    failures: &Mutex<Vec<LiveError>>,
) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let nread = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed: normal shutdown
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                failures.lock().push(io_err(to_node, &e));
                return;
            }
        };
        // Streaming decode: complete frames are decoded straight out of
        // the read chunk; only a trailing partial frame is buffered.
        match decoder.feed_decode(&chunk[..nread], &mut |msg| {
            tx.send(TransportEvent::Net { from, msg }).is_ok()
        }) {
            Ok(true) => {}
            Ok(false) => return, // event channel closed: the node is gone
            Err(e) => {
                failures.lock().push(LiveError::Decode {
                    node: to_node,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

/// Opens node `me`'s listener-side sockets: accepts `expect` connections,
/// reads each dialer's two-byte handshake, and spawns a [`pump_frames`]
/// reader per link feeding `tx`.
fn accept_links(
    listener: TcpListener,
    me: u16,
    expect: usize,
    tx: Sender<TransportEvent>,
    failures: Arc<Mutex<Vec<LiveError>>>,
) -> Result<(), LiveError> {
    for _ in 0..expect {
        let (mut stream, _) = listener.accept().map_err(|e| io_err(me, &e))?;
        stream.set_nodelay(true).map_err(|e| io_err(me, &e))?;
        let from = read_peer_id(&mut stream).map_err(|e| io_err(me, &e))?;
        let tx = tx.clone();
        let failures = Arc::clone(&failures);
        thread::spawn(move || pump_frames(stream, from, me, &tx, &failures));
    }
    Ok(())
}

/// Runs [`dsj_core::JoinNode`]s as live threads joined by real loopback
/// TCP sockets carrying [`dsj_core::wire`]-framed messages.
///
/// Same concurrency structure as [`crate::LiveCluster`], but every
/// inter-node message round-trips through the binary codec and the
/// kernel's TCP stack — serialization cost, syscalls, stream
/// fragmentation and reassembly are all real.
pub struct TcpCluster;

impl TcpCluster {
    /// Runs the configuration's full workload over loopback TCP at full
    /// speed and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`LiveError::Config`] for invalid configurations;
    /// [`LiveError::Io`] / [`LiveError::Decode`] for socket-level
    /// failures; [`LiveError::NodePanicked`] if a node thread dies.
    pub fn run(cfg: &ClusterConfig) -> Result<LiveOutcome, LiveError> {
        Self::run_paced(cfg, Pacing::Freerun)
    }

    /// Runs the configuration's workload with an explicit feeder
    /// [`Pacing`]. [`Pacing::Lockstep`] makes the run deterministic and
    /// equal, node for node, to the other two backends.
    ///
    /// # Errors
    ///
    /// As for [`TcpCluster::run`].
    pub fn run_paced(cfg: &ClusterConfig, pacing: Pacing) -> Result<LiveOutcome, LiveError> {
        Self::run_paced_mode(cfg, pacing, TcpMode::ThreadPerLink)
    }

    /// Runs the configuration's workload with an explicit feeder
    /// [`Pacing`] and socket topology ([`TcpMode`]). Both modes are
    /// lockstep-equivalent to every other backend; [`TcpMode::Reactor`]
    /// is the one that scales past a handful of nodes.
    ///
    /// # Errors
    ///
    /// As for [`TcpCluster::run`].
    pub fn run_paced_mode(
        cfg: &ClusterConfig,
        pacing: Pacing,
        mode: TcpMode,
    ) -> Result<LiveOutcome, LiveError> {
        let (mut reg, arrivals, truth_matches, spawned) = Self::spawn(cfg, mode)?;
        harness::drive(cfg, pacing, &mut reg, &arrivals, truth_matches, spawned)
    }

    /// Runs the configuration's workload open-loop over the selected
    /// socket topology: arrivals are injected on a virtual-time schedule
    /// at `spec`'s target rate regardless of how fast the cluster drains
    /// them, and per-tuple delivery latency is recorded into the
    /// outcome's histogram. The load-generator entry point; see
    /// [`OpenLoop`](crate::OpenLoop).
    ///
    /// # Errors
    ///
    /// As for [`TcpCluster::run`].
    pub fn run_open_loop_mode(
        cfg: &ClusterConfig,
        spec: &harness::OpenLoop,
        mode: TcpMode,
    ) -> Result<harness::LoadRun, LiveError> {
        let (mut reg, arrivals, truth_matches, spawned) = Self::spawn(cfg, mode)?;
        harness::drive_open(cfg, spec, &mut reg, &arrivals, truth_matches, spawned)
    }

    /// Validates `cfg`, generates its schedule, binds the socket topology
    /// and spawns node threads — everything up to (but not including)
    /// feeding, shared by the closed- and open-loop entry points.
    #[allow(clippy::type_complexity)]
    fn spawn(
        cfg: &ClusterConfig,
        mode: TcpMode,
    ) -> Result<
        (
            obs::Registry,
            Vec<dsj_stream::gen::Arrival>,
            u64,
            harness::Spawned,
        ),
        LiveError,
    > {
        cfg.validate()?;
        let mut reg = obs::Registry::default();
        let n = cfg.n as usize;
        let (arrivals, truth_matches) =
            reg.time_phase("workload", || (cfg.arrivals(), cfg.ground_truth_matches()));

        let spawn_started = Instant::now();
        let shared = Shared::new();
        let mut senders: Vec<Sender<TransportEvent>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<TransportEvent>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Bind every node's listener first so peers can dial in any order.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for me in 0..n {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err(me as u16, &e))?;
            addrs.push(listener.local_addr().map_err(|e| io_err(me as u16, &e))?);
            listeners.push(listener);
        }

        let spawned = match mode {
            TcpMode::ThreadPerLink => {
                spawn_mesh(cfg, shared, senders, &receivers, listeners, &addrs)?
            }
            TcpMode::Reactor => spawn_reactor(cfg, shared, senders, &receivers, listeners, &addrs)?,
        };
        reg.phase_add("spawn", spawn_started.elapsed());
        Ok((reg, arrivals, truth_matches, spawned))
    }
}

/// Spawns the [`TcpMode::ThreadPerLink`] topology: directed full mesh,
/// one blocking reader thread per accepted socket.
fn spawn_mesh(
    cfg: &ClusterConfig,
    shared: Shared,
    senders: Vec<Sender<TransportEvent>>,
    receivers: &[Receiver<TransportEvent>],
    listeners: Vec<TcpListener>,
    addrs: &[SocketAddr],
) -> Result<harness::Spawned, LiveError> {
    let n = cfg.n as usize;
    // Accept threads: each node takes n−1 inbound links and spawns a
    // frame reader per link.
    let mut acceptors = Vec::with_capacity(n);
    for (me, listener) in listeners.into_iter().enumerate() {
        let tx = senders[me].clone();
        let failures = Arc::clone(&shared.failures);
        acceptors.push(thread::spawn(move || {
            accept_links(listener, me as u16, n - 1, tx, failures)
        }));
    }

    // Dial the full mesh: writers[i][j] carries i → j.
    let mut writers: Vec<Vec<Option<TcpStream>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for (i, row) in writers.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            let mut stream = TcpStream::connect(addrs[j]).map_err(|e| io_err(i as u16, &e))?;
            stream.set_nodelay(true).map_err(|e| io_err(i as u16, &e))?;
            stream
                .write_all(&(i as u16).to_le_bytes())
                .map_err(|e| io_err(i as u16, &e))?;
            *slot = Some(stream);
        }
    }
    // All dials completed, so every acceptor can finish; join them to
    // guarantee every reader thread is live before traffic starts.
    for acceptor in acceptors {
        match acceptor.join() {
            Ok(result) => result?,
            Err(_) => return Err(LiveError::ChannelClosed),
        }
    }

    let mut handles = Vec::with_capacity(n);
    for (me, row) in writers.into_iter().enumerate() {
        let transport = TcpTransport {
            me: me as u16,
            rx: receivers[me].clone(),
            writers: row,
            in_flight: Arc::clone(&shared.in_flight),
            epoch: shared.epoch,
            wbufs: (0..n).map(|_| Vec::with_capacity(1024)).collect(),
            wpending: vec![0; n],
        };
        let engine = NodeEngine::new(cfg.build_node(me as u16));
        handles.push(harness::spawn_node(engine, transport, &shared));
    }
    Ok(harness::Spawned {
        shared,
        senders,
        handles,
        finish: None,
    })
}

/// Spawns the [`TcpMode::Reactor`] topology: one nonblocking full-duplex
/// socket per unordered node pair — for pair `{i, j}` with `i < j`, node
/// `j` dials node `i`'s listener — read by a fixed pool of reactor
/// shards and written through per-peer coalescing queues.
fn spawn_reactor(
    cfg: &ClusterConfig,
    shared: Shared,
    senders: Vec<Sender<TransportEvent>>,
    receivers: &[Receiver<TransportEvent>],
    listeners: Vec<TcpListener>,
    addrs: &[SocketAddr],
) -> Result<harness::Spawned, LiveError> {
    let n = cfg.n as usize;
    // Accept side: node i takes one connection from every higher-id peer.
    // Each acceptor returns its identified, nonblocking endpoints.
    let mut acceptors = Vec::with_capacity(n);
    for (me, listener) in listeners.into_iter().enumerate() {
        let expect = n - 1 - me;
        acceptors.push(thread::spawn(
            move || -> Result<Vec<(u16, TcpStream)>, LiveError> {
                let mut accepted = Vec::with_capacity(expect);
                for _ in 0..expect {
                    let (mut stream, _) = listener.accept().map_err(|e| io_err(me as u16, &e))?;
                    stream
                        .set_nodelay(true)
                        .map_err(|e| io_err(me as u16, &e))?;
                    let peer = read_peer_id(&mut stream).map_err(|e| io_err(me as u16, &e))?;
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| io_err(me as u16, &e))?;
                    accepted.push((peer, stream));
                }
                Ok(accepted)
            },
        ));
    }

    // Dial side: node j (conceptually — dials run on this thread) opens
    // the pair socket to every lower-id peer. `endpoint[a][b]` is node
    // a's end of the {a, b} socket.
    let mut endpoint: Vec<Vec<Option<Arc<TcpStream>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for (j, row) in endpoint.iter_mut().enumerate().skip(1) {
        for (i, addr) in addrs.iter().enumerate().take(j) {
            let mut stream = TcpStream::connect(addr).map_err(|e| io_err(j as u16, &e))?;
            stream.set_nodelay(true).map_err(|e| io_err(j as u16, &e))?;
            stream
                .write_all(&(j as u16).to_le_bytes())
                .map_err(|e| io_err(j as u16, &e))?;
            stream
                .set_nonblocking(true)
                .map_err(|e| io_err(j as u16, &e))?;
            row[i] = Some(Arc::new(stream));
        }
    }
    for (me, acceptor) in acceptors.into_iter().enumerate() {
        match acceptor.join() {
            Ok(accepted) => {
                for (peer, stream) in accepted? {
                    endpoint[me][peer as usize] = Some(Arc::new(stream));
                }
            }
            Err(_) => return Err(LiveError::ChannelClosed),
        }
    }

    // Per-directed-link machinery: the i → j write half (on node i's
    // endpoint) and the i → j read half (node j's endpoint, flagged dirty
    // by i after each flush).
    let mut outlinks: Vec<Vec<Option<Arc<OutLink>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let dirty: Vec<Vec<Arc<AtomicBool>>> = (0..n)
        .map(|_| (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect())
        .collect();
    for (i, row) in outlinks.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            if let Some(stream) = &endpoint[i][j] {
                *slot = Some(Arc::new(OutLink::new(i as u16, Arc::clone(stream))));
            }
        }
    }

    // Shards: shard s owns the read halves of every node ≡ s (mod
    // shards) plus retry duty for out-links targeting those nodes (their
    // reads are what free the peer's socket space).
    let nshards = Reactor::shard_count(n);
    let kicks: Vec<Arc<Kick>> = (0..nshards).map(|_| Arc::new(Kick::new())).collect();
    let wakeups: Vec<Arc<AtomicU64>> = (0..nshards).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut inputs: Vec<ShardInput> = (0..nshards)
        .map(|s| ShardInput {
            reads: Vec::new(),
            writes: Vec::new(),
            kick: Arc::clone(&kicks[s]),
            wakeups: Arc::clone(&wakeups[s]),
            in_flight: Arc::clone(&shared.in_flight),
            failures: Arc::clone(&shared.failures),
        })
        .collect();
    for to in 0..n {
        let shard = &mut inputs[to % nshards];
        for from in 0..n {
            let Some(stream) = &endpoint[to][from] else {
                continue;
            };
            shard.reads.push(ReadLink::new(
                Arc::clone(stream),
                from as u16,
                to as u16,
                senders[to].clone(),
                Arc::clone(&dirty[to][from]),
            ));
            if let Some(link) = &outlinks[from][to] {
                shard.writes.push(Arc::clone(link));
            }
        }
    }
    let reactor = Reactor::start(inputs);

    let mut handles = Vec::with_capacity(n);
    for (me, row) in outlinks.iter().enumerate() {
        let transport = ReactorTransport {
            me: me as u16,
            rx: receivers[me].clone(),
            links: row.clone(),
            batches: (0..n).map(|_| FrameBatch::new()).collect(),
            dirty: (0..n)
                .map(|j| (j != me).then(|| Arc::clone(&dirty[j][me])))
                .collect(),
            kicks: kicks.clone(),
            kick_due: vec![false; nshards],
            in_flight: Arc::clone(&shared.in_flight),
            epoch: shared.epoch,
        };
        let engine = NodeEngine::new(cfg.build_node(me as u16));
        handles.push(harness::spawn_node(engine, transport, &shared));
    }

    // Teardown hook: stop the shards once the node threads are done, and
    // fold link + shard counters into per-node transport stats (a shard's
    // wakeups are attributed to its lowest node id).
    let finish: FinishHook = Box::new(move || {
        let shard_wakeups = reactor.join();
        let mut stats = vec![TransportStats::default(); n];
        for (i, row) in outlinks.iter().enumerate() {
            for link in row.iter().flatten() {
                let (frames, syscalls, peak) = link.stats();
                stats[i].frames_sent += frames;
                stats[i].write_syscalls += syscalls;
                stats[i].pending_peak_bytes += peak;
            }
        }
        for (s, count) in shard_wakeups.into_iter().enumerate() {
            if s < n {
                stats[s].reactor_wakeups = count;
            }
        }
        stats
    });

    Ok(harness::Spawned {
        shared,
        senders,
        handles,
        finish: Some(finish),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_core::Algorithm;
    use dsj_stream::gen::WorkloadKind;

    fn quick(n: u16, algorithm: Algorithm) -> ClusterConfig {
        ClusterConfig::new(n, algorithm)
            .window(128)
            .domain(1 << 9)
            .tuples(2_000)
            .workload(WorkloadKind::Zipf { alpha: 0.4 })
            .seed(7)
    }

    #[test]
    fn base_tcp_cluster_is_nearly_exact() {
        let outcome = TcpCluster::run(&quick(4, Algorithm::Base)).unwrap();
        assert!(
            outcome.epsilon < 0.02,
            "eps {} ({} of {})",
            outcome.epsilon,
            outcome.reported_matches,
            outcome.truth_matches
        );
        assert!(outcome.messages > 0);
    }

    #[test]
    fn all_algorithms_run_over_tcp() {
        for algorithm in Algorithm::ALL {
            let outcome = TcpCluster::run(&quick(3, algorithm)).unwrap();
            assert!(
                (0.0..=1.0).contains(&outcome.epsilon),
                "{algorithm}: {}",
                outcome.epsilon
            );
        }
    }

    #[test]
    fn tcp_run_emits_observation_record_with_phases() {
        let collector = obs::Collector::install();
        let cfg = quick(3, Algorithm::Dft);
        let outcome = obs::scoped("tcp", 2, || TcpCluster::run(&cfg).unwrap());
        let records = collector.drain();
        assert_eq!(records.len(), 1);
        let reg = &records[0].registry;
        assert_eq!(reg.counter("live.messages"), outcome.messages);
        for phase in ["workload", "spawn", "inject", "drain", "join"] {
            assert!(reg.phase(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn invalid_config_rejected_before_binding() {
        let err = TcpCluster::run(&quick(1, Algorithm::Base)).unwrap_err();
        assert_eq!(err, LiveError::Config(dsj_core::RunError::TooFewNodes(1)));
    }

    /// One end-to-end reader link for tests: listener, handshake (written
    /// one byte at a time, exercising [`read_peer_id`]'s short-read
    /// handling), and a [`pump_frames`] thread feeding a channel. The two
    /// decode tests previously duplicated all of this scaffolding inline.
    struct LinkFixture {
        dialer: TcpStream,
        rx: Receiver<TransportEvent>,
        failures: Arc<Mutex<Vec<LiveError>>>,
        reader: thread::JoinHandle<()>,
    }

    impl LinkFixture {
        fn spawn(from: u16) -> Self {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let (tx, rx) = unbounded();
            let failures: Arc<Mutex<Vec<LiveError>>> = Arc::new(Mutex::new(Vec::new()));
            let reader = {
                let failures = Arc::clone(&failures);
                thread::spawn(move || {
                    let (mut stream, _) = listener.accept().unwrap();
                    let peer = read_peer_id(&mut stream).unwrap();
                    pump_frames(stream, peer, 0, &tx, &failures);
                })
            };
            let mut dialer = TcpStream::connect(addr).unwrap();
            dialer.set_nodelay(true).unwrap();
            for byte in from.to_le_bytes() {
                dialer.write_all(&[byte]).unwrap();
            }
            LinkFixture {
                dialer,
                rx,
                failures,
                reader,
            }
        }

        /// Closes the write side and waits for the reader to finish.
        fn finish(self) -> (Receiver<TransportEvent>, Arc<Mutex<Vec<LiveError>>>) {
            drop(self.dialer);
            self.reader.join().unwrap();
            (self.rx, self.failures)
        }
    }

    #[test]
    fn corrupt_frame_on_the_socket_is_a_typed_error_not_a_panic() {
        // Drive the reader half of one link directly over a real socket
        // and feed it garbage: a well-formed length prefix followed by a
        // body with an unknown version nibble.
        let mut link = LinkFixture::spawn(1);
        // One valid frame first: the link decodes it and forwards it.
        let valid = wire::encode(&Msg::Tuple {
            tuple: dsj_stream::Tuple::new(dsj_stream::StreamId::R, 42, 7, 1),
            piggyback: Vec::new(),
        });
        link.dialer.write_all(&valid).unwrap();
        // Then a corrupt one: version nibble 0xF is not the codec's.
        link.dialer.write_all(&[1, 0, 0, 0, 0xF0]).unwrap();
        link.dialer.flush().unwrap();
        let (rx, failures) = link.finish();
        match rx.try_recv() {
            Some(TransportEvent::Net { from: 1, msg }) => {
                assert_eq!(msg.wire_bytes(), valid.len());
            }
            other => panic!("expected the valid frame first, got {other:?}"),
        }
        let recorded = failures.lock();
        assert_eq!(recorded.len(), 1);
        assert!(
            matches!(&recorded[0], LiveError::Decode { node: 0, .. }),
            "{recorded:?}"
        );
    }

    #[test]
    fn chunk_boundaries_do_not_affect_decoding() {
        // Byte-at-a-time delivery across the socket still reassembles the
        // exact message stream.
        let mut link = LinkFixture::spawn(2);
        let msgs: Vec<Msg> = (0..5)
            .map(|i| Msg::Tuple {
                tuple: dsj_stream::Tuple::new(dsj_stream::StreamId::S, i, u64::from(i), 3),
                piggyback: Vec::new(),
            })
            .collect();
        for msg in &msgs {
            for byte in wire::encode(msg) {
                link.dialer.write_all(&[byte]).unwrap();
            }
        }
        let (rx, failures) = link.finish();
        assert!(failures.lock().is_empty());
        for expected in &msgs {
            match rx.try_recv() {
                Some(TransportEvent::Net { from: 2, msg }) => {
                    assert_eq!(wire::encode(&msg), wire::encode(expected));
                }
                other => panic!("missing message, got {other:?}"),
            }
        }
    }

    #[test]
    fn reactor_mode_matches_ground_truth_closely() {
        let outcome = TcpCluster::run_paced_mode(
            &quick(4, Algorithm::Base),
            Pacing::Freerun,
            TcpMode::Reactor,
        )
        .unwrap();
        assert!(
            outcome.epsilon < 0.02,
            "eps {} ({} of {})",
            outcome.epsilon,
            outcome.reported_matches,
            outcome.truth_matches
        );
        assert!(outcome.messages > 0);
        // Transport stats are populated and show coalescing: strictly
        // fewer syscalls than frames would be ideal, but tiny frames can
        // tie, so assert the weaker invariant syscalls ≤ frames.
        assert_eq!(outcome.transport_per_node.len(), 4);
        let frames: u64 = outcome
            .transport_per_node
            .iter()
            .map(|t| t.frames_sent)
            .sum();
        let syscalls: u64 = outcome
            .transport_per_node
            .iter()
            .map(|t| t.write_syscalls)
            .sum();
        assert_eq!(
            frames, outcome.messages,
            "every message framed exactly once"
        );
        assert!(
            syscalls <= frames,
            "{syscalls} syscalls for {frames} frames"
        );
        assert!(
            outcome
                .transport_per_node
                .iter()
                .any(|t| t.reactor_wakeups > 0),
            "shards never woke"
        );
    }

    #[test]
    fn all_algorithms_run_over_reactor_tcp() {
        for algorithm in Algorithm::ALL {
            let outcome =
                TcpCluster::run_paced_mode(&quick(3, algorithm), Pacing::Freerun, TcpMode::Reactor)
                    .unwrap();
            assert!(
                (0.0..=1.0).contains(&outcome.epsilon),
                "{algorithm}: {}",
                outcome.epsilon
            );
        }
    }

    #[test]
    fn mesh_mode_reports_no_transport_stats() {
        let outcome = TcpCluster::run(&quick(3, Algorithm::Base)).unwrap();
        assert!(outcome.transport_per_node.is_empty());
    }
}
