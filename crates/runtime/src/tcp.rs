//! N nodes over real loopback TCP sockets, framed with the wire codec.
//!
//! The topology is a full mesh of *directed* socket pairs: node `i`
//! connects one `TcpStream` to every peer `j`'s listener and uses it for
//! `i → j` traffic only. After `connect`, the dialer writes a two-byte
//! little-endian handshake naming itself, so the accepting side knows
//! which peer the bytes on that socket come from without trusting
//! ephemeral port numbers. Each accepted socket gets a reader thread that
//! reassembles codec frames ([`dsj_core::wire::FrameDecoder`]) from the
//! byte stream — frames arrive split and coalesced at TCP's whim — and
//! forwards decoded messages into the owning node's event channel, where
//! they meet arrivals injected by the feeder. Node threads, feeder
//! backpressure, quiescence detection and aggregation are the
//! backend-independent harness shared with [`crate::LiveCluster`].
//!
//! Everything stays on `127.0.0.1` with OS-assigned ports; nothing binds
//! a routable interface.

use crate::cluster::{LiveError, LiveOutcome};
use crate::harness::{self, Pacing, Shared};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dsj_core::obs;
use dsj_core::wire::{self, FrameDecoder};
use dsj_core::{ClusterConfig, Msg, NodeEngine, Transport, TransportEvent};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Read-buffer size for socket reader threads.
const READ_CHUNK: usize = 16 * 1024;

fn io_err(node: u16, e: &std::io::Error) -> LiveError {
    LiveError::Io {
        node,
        detail: e.to_string(),
    }
}

/// [`Transport`] over per-peer TCP sockets: decoded inbound traffic and
/// feeder arrivals share one channel; outbound messages are encoded into
/// per-peer write buffers and hit the socket in one `write_all` per peer
/// per frame when the engine calls [`Transport::flush`].
struct TcpTransport {
    me: u16,
    rx: Receiver<TransportEvent>,
    /// `writers[j]` is the `me → j` socket; `None` at `j == me`.
    writers: Vec<Option<TcpStream>>,
    in_flight: Arc<AtomicI64>,
    epoch: Instant,
    /// `wbufs[j]` holds frames encoded for peer `j` since the last flush.
    wbufs: Vec<Vec<u8>>,
    /// How many messages each write buffer holds (for in-flight repair on
    /// a failed flush).
    wpending: Vec<i64>,
}

impl Transport for TcpTransport {
    type Error = LiveError;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), LiveError> {
        let j = to as usize;
        if !matches!(self.writers.get(j), Some(Some(_))) {
            return Err(LiveError::Io {
                node: self.me,
                detail: format!("no socket from node {} to peer {to}", self.me),
            });
        }
        wire::encode_into(&msg, &mut self.wbufs[j]);
        self.wpending[j] += 1;
        // Count the message in flight at buffer time, before any byte
        // becomes visible to the peer: the counter may briefly over-report
        // (buffered, not yet written) but never under-reports, and the
        // engine flushes every frame before blocking, so buffered messages
        // cannot stall quiescence.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, LiveError> {
        self.rx.recv().map_err(|_| LiveError::ChannelClosed)
    }

    fn poll_frame(&mut self, max: usize, frame: &mut Vec<TransportEvent>) -> Result<(), LiveError> {
        // Block for the first event, then drain the already-queued backlog
        // (decoded socket traffic plus feeder arrivals) into one frame.
        frame.push(self.rx.recv().map_err(|_| LiveError::ChannelClosed)?);
        while frame.len() < max {
            match self.rx.try_recv() {
                Some(event) => frame.push(event),
                None => break,
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), LiveError> {
        for j in 0..self.wbufs.len() {
            if self.wbufs[j].is_empty() {
                continue;
            }
            // `send` only buffers toward peers with sockets, so a missing
            // writer under a non-empty buffer is unreachable; skipping it
            // beats panicking mid-abort.
            let Some(stream) = self.writers[j].as_mut() else {
                continue;
            };
            if let Err(e) = stream.write_all(&self.wbufs[j]) {
                // Un-count everything still buffered (this peer's bytes
                // and any peers not yet reached); the run is aborting, but
                // the cluster-wide counter must not leak phantom traffic.
                let orphaned: i64 = self.wpending.iter().sum();
                self.in_flight.fetch_sub(orphaned, Ordering::SeqCst);
                for (buf, pending) in self.wbufs.iter_mut().zip(&mut self.wpending) {
                    buf.clear();
                    *pending = 0;
                }
                return Err(io_err(self.me, &e));
            }
            self.wbufs[j].clear();
            self.wpending[j] = 0;
        }
        Ok(())
    }

    fn now_us(&mut self) -> u64 {
        // dsj-lint: allow(hot-path-opaque-call) — the live clock *is* wall time; it feeds only time-window eviction and the governor, never reproduced results
        self.epoch.elapsed().as_micros() as u64
    }

    fn quiesce(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reader half of one directed link: reassembles frames from `stream`
/// (bytes sent by `from`) and forwards decoded messages to node
/// `to_node`'s event channel.
///
/// Returns when the peer closes the socket (normal shutdown), the event
/// channel closes (the node is gone), or a fatal error is recorded in
/// `failures`. Decode errors are fatal for the link, not resynchronized:
/// after garbage, frame boundaries are unknowable.
pub(crate) fn pump_frames(
    mut stream: TcpStream,
    from: u16,
    to_node: u16,
    tx: &Sender<TransportEvent>,
    failures: &Mutex<Vec<LiveError>>,
) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let nread = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed: normal shutdown
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                failures.lock().push(io_err(to_node, &e));
                return;
            }
        };
        decoder.feed(&chunk[..nread]);
        loop {
            match decoder.next_msg() {
                Ok(Some(msg)) => {
                    if tx.send(TransportEvent::Net { from, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    failures.lock().push(LiveError::Decode {
                        node: to_node,
                        detail: e.to_string(),
                    });
                    return;
                }
            }
        }
    }
}

/// Opens node `me`'s listener-side sockets: accepts `expect` connections,
/// reads each dialer's two-byte handshake, and spawns a [`pump_frames`]
/// reader per link feeding `tx`.
fn accept_links(
    listener: TcpListener,
    me: u16,
    expect: usize,
    tx: Sender<TransportEvent>,
    failures: Arc<Mutex<Vec<LiveError>>>,
) -> Result<(), LiveError> {
    for _ in 0..expect {
        let (mut stream, _) = listener.accept().map_err(|e| io_err(me, &e))?;
        stream.set_nodelay(true).map_err(|e| io_err(me, &e))?;
        let mut hello = [0u8; 2];
        stream.read_exact(&mut hello).map_err(|e| io_err(me, &e))?;
        let from = u16::from_le_bytes(hello);
        let tx = tx.clone();
        let failures = Arc::clone(&failures);
        thread::spawn(move || pump_frames(stream, from, me, &tx, &failures));
    }
    Ok(())
}

/// Runs [`dsj_core::JoinNode`]s as live threads joined by real loopback
/// TCP sockets carrying [`dsj_core::wire`]-framed messages.
///
/// Same concurrency structure as [`crate::LiveCluster`], but every
/// inter-node message round-trips through the binary codec and the
/// kernel's TCP stack — serialization cost, syscalls, stream
/// fragmentation and reassembly are all real.
pub struct TcpCluster;

impl TcpCluster {
    /// Runs the configuration's full workload over loopback TCP at full
    /// speed and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`LiveError::Config`] for invalid configurations;
    /// [`LiveError::Io`] / [`LiveError::Decode`] for socket-level
    /// failures; [`LiveError::NodePanicked`] if a node thread dies.
    pub fn run(cfg: &ClusterConfig) -> Result<LiveOutcome, LiveError> {
        Self::run_paced(cfg, Pacing::Freerun)
    }

    /// Runs the configuration's workload with an explicit feeder
    /// [`Pacing`]. [`Pacing::Lockstep`] makes the run deterministic and
    /// equal, node for node, to the other two backends.
    ///
    /// # Errors
    ///
    /// As for [`TcpCluster::run`].
    pub fn run_paced(cfg: &ClusterConfig, pacing: Pacing) -> Result<LiveOutcome, LiveError> {
        cfg.validate()?;
        let mut reg = obs::Registry::default();
        let n = cfg.n as usize;
        let (arrivals, truth_matches) =
            reg.time_phase("workload", || (cfg.arrivals(), cfg.ground_truth_matches()));

        let spawn_started = Instant::now();
        let shared = Shared::new();
        let mut senders: Vec<Sender<TransportEvent>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<TransportEvent>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Bind every node's listener first so peers can dial in any order.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for me in 0..n {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err(me as u16, &e))?;
            addrs.push(listener.local_addr().map_err(|e| io_err(me as u16, &e))?);
            listeners.push(listener);
        }

        // Accept threads: each node takes n−1 inbound links and spawns a
        // frame reader per link.
        let mut acceptors = Vec::with_capacity(n);
        for (me, listener) in listeners.into_iter().enumerate() {
            let tx = senders[me].clone();
            let failures = Arc::clone(&shared.failures);
            acceptors.push(thread::spawn(move || {
                accept_links(listener, me as u16, n - 1, tx, failures)
            }));
        }

        // Dial the full mesh: writers[i][j] carries i → j.
        let mut writers: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (i, row) in writers.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let mut stream = TcpStream::connect(addrs[j]).map_err(|e| io_err(i as u16, &e))?;
                stream.set_nodelay(true).map_err(|e| io_err(i as u16, &e))?;
                stream
                    .write_all(&(i as u16).to_le_bytes())
                    .map_err(|e| io_err(i as u16, &e))?;
                *slot = Some(stream);
            }
        }
        // All dials completed, so every acceptor can finish; join them to
        // guarantee every reader thread is live before traffic starts.
        for acceptor in acceptors {
            match acceptor.join() {
                Ok(result) => result?,
                Err(_) => return Err(LiveError::ChannelClosed),
            }
        }

        let mut handles = Vec::with_capacity(n);
        for (me, row) in writers.into_iter().enumerate() {
            let transport = TcpTransport {
                me: me as u16,
                rx: receivers[me].clone(),
                writers: row,
                in_flight: Arc::clone(&shared.in_flight),
                epoch: shared.epoch,
                wbufs: (0..n).map(|_| Vec::with_capacity(1024)).collect(),
                wpending: vec![0; n],
            };
            let engine = NodeEngine::new(cfg.build_node(me as u16));
            handles.push(harness::spawn_node(me as u16, engine, transport, &shared));
        }
        reg.phase_add("spawn", spawn_started.elapsed());

        harness::drive(
            cfg,
            pacing,
            &mut reg,
            &arrivals,
            truth_matches,
            harness::Spawned {
                shared,
                senders,
                handles,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_core::Algorithm;
    use dsj_stream::gen::WorkloadKind;

    fn quick(n: u16, algorithm: Algorithm) -> ClusterConfig {
        ClusterConfig::new(n, algorithm)
            .window(128)
            .domain(1 << 9)
            .tuples(2_000)
            .workload(WorkloadKind::Zipf { alpha: 0.4 })
            .seed(7)
    }

    #[test]
    fn base_tcp_cluster_is_nearly_exact() {
        let outcome = TcpCluster::run(&quick(4, Algorithm::Base)).unwrap();
        assert!(
            outcome.epsilon < 0.02,
            "eps {} ({} of {})",
            outcome.epsilon,
            outcome.reported_matches,
            outcome.truth_matches
        );
        assert!(outcome.messages > 0);
    }

    #[test]
    fn all_algorithms_run_over_tcp() {
        for algorithm in Algorithm::ALL {
            let outcome = TcpCluster::run(&quick(3, algorithm)).unwrap();
            assert!(
                (0.0..=1.0).contains(&outcome.epsilon),
                "{algorithm}: {}",
                outcome.epsilon
            );
        }
    }

    #[test]
    fn tcp_run_emits_observation_record_with_phases() {
        let collector = obs::Collector::install();
        let cfg = quick(3, Algorithm::Dft);
        let outcome = obs::scoped("tcp", 2, || TcpCluster::run(&cfg).unwrap());
        let records = collector.drain();
        assert_eq!(records.len(), 1);
        let reg = &records[0].registry;
        assert_eq!(reg.counter("live.messages"), outcome.messages);
        for phase in ["workload", "spawn", "inject", "drain", "join"] {
            assert!(reg.phase(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn invalid_config_rejected_before_binding() {
        let err = TcpCluster::run(&quick(1, Algorithm::Base)).unwrap_err();
        assert_eq!(err, LiveError::Config(dsj_core::RunError::TooFewNodes(1)));
    }

    #[test]
    fn corrupt_frame_on_the_socket_is_a_typed_error_not_a_panic() {
        // Drive the reader half of one link directly over a real socket
        // and feed it garbage: a well-formed length prefix followed by a
        // body with an unknown version nibble.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = unbounded();
        let failures: Arc<Mutex<Vec<LiveError>>> = Arc::new(Mutex::new(Vec::new()));
        let reader = {
            let failures = Arc::clone(&failures);
            thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                pump_frames(stream, 1, 0, &tx, &failures);
            })
        };
        let mut dialer = TcpStream::connect(addr).unwrap();
        // One valid frame first: the link decodes it and forwards it.
        let valid = wire::encode(&Msg::Tuple {
            tuple: dsj_stream::Tuple::new(dsj_stream::StreamId::R, 42, 7, 1),
            piggyback: Vec::new(),
        });
        dialer.write_all(&valid).unwrap();
        // Then a corrupt one: version nibble 0xF is not the codec's.
        dialer.write_all(&[1, 0, 0, 0, 0xF0]).unwrap();
        dialer.flush().unwrap();
        reader.join().unwrap();
        match rx.try_recv() {
            Some(TransportEvent::Net { from: 1, msg }) => {
                assert_eq!(msg.wire_bytes(), valid.len());
            }
            other => panic!("expected the valid frame first, got {other:?}"),
        }
        let recorded = failures.lock();
        assert_eq!(recorded.len(), 1);
        assert!(
            matches!(&recorded[0], LiveError::Decode { node: 0, .. }),
            "{recorded:?}"
        );
    }

    #[test]
    fn chunk_boundaries_do_not_affect_decoding() {
        // Byte-at-a-time delivery across the socket still reassembles the
        // exact message stream.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = unbounded();
        let failures: Arc<Mutex<Vec<LiveError>>> = Arc::new(Mutex::new(Vec::new()));
        let reader = {
            let failures = Arc::clone(&failures);
            thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                pump_frames(stream, 2, 0, &tx, &failures);
            })
        };
        let mut dialer = TcpStream::connect(addr).unwrap();
        dialer.set_nodelay(true).unwrap();
        let msgs: Vec<Msg> = (0..5)
            .map(|i| Msg::Tuple {
                tuple: dsj_stream::Tuple::new(dsj_stream::StreamId::S, i, u64::from(i), 3),
                piggyback: Vec::new(),
            })
            .collect();
        for msg in &msgs {
            for byte in wire::encode(msg) {
                dialer.write_all(&[byte]).unwrap();
            }
        }
        drop(dialer);
        reader.join().unwrap();
        assert!(failures.lock().is_empty());
        for expected in &msgs {
            match rx.try_recv() {
                Some(TransportEvent::Net { from: 2, msg }) => {
                    assert_eq!(wire::encode(&msg), wire::encode(expected));
                }
                other => panic!("missing message, got {other:?}"),
            }
        }
    }
}
