//! The backend-independent half of a live cluster run.
//!
//! Both live backends (threads-over-channels in [`crate::LiveCluster`],
//! sockets in [`crate::TcpCluster`]) share everything except how bytes
//! move: one OS thread per node running [`NodeEngine::run`] over its
//! transport, a feeder injecting the arrival schedule, an in-flight event
//! counter for quiescence detection, and the final aggregation into a
//! [`LiveOutcome`]. That shared half lives here; the backends only
//! construct their transports and hand the pieces over to the driver.
//!
//! # Driver / feeder split
//!
//! The run lifecycle — spawn → feed → quiesce → join → aggregate — is one
//! backend-independent driver ([`drive_with`]) parameterized by a
//! [`Feeder`], the policy for *when* each arrival is injected:
//!
//! * [`ClosedLoop`] waits for the cluster: [`Pacing::Freerun`] caps the
//!   in-flight backlog, [`Pacing::Lockstep`] drains to zero between
//!   arrivals (the deterministic, cross-backend-equivalent mode).
//! * [`OpenLoopFeeder`] does not wait: arrivals are injected on a
//!   virtual-time schedule at a target rate regardless of how fast the
//!   cluster drains them — the load-generator mode. Each arrival carries
//!   an injection timestamp, and the engines record injection →
//!   end-of-processing delay into per-node latency histograms. A backlog
//!   past the overload bound ends injection early and marks the run
//!   overloaded instead of letting the schedule drift meaninglessly.
//!
//! # In-flight accounting
//!
//! A single cluster-wide `AtomicI64` counts events that have been produced
//! but not fully processed. Producers (the feeder for arrivals, a
//! transport's `send` for messages) increment *before* the event becomes
//! visible; the engine's `quiesce` hook decrements *after* the event's
//! processing — including any sends it triggered, which were counted
//! first — so the counter can only read zero when the cluster is globally
//! idle.

use crate::cluster::{LiveError, LiveOutcome, TransportStats};
use crossbeam::channel::Sender;
use dsj_core::obs;
use dsj_core::{ClusterConfig, NodeEngine, NodeMetrics, Transport, TransportEvent};
use dsj_stream::gen::Arrival;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How the closed-loop feeder paces arrivals into a live cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Inject as fast as backpressure allows (a bounded event backlog).
    /// Maximum throughput; remote probe timing races benignly.
    Freerun,
    /// Drain the cluster to quiescence between consecutive arrivals.
    /// Slow, but the global event order becomes deterministic — the mode
    /// under which every backend (simulated included) is provably
    /// equivalent.
    Lockstep,
}

/// An open-loop injection schedule: arrivals enter the cluster at a fixed
/// aggregate rate on a virtual-time schedule, independent of how fast the
/// cluster drains them. The load-generator counterpart of [`Pacing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoop {
    /// Target aggregate injection rate, tuples per second across the
    /// whole cluster.
    pub rate_tps: f64,
    /// Backlog (in-flight events) at which the run is declared overloaded
    /// and injection stops; `None` picks a bound scaled to the cluster
    /// size. Without a bound, an offered rate above capacity would grow
    /// the queues — and the measured latencies — without limit, telling
    /// us nothing beyond "overloaded".
    pub abort_backlog: Option<i64>,
}

impl OpenLoop {
    /// An open-loop schedule at `rate_tps` with the default overload
    /// bound.
    pub fn new(rate_tps: f64) -> Self {
        OpenLoop {
            rate_tps,
            abort_backlog: None,
        }
    }

    /// The effective overload bound for a cluster of `n` nodes.
    fn backlog_bound(&self, n: u16) -> i64 {
        self.abort_backlog.unwrap_or(256 * i64::from(n).max(4))
    }
}

/// What a feeder observed while injecting the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedReport {
    /// Arrivals actually injected (all of them unless the feeder bailed
    /// out on overload).
    pub injected: usize,
    /// Highest in-flight backlog observed at injection points.
    pub peak_backlog: i64,
    /// `true` when an open-loop feeder stopped early because the backlog
    /// crossed its overload bound.
    pub overloaded: bool,
}

/// What one open-loop (load-generator) run measured: the regular outcome
/// plus the offered rate and the feeder's overload observations. Per-tuple
/// delivery latency is in
/// [`LiveOutcome::delivery_latency_us`](crate::LiveOutcome).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRun {
    /// The run outcome; `tuples_per_sec` is the *achieved* rate.
    pub outcome: LiveOutcome,
    /// The rate the feeder tried to inject at, tuples per second.
    pub offered_tps: f64,
    /// Arrivals injected before the run ended.
    pub injected: usize,
    /// Arrivals the schedule held in total.
    pub total: usize,
    /// Highest in-flight backlog observed at injection points.
    pub peak_backlog: i64,
    /// `true` when injection stopped early on overload.
    pub overloaded: bool,
}

/// State shared between the feeder, the node threads and the reader
/// threads of one live run.
pub(crate) struct Shared {
    /// Events produced but not yet fully processed, cluster-wide.
    pub in_flight: Arc<AtomicI64>,
    /// Failure reporting from any thread. Every failure is kept; the
    /// harness aggregates them (deduplicated by node and kind, in
    /// first-seen order) when surfacing the run's error.
    pub failures: Arc<Mutex<Vec<LiveError>>>,
    /// Cluster start; live transports report clocks relative to it.
    pub epoch: Instant,
}

impl Shared {
    pub fn new() -> Self {
        Shared {
            in_flight: Arc::new(AtomicI64::new(0)),
            failures: Arc::new(Mutex::new(Vec::new())),
            epoch: Instant::now(),
        }
    }

    /// All reported failures so far, deduplicated by ([`LiveError::kind_key`])
    /// node and kind in first-seen order: `None` when the run is clean, the
    /// lone error when exactly one distinct failure was reported, and
    /// [`LiveError::Faults`] listing every distinct failure otherwise.
    fn failure(&self) -> Option<LiveError> {
        let mut distinct: Vec<LiveError> = Vec::new();
        for e in self.failures.lock().iter() {
            if !distinct.iter().any(|d| d.kind_key() == e.kind_key()) {
                distinct.push(e.clone());
            }
        }
        match distinct.len() {
            0 => None,
            1 => distinct.pop(),
            _ => Some(LiveError::Faults(distinct)),
        }
    }
}

/// Bounded-backoff waiting for the feeder and quiescence loops: a short
/// burst of `yield_now` spins (the common case — another runnable thread
/// finishes the work within a scheduling quantum), then timed parks so a
/// long drain costs wakeups, not a spinning core. Nothing unparks the
/// waiter early: the park timeout *is* the poll interval, so no wake
/// protocol (and no atomics-ordering obligation) exists to get wrong.
struct Backoff {
    spins: u32,
}

impl Backoff {
    /// Yield-spins before the first timed park.
    const SPIN_LIMIT: u32 = 64;
    /// Park duration once spinning gives up; also bounds how stale a
    /// failure check can get while waiting.
    const PARK: Duration = Duration::from_micros(100);

    fn new() -> Self {
        Backoff { spins: 0 }
    }

    /// Waits one step: a yield while in the spin phase, a timed park after.
    fn wait(&mut self) {
        if self.spins < Self::SPIN_LIMIT {
            self.spins += 1;
            thread::yield_now();
        } else {
            thread::park_timeout(Self::PARK);
        }
    }

    /// Back to the spin phase (progress was observed).
    fn reset(&mut self) {
        self.spins = 0;
    }
}

/// Records one node's transport counters as observability gauges.
fn record_transport(reg: &mut obs::Registry, me: u16, t: &TransportStats) {
    reg.gauge_set(
        &format!("node.{me:02}.pending_write_peak"),
        t.pending_peak_bytes as f64,
    );
    let per_syscall = if t.write_syscalls == 0 {
        0.0
    } else {
        t.frames_sent as f64 / t.write_syscalls as f64
    };
    reg.gauge_set(&format!("node.{me:02}.frames_per_syscall"), per_syscall);
    reg.gauge_set(
        &format!("node.{me:02}.reactor_wakeups"),
        t.reactor_wakeups as f64,
    );
}

/// Spawns a node thread: the engine's drive loop over `transport`, with
/// failures reported through the shared state.
pub(crate) fn spawn_node<T>(
    engine: NodeEngine,
    mut transport: T,
    shared: &Shared,
) -> JoinHandle<NodeEngine>
where
    T: Transport<Error = LiveError> + Send + 'static,
{
    let failures = Arc::clone(&shared.failures);
    thread::spawn(move || {
        let mut engine = engine;
        if let Err(e) = engine.run(&mut transport) {
            failures.lock().push(e);
        }
        engine
    })
}

/// Backend-provided teardown hook: runs after the node threads have
/// joined (so no more traffic can move), shuts down whatever transport
/// machinery the backend spawned (e.g. reactor shards), and returns
/// per-node [`TransportStats`] for the outcome.
pub(crate) type FinishHook = Box<dyn FnOnce() -> Vec<TransportStats> + Send>;

/// A spawned (but not yet fed) live cluster, backend-independent from
/// here on: per-node event queues (arrivals and shutdown go this way on
/// every backend), node threads in id order, and the shared run state.
pub(crate) struct Spawned {
    /// Shared feeder/node/reader state.
    pub shared: Shared,
    /// Per-node event queues.
    pub senders: Vec<Sender<TransportEvent>>,
    /// Node threads, in id order.
    pub handles: Vec<JoinHandle<NodeEngine>>,
    /// Transport teardown + stats collection; `None` for backends with
    /// nothing to report.
    pub finish: Option<FinishHook>,
}

/// Injection policy: *when* each scheduled arrival enters the cluster.
/// The driver owns everything around the feed (spawn, quiesce, join,
/// aggregate); a feeder owns only the injection loop.
pub(crate) trait Feeder {
    /// Injects `arrivals` into the per-node queues.
    ///
    /// The contract the quiescence counter depends on: increment
    /// `shared.in_flight` *before* a successful send, and give the
    /// increment back if the send fails — a counted event that never
    /// became visible would wedge the drain loop forever.
    ///
    /// # Errors
    ///
    /// A failure reported by the cluster while feeding, or the send
    /// failure itself.
    fn feed(
        &mut self,
        arrivals: &[Arrival],
        senders: &[Sender<TransportEvent>],
        shared: &Shared,
    ) -> Result<FeedReport, LiveError>;
}

/// The closed-loop feeder: waits for the cluster before each injection,
/// per [`Pacing`].
pub(crate) struct ClosedLoop {
    threshold: i64,
}

impl ClosedLoop {
    /// Feeder for `pacing` over a cluster of `n` nodes.
    ///
    /// Freerun caps the events in flight so slow consumers don't
    /// accumulate unbounded queues — unbounded backlog would let probe
    /// messages arrive long after their window contents were evicted,
    /// losing matches to staleness rather than to the algorithm. Lockstep
    /// waits for zero: every arrival's full causal cone lands before the
    /// next moves.
    pub fn new(pacing: Pacing, n: u16) -> Self {
        ClosedLoop {
            threshold: match pacing {
                Pacing::Freerun => 8 * i64::from(n),
                Pacing::Lockstep => 1,
            },
        }
    }
}

impl Feeder for ClosedLoop {
    fn feed(
        &mut self,
        arrivals: &[Arrival],
        senders: &[Sender<TransportEvent>],
        shared: &Shared,
    ) -> Result<FeedReport, LiveError> {
        let mut backoff = Backoff::new();
        let mut peak = 0i64;
        for a in arrivals {
            loop {
                let backlog = shared.in_flight.load(Ordering::SeqCst);
                if backlog < self.threshold {
                    peak = peak.max(backlog);
                    break;
                }
                if let Some(e) = shared.failure() {
                    return Err(e);
                }
                backoff.wait();
            }
            backoff.reset();
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if senders[a.node as usize]
                .send(TransportEvent::Arrival(a.tuple()))
                .is_err()
            {
                // The arrival never became visible — give its increment
                // back, or a concurrent reader would wait on a count that
                // can no longer drain.
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(shared.failure().unwrap_or(LiveError::ChannelClosed));
            }
        }
        Ok(FeedReport {
            injected: arrivals.len(),
            peak_backlog: peak,
            overloaded: false,
        })
    }
}

/// The open-loop feeder: arrival `k` of the schedule is due at
/// `k / rate` seconds after the feed starts, and is injected then whether
/// or not the cluster has drained earlier ones — the defining property of
/// open-loop load generation (a closed loop can never observe
/// saturation: it slows its offered load to whatever the system sustains).
///
/// Each injection is stamped with the cluster-epoch clock — the same
/// clock every live transport reports from `now_us` — so the engines can
/// record injection → end-of-processing delivery latency. If the backlog
/// crosses the overload bound, injection stops and the run is reported
/// overloaded.
pub(crate) struct OpenLoopFeeder {
    interarrival_ns: f64,
    abort_backlog: i64,
}

impl OpenLoopFeeder {
    /// Feeder for `spec` over a cluster of `n` nodes.
    pub fn new(spec: &OpenLoop, n: u16) -> Self {
        OpenLoopFeeder {
            interarrival_ns: 1e9 / spec.rate_tps.max(1e-6),
            abort_backlog: spec.backlog_bound(n),
        }
    }
}

impl Feeder for OpenLoopFeeder {
    fn feed(
        &mut self,
        arrivals: &[Arrival],
        senders: &[Sender<TransportEvent>],
        shared: &Shared,
    ) -> Result<FeedReport, LiveError> {
        let start = Instant::now();
        let mut peak = 0i64;
        for (k, a) in arrivals.iter().enumerate() {
            // Virtual-time schedule: wait out the gap to this arrival's
            // due time. Parks are capped so failure checks stay fresh
            // even at very low rates.
            let due_ns = (k as f64 * self.interarrival_ns) as u64;
            loop {
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                if elapsed_ns >= due_ns {
                    break;
                }
                if let Some(e) = shared.failure() {
                    return Err(e);
                }
                let gap = Duration::from_nanos(due_ns - elapsed_ns);
                thread::park_timeout(gap.min(Duration::from_millis(1)));
            }
            let backlog = shared.in_flight.load(Ordering::SeqCst);
            peak = peak.max(backlog);
            if backlog >= self.abort_backlog {
                // Overload: the cluster is provably not keeping up with
                // the offered rate. Stop injecting — latencies past this
                // point would only measure the queue we chose to build.
                return Ok(FeedReport {
                    injected: k,
                    peak_backlog: peak,
                    overloaded: true,
                });
            }
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let injected_us = shared.epoch.elapsed().as_micros() as u64;
            if senders[a.node as usize]
                .send(TransportEvent::StampedArrival {
                    tuple: a.tuple(),
                    injected_us,
                })
                .is_err()
            {
                // Same giveback contract as the closed loop.
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(shared.failure().unwrap_or(LiveError::ChannelClosed));
            }
        }
        Ok(FeedReport {
            injected: arrivals.len(),
            peak_backlog: peak,
            overloaded: false,
        })
    }
}

/// Feeds the arrival schedule with the closed-loop feeder, waits for
/// quiescence, shuts the node threads down and aggregates their engines
/// into a [`LiveOutcome`].
pub(crate) fn drive(
    cfg: &ClusterConfig,
    pacing: Pacing,
    reg: &mut obs::Registry,
    arrivals: &[Arrival],
    truth_matches: u64,
    cluster: Spawned,
) -> Result<LiveOutcome, LiveError> {
    let mut feeder = ClosedLoop::new(pacing, cfg.n);
    drive_with(&mut feeder, reg, arrivals, truth_matches, cluster).map(|(outcome, _)| outcome)
}

/// Feeds the arrival schedule open-loop at the spec's target rate and
/// reports the run as a [`LoadRun`] (outcome + offered rate + overload
/// observations).
pub(crate) fn drive_open(
    cfg: &ClusterConfig,
    spec: &OpenLoop,
    reg: &mut obs::Registry,
    arrivals: &[Arrival],
    truth_matches: u64,
    cluster: Spawned,
) -> Result<LoadRun, LiveError> {
    let mut feeder = OpenLoopFeeder::new(spec, cfg.n);
    let (outcome, report) = drive_with(&mut feeder, reg, arrivals, truth_matches, cluster)?;
    Ok(LoadRun {
        outcome,
        offered_tps: spec.rate_tps,
        injected: report.injected,
        total: arrivals.len(),
        peak_backlog: report.peak_backlog,
        overloaded: report.overloaded,
    })
}

/// The backend-independent driver: feed (via `feeder`) → quiesce → join →
/// aggregate. Every failure path runs the backend's finish hook, and
/// failures surfaced by any thread — including node panics — are settled
/// together into one aggregated error.
pub(crate) fn drive_with<F: Feeder>(
    feeder: &mut F,
    reg: &mut obs::Registry,
    arrivals: &[Arrival],
    truth_matches: u64,
    cluster: Spawned,
) -> Result<(LiveOutcome, FeedReport), LiveError> {
    let Spawned {
        shared,
        senders,
        handles,
        finish,
    } = cluster;
    // On every exit path the backend's finish hook must run — it tears
    // down transport machinery (reactor shards) that would otherwise
    // outlive the run.
    fn abort(
        finish: Option<FinishHook>,
        e: LiveError,
    ) -> Result<(LiveOutcome, FeedReport), LiveError> {
        if let Some(f) = finish {
            let _ = f();
        }
        Err(e)
    }
    // Feed arrivals in global order (per-channel FIFO keeps each node's
    // sequence numbers ascending, as the windows require).
    let start = Instant::now();
    let report = match feeder.feed(arrivals, &senders, &shared) {
        Ok(report) => report,
        Err(e) => return abort(finish, e),
    };
    reg.phase_add("inject", start.elapsed());

    // Quiesce: wait until no events remain anywhere in the cluster.
    let drain_started = Instant::now();
    let mut backoff = Backoff::new();
    let mut last = i64::MAX;
    while {
        let now = shared.in_flight.load(Ordering::SeqCst);
        if now < last {
            backoff.reset();
        }
        last = now;
        now > 0
    } {
        if let Some(e) = shared.failure() {
            return abort(finish, e);
        }
        backoff.wait();
    }
    let wall_time = start.elapsed();
    reg.phase_add("drain", drain_started.elapsed());
    for tx in senders {
        let _ = tx.send(TransportEvent::Shutdown);
    }

    let join_started = Instant::now();
    let mut engines = Vec::with_capacity(handles.len());
    let mut panicked: Vec<u16> = Vec::new();
    for (id, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(engine) => engines.push(engine),
            Err(_) => panicked.push(id as u16),
        }
    }
    // Node threads are done; stop the backend's transport machinery and
    // collect its per-node counters — and only then settle failures, so
    // anything the teardown surfaced is included. Panics are settled
    // *through* the shared failure list, not short-circuited: a node
    // panic caused by a transport fault must surface both (the fault is
    // the root cause, the panic its symptom).
    let transport_per_node = finish.map_or_else(Vec::new, |f| f());
    if !panicked.is_empty() {
        let mut failures = shared.failures.lock();
        for id in panicked {
            failures.push(LiveError::NodePanicked(id));
        }
    }
    if let Some(e) = shared.failure() {
        return Err(e);
    }
    let mut totals = NodeMetrics::default();
    let mut delivery_latency_us = obs::Histogram::new();
    for engine in &engines {
        totals.absorb(engine.metrics());
        delivery_latency_us.merge(engine.delivery_latency());
    }
    reg.phase_add("join", join_started.elapsed());
    let reported_matches = totals.matches();
    let epsilon = if truth_matches == 0 {
        0.0
    } else {
        ((truth_matches as f64 - reported_matches as f64) / truth_matches as f64).max(0.0)
    };
    let secs = wall_time.as_secs_f64().max(1e-9);
    let outcome = LiveOutcome {
        truth_matches,
        reported_matches,
        epsilon,
        messages: totals.tuple_msgs_sent + totals.summary_msgs_sent,
        totals,
        per_node: engines.iter().map(|e| *e.metrics()).collect(),
        match_digests: engines.iter().map(NodeEngine::match_digest).collect(),
        transport_per_node,
        delivery_latency_us,
        wall_time,
        tuples_per_sec: report.injected as f64 / secs,
    };
    if obs::enabled() {
        reg.counter_add("runs", 1);
        reg.counter_add("truth_matches", outcome.truth_matches);
        reg.counter_add("reported_matches", outcome.reported_matches);
        reg.counter_add("live.messages", outcome.messages);
        reg.counter_add("tuples", report.injected as u64);
        reg.gauge_set("epsilon", outcome.epsilon);
        reg.gauge_set("wall_time_secs", outcome.wall_time.as_secs_f64());
        reg.gauge_set("tuples_per_sec", outcome.tuples_per_sec);
        if outcome.delivery_latency_us.count() > 0 {
            reg.histogram_merge("delivery_latency_us", &outcome.delivery_latency_us);
        }
        for (me, engine) in engines.iter().enumerate() {
            engine.metrics().record_into(reg, me as u16);
        }
        for (me, t) in outcome.transport_per_node.iter().enumerate() {
            record_transport(reg, me as u16, t);
        }
        obs::emit(std::mem::take(reg));
    }
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use dsj_core::Algorithm;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn no_failures_reports_none() {
        assert_eq!(Shared::new().failure(), None);
    }

    #[test]
    fn a_single_failure_passes_through_unwrapped() {
        let shared = Shared::new();
        shared.failures.lock().push(LiveError::NodePanicked(3));
        assert_eq!(shared.failure(), Some(LiveError::NodePanicked(3)));
    }

    #[test]
    fn distinct_failures_aggregate_in_first_seen_order() {
        let shared = Shared::new();
        {
            let mut f = shared.failures.lock();
            f.push(LiveError::Io {
                node: 1,
                detail: "broken pipe".to_string(),
            });
            f.push(LiveError::ChannelClosed);
            f.push(LiveError::NodePanicked(0));
        }
        match shared.failure() {
            Some(LiveError::Faults(all)) => {
                assert_eq!(all.len(), 3);
                assert!(matches!(all[0], LiveError::Io { node: 1, .. }));
                assert_eq!(all[1], LiveError::ChannelClosed);
                assert_eq!(all[2], LiveError::NodePanicked(0));
            }
            other => panic!("expected Faults, got {other:?}"),
        }
    }

    #[test]
    fn duplicates_by_node_and_kind_collapse() {
        let shared = Shared::new();
        {
            let mut f = shared.failures.lock();
            // Same kind, same node: one event reported twice.
            f.push(LiveError::Io {
                node: 2,
                detail: "reset".to_string(),
            });
            f.push(LiveError::Io {
                node: 2,
                detail: "reset again".to_string(),
            });
            // Same kind, different node: genuinely distinct.
            f.push(LiveError::Io {
                node: 4,
                detail: "reset".to_string(),
            });
            // Every peer sees the same closed channel once it dies.
            f.push(LiveError::ChannelClosed);
            f.push(LiveError::ChannelClosed);
        }
        match shared.failure() {
            Some(LiveError::Faults(all)) => {
                assert_eq!(all.len(), 3);
                assert!(matches!(all[0], LiveError::Io { node: 2, .. }));
                assert!(matches!(all[1], LiveError::Io { node: 4, .. }));
                assert_eq!(all[2], LiveError::ChannelClosed);
            }
            other => panic!("expected Faults, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_display_lists_every_failure() {
        let e = LiveError::Faults(vec![LiveError::NodePanicked(1), LiveError::ChannelClosed]);
        assert_eq!(
            e.to_string(),
            "2 transport failures: node thread 1 panicked; \
             inter-node channel closed unexpectedly"
        );
    }

    // --- Driver error-path harness -------------------------------------

    fn test_cfg(n: u16) -> ClusterConfig {
        ClusterConfig::new(n, Algorithm::Base)
            .window(16)
            .domain(64)
            .tuples(12)
            .seed(11)
    }

    /// A finish hook that counts its invocations.
    fn counting_hook(counter: &Arc<AtomicU32>) -> FinishHook {
        let counter = Arc::clone(counter);
        Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
            Vec::new()
        })
    }

    /// Node threads that park on their queues like real engines would —
    /// here they just return their engine on the first event.
    fn idle_handles(cfg: &ClusterConfig) -> Vec<JoinHandle<NodeEngine>> {
        (0..cfg.n)
            .map(|me| {
                let engine = NodeEngine::new(cfg.build_node(me));
                thread::spawn(move || engine)
            })
            .collect()
    }

    #[test]
    fn send_failure_gives_its_increment_back_and_runs_finish() {
        let cfg = test_cfg(3);
        let arrivals = cfg.arrivals();
        let shared = Shared::new();
        let in_flight = Arc::clone(&shared.in_flight);
        // Senders whose receivers are already gone: the first send fails.
        let senders: Vec<Sender<TransportEvent>> = (0..cfg.n)
            .map(|_| {
                let (tx, rx) = unbounded();
                drop(rx);
                tx
            })
            .collect();
        let finished = Arc::new(AtomicU32::new(0));
        let spawned = Spawned {
            shared,
            senders,
            handles: idle_handles(&cfg),
            finish: Some(counting_hook(&finished)),
        };
        let mut reg = obs::Registry::default();
        let err = drive(&cfg, Pacing::Freerun, &mut reg, &arrivals, 0, spawned).unwrap_err();
        assert_eq!(err, LiveError::ChannelClosed);
        // The failed send's increment was given back — nothing leaks.
        assert_eq!(in_flight.load(Ordering::SeqCst), 0);
        // The backend teardown ran exactly once on the abort path.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn quiesce_failure_aborts_through_finish_hook() {
        let cfg = test_cfg(3);
        let shared = Shared::new();
        // A wedged cluster: one phantom in-flight event that never drains,
        // and a failure reported by a reader thread.
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        shared.failures.lock().push(LiveError::Io {
            node: 2,
            detail: "connection reset".to_string(),
        });
        let senders: Vec<Sender<TransportEvent>> = (0..cfg.n).map(|_| unbounded().0).collect();
        let finished = Arc::new(AtomicU32::new(0));
        let spawned = Spawned {
            shared,
            senders,
            handles: idle_handles(&cfg),
            finish: Some(counting_hook(&finished)),
        };
        let mut reg = obs::Registry::default();
        // Empty schedule: the feed is a no-op, the quiesce loop sees the
        // failure.
        let err = drive(&cfg, Pacing::Freerun, &mut reg, &[], 0, spawned).unwrap_err();
        assert!(matches!(err, LiveError::Io { node: 2, .. }), "{err:?}");
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn node_panic_aggregates_with_transport_faults() {
        let cfg = test_cfg(3);
        let shared = Shared::new();
        // A transport fault was recorded mid-run...
        shared.failures.lock().push(LiveError::Io {
            node: 1,
            detail: "broken pipe".to_string(),
        });
        // ...and it took node 1's thread down with it.
        let handles: Vec<JoinHandle<NodeEngine>> = (0..cfg.n)
            .map(|me| {
                let engine = NodeEngine::new(cfg.build_node(me));
                thread::spawn(move || -> NodeEngine {
                    if me == 1 {
                        panic!("induced node failure");
                    }
                    engine
                })
            })
            .collect();
        let senders: Vec<Sender<TransportEvent>> = (0..cfg.n).map(|_| unbounded().0).collect();
        let finished = Arc::new(AtomicU32::new(0));
        let spawned = Spawned {
            shared,
            senders,
            handles,
            finish: Some(counting_hook(&finished)),
        };
        let mut reg = obs::Registry::default();
        let err = drive(&cfg, Pacing::Freerun, &mut reg, &[], 0, spawned).unwrap_err();
        // Both the root cause and the panic surface, fault first.
        match err {
            LiveError::Faults(all) => {
                assert_eq!(all.len(), 2);
                assert!(matches!(all[0], LiveError::Io { node: 1, .. }));
                assert_eq!(all[1], LiveError::NodePanicked(1));
            }
            other => panic!("expected aggregated faults, got {other:?}"),
        }
        // The teardown ran before failures were settled.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn open_loop_feeder_preserves_per_node_sequence_order() {
        let cfg = test_cfg(3).tuples(300);
        let arrivals = cfg.arrivals();
        let shared = Shared::new();
        let mut channels: Vec<_> = (0..cfg.n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<TransportEvent>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        // Nothing drains in this test, so the backlog equals everything
        // injected; lift the overload bound out of the way.
        let spec = OpenLoop {
            rate_tps: 5_000_000.0,
            abort_backlog: Some(i64::MAX),
        };
        let report = OpenLoopFeeder::new(&spec, cfg.n)
            .feed(&arrivals, &senders, &shared)
            .unwrap();
        assert_eq!(report.injected, arrivals.len());
        assert!(!report.overloaded);
        // Every queue sees its node's arrivals with strictly ascending
        // sequence numbers and nondecreasing injection stamps.
        for (node, (_, rx)) in channels.iter_mut().enumerate() {
            let mut last_seq = None;
            let mut last_stamp = 0u64;
            while let Some(event) = rx.try_recv() {
                match event {
                    TransportEvent::StampedArrival { tuple, injected_us } => {
                        assert_eq!(usize::from(tuple.origin), node);
                        if let Some(prev) = last_seq {
                            assert!(tuple.seq > prev, "seq order broken at node {node}");
                        }
                        last_seq = Some(tuple.seq);
                        assert!(injected_us >= last_stamp);
                        last_stamp = injected_us;
                    }
                    other => panic!("open-loop feeder sent {other:?}"),
                }
            }
            assert!(last_seq.is_some(), "node {node} saw no arrivals");
        }
        // Feeder increments stayed balanced with what landed in queues.
        assert_eq!(
            shared.in_flight.load(Ordering::SeqCst),
            arrivals.len() as i64
        );
    }

    #[test]
    fn open_loop_feeder_declares_overload_at_the_backlog_bound() {
        let cfg = test_cfg(3).tuples(100);
        let arrivals = cfg.arrivals();
        let shared = Shared::new();
        let channels: Vec<_> = (0..cfg.n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<TransportEvent>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        // Nothing drains, so the backlog hits the bound after exactly
        // `bound` injections.
        let spec = OpenLoop {
            rate_tps: 5_000_000.0,
            abort_backlog: Some(25),
        };
        let report = OpenLoopFeeder::new(&spec, cfg.n)
            .feed(&arrivals, &senders, &shared)
            .unwrap();
        assert!(report.overloaded);
        assert_eq!(report.injected, 25);
        assert_eq!(report.peak_backlog, 25);
    }
}
