//! The backend-independent half of a live cluster run.
//!
//! Both live backends (threads-over-channels in [`crate::LiveCluster`],
//! sockets in [`crate::TcpCluster`]) share everything except how bytes
//! move: one OS thread per node running [`NodeEngine::run`] over its
//! transport, a feeder injecting the arrival schedule with backpressure,
//! an in-flight event counter for quiescence detection, and the final
//! aggregation into a [`LiveOutcome`]. That shared half lives here; the
//! backends only construct their transports and hand the pieces over to
//! [`drive`].
//!
//! # In-flight accounting
//!
//! A single cluster-wide `AtomicI64` counts events that have been produced
//! but not fully processed. Producers (the feeder for arrivals, a
//! transport's `send` for messages) increment *before* the event becomes
//! visible; the engine's `quiesce` hook decrements *after* the event's
//! processing — including any sends it triggered, which were counted
//! first — so the counter can only read zero when the cluster is globally
//! idle. The same counter provides feeder backpressure: [`Pacing::Freerun`]
//! caps the backlog so probes can't go stale behind an unbounded queue,
//! [`Pacing::Lockstep`] drains to zero between arrivals, making the event
//! order — and therefore every router decision — identical across
//! backends, including the deterministic simulation.

use crate::cluster::{LiveError, LiveOutcome, TransportStats};
use crossbeam::channel::Sender;
use dsj_core::obs;
use dsj_core::{ClusterConfig, NodeEngine, NodeMetrics, Transport, TransportEvent};
use dsj_stream::gen::Arrival;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// How the feeder paces arrivals into a live cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Inject as fast as backpressure allows (a bounded event backlog).
    /// Maximum throughput; remote probe timing races benignly.
    Freerun,
    /// Drain the cluster to quiescence between consecutive arrivals.
    /// Slow, but the global event order becomes deterministic — the mode
    /// under which every backend (simulated included) is provably
    /// equivalent.
    Lockstep,
}

/// State shared between the feeder, the node threads and the reader
/// threads of one live run.
pub(crate) struct Shared {
    /// Events produced but not yet fully processed, cluster-wide.
    pub in_flight: Arc<AtomicI64>,
    /// Failure reporting from any thread. Every failure is kept; the
    /// harness aggregates them (deduplicated by node and kind, in
    /// first-seen order) when surfacing the run's error.
    pub failures: Arc<Mutex<Vec<LiveError>>>,
    /// Cluster start; live transports report clocks relative to it.
    pub epoch: Instant,
}

impl Shared {
    pub fn new() -> Self {
        Shared {
            in_flight: Arc::new(AtomicI64::new(0)),
            failures: Arc::new(Mutex::new(Vec::new())),
            epoch: Instant::now(),
        }
    }

    /// All reported failures so far, deduplicated by ([`LiveError::kind_key`])
    /// node and kind in first-seen order: `None` when the run is clean, the
    /// lone error when exactly one distinct failure was reported, and
    /// [`LiveError::Faults`] listing every distinct failure otherwise.
    fn failure(&self) -> Option<LiveError> {
        let mut distinct: Vec<LiveError> = Vec::new();
        for e in self.failures.lock().iter() {
            if !distinct.iter().any(|d| d.kind_key() == e.kind_key()) {
                distinct.push(e.clone());
            }
        }
        match distinct.len() {
            0 => None,
            1 => distinct.pop(),
            _ => Some(LiveError::Faults(distinct)),
        }
    }
}

/// Records one node's transport counters as observability gauges.
fn record_transport(reg: &mut obs::Registry, me: u16, t: &TransportStats) {
    reg.gauge_set(
        &format!("node.{me:02}.pending_write_peak"),
        t.pending_peak_bytes as f64,
    );
    let per_syscall = if t.write_syscalls == 0 {
        0.0
    } else {
        t.frames_sent as f64 / t.write_syscalls as f64
    };
    reg.gauge_set(&format!("node.{me:02}.frames_per_syscall"), per_syscall);
    reg.gauge_set(
        &format!("node.{me:02}.reactor_wakeups"),
        t.reactor_wakeups as f64,
    );
}

/// Spawns node `me`'s thread: the engine's drive loop over `transport`,
/// with failures reported through the shared state.
pub(crate) fn spawn_node<T>(
    me: u16,
    engine: NodeEngine,
    mut transport: T,
    shared: &Shared,
) -> JoinHandle<NodeEngine>
where
    T: Transport<Error = LiveError> + Send + 'static,
{
    let failures = Arc::clone(&shared.failures);
    thread::spawn(move || {
        let mut engine = engine;
        if let Err(e) = engine.run(&mut transport) {
            failures.lock().push(e);
            let _ = me;
        }
        engine
    })
}

/// Backend-provided teardown hook: runs after the node threads have
/// joined (so no more traffic can move), shuts down whatever transport
/// machinery the backend spawned (e.g. reactor shards), and returns
/// per-node [`TransportStats`] for the outcome.
pub(crate) type FinishHook = Box<dyn FnOnce() -> Vec<TransportStats> + Send>;

/// A spawned (but not yet fed) live cluster, backend-independent from
/// here on: per-node event queues (arrivals and shutdown go this way on
/// every backend), node threads in id order, and the shared run state.
pub(crate) struct Spawned {
    /// Shared feeder/node/reader state.
    pub shared: Shared,
    /// Per-node event queues.
    pub senders: Vec<Sender<TransportEvent>>,
    /// Node threads, in id order.
    pub handles: Vec<JoinHandle<NodeEngine>>,
    /// Transport teardown + stats collection; `None` for backends with
    /// nothing to report.
    pub finish: Option<FinishHook>,
}

/// Feeds the arrival schedule, waits for quiescence, shuts the node
/// threads down and aggregates their engines into a [`LiveOutcome`].
pub(crate) fn drive(
    cfg: &ClusterConfig,
    pacing: Pacing,
    reg: &mut obs::Registry,
    arrivals: &[Arrival],
    truth_matches: u64,
    cluster: Spawned,
) -> Result<LiveOutcome, LiveError> {
    let Spawned {
        shared,
        senders,
        handles,
        finish,
    } = cluster;
    // On every exit path the backend's finish hook must run — it tears
    // down transport machinery (reactor shards) that would otherwise
    // outlive the run.
    fn abort(finish: Option<FinishHook>, e: LiveError) -> Result<LiveOutcome, LiveError> {
        if let Some(f) = finish {
            let _ = f();
        }
        Err(e)
    }
    // Feed arrivals in global order (per-channel FIFO keeps each node's
    // sequence numbers ascending, as the windows require). Freerun caps
    // the events in flight so slow consumers don't accumulate unbounded
    // queues — unbounded backlog would let probe messages arrive long
    // after their window contents were evicted, losing matches to
    // staleness rather than to the algorithm. Lockstep waits for zero:
    // every arrival's full causal cone lands before the next moves.
    let threshold = match pacing {
        Pacing::Freerun => 8 * i64::from(cfg.n),
        Pacing::Lockstep => 1,
    };
    let start = Instant::now();
    for a in arrivals {
        while shared.in_flight.load(Ordering::SeqCst) >= threshold {
            if let Some(e) = shared.failure() {
                return abort(finish, e);
            }
            thread::yield_now();
        }
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        if senders[a.node as usize]
            .send(TransportEvent::Arrival(a.tuple()))
            .is_err()
        {
            // The arrival never became visible — give its increment back,
            // or a concurrent reader would wait on a count that can no
            // longer drain.
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            let e = shared.failure().unwrap_or(LiveError::ChannelClosed);
            return abort(finish, e);
        }
    }
    reg.phase_add("inject", start.elapsed());

    // Quiesce: wait until no events remain anywhere in the cluster.
    let drain_started = Instant::now();
    while shared.in_flight.load(Ordering::SeqCst) > 0 {
        if let Some(e) = shared.failure() {
            return abort(finish, e);
        }
        thread::yield_now();
    }
    let wall_time = start.elapsed();
    reg.phase_add("drain", drain_started.elapsed());
    for tx in senders {
        let _ = tx.send(TransportEvent::Shutdown);
    }

    let join_started = Instant::now();
    let mut engines = Vec::with_capacity(handles.len());
    let mut panicked = None;
    for (id, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(engine) => engines.push(engine),
            Err(_) => panicked = panicked.or(Some(id as u16)),
        }
    }
    // Node threads are done; stop the backend's transport machinery and
    // collect its per-node counters — and only then settle failures, so
    // anything the teardown surfaced is included.
    let transport_per_node = finish.map_or_else(Vec::new, |f| f());
    if let Some(id) = panicked {
        return Err(LiveError::NodePanicked(id));
    }
    if let Some(e) = shared.failure() {
        return Err(e);
    }
    let mut totals = NodeMetrics::default();
    for engine in &engines {
        totals.absorb(engine.metrics());
    }
    reg.phase_add("join", join_started.elapsed());
    let reported_matches = totals.matches();
    let epsilon = if truth_matches == 0 {
        0.0
    } else {
        ((truth_matches as f64 - reported_matches as f64) / truth_matches as f64).max(0.0)
    };
    let secs = wall_time.as_secs_f64().max(1e-9);
    let outcome = LiveOutcome {
        truth_matches,
        reported_matches,
        epsilon,
        messages: totals.tuple_msgs_sent + totals.summary_msgs_sent,
        totals,
        per_node: engines.iter().map(|e| *e.metrics()).collect(),
        match_digests: engines.iter().map(NodeEngine::match_digest).collect(),
        transport_per_node,
        wall_time,
        tuples_per_sec: arrivals.len() as f64 / secs,
    };
    if obs::enabled() {
        reg.counter_add("runs", 1);
        reg.counter_add("truth_matches", outcome.truth_matches);
        reg.counter_add("reported_matches", outcome.reported_matches);
        reg.counter_add("live.messages", outcome.messages);
        reg.counter_add("tuples", arrivals.len() as u64);
        reg.gauge_set("epsilon", outcome.epsilon);
        reg.gauge_set("wall_time_secs", outcome.wall_time.as_secs_f64());
        reg.gauge_set("tuples_per_sec", outcome.tuples_per_sec);
        for (me, engine) in engines.iter().enumerate() {
            engine.metrics().record_into(reg, me as u16);
        }
        for (me, t) in outcome.transport_per_node.iter().enumerate() {
            record_transport(reg, me as u16, t);
        }
        obs::emit(std::mem::take(reg));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_reports_none() {
        assert_eq!(Shared::new().failure(), None);
    }

    #[test]
    fn a_single_failure_passes_through_unwrapped() {
        let shared = Shared::new();
        shared.failures.lock().push(LiveError::NodePanicked(3));
        assert_eq!(shared.failure(), Some(LiveError::NodePanicked(3)));
    }

    #[test]
    fn distinct_failures_aggregate_in_first_seen_order() {
        let shared = Shared::new();
        {
            let mut f = shared.failures.lock();
            f.push(LiveError::Io {
                node: 1,
                detail: "broken pipe".to_string(),
            });
            f.push(LiveError::ChannelClosed);
            f.push(LiveError::NodePanicked(0));
        }
        match shared.failure() {
            Some(LiveError::Faults(all)) => {
                assert_eq!(all.len(), 3);
                assert!(matches!(all[0], LiveError::Io { node: 1, .. }));
                assert_eq!(all[1], LiveError::ChannelClosed);
                assert_eq!(all[2], LiveError::NodePanicked(0));
            }
            other => panic!("expected Faults, got {other:?}"),
        }
    }

    #[test]
    fn duplicates_by_node_and_kind_collapse() {
        let shared = Shared::new();
        {
            let mut f = shared.failures.lock();
            // Same kind, same node: one event reported twice.
            f.push(LiveError::Io {
                node: 2,
                detail: "reset".to_string(),
            });
            f.push(LiveError::Io {
                node: 2,
                detail: "reset again".to_string(),
            });
            // Same kind, different node: genuinely distinct.
            f.push(LiveError::Io {
                node: 4,
                detail: "reset".to_string(),
            });
            // Every peer sees the same closed channel once it dies.
            f.push(LiveError::ChannelClosed);
            f.push(LiveError::ChannelClosed);
        }
        match shared.failure() {
            Some(LiveError::Faults(all)) => {
                assert_eq!(all.len(), 3);
                assert!(matches!(all[0], LiveError::Io { node: 2, .. }));
                assert!(matches!(all[1], LiveError::Io { node: 4, .. }));
                assert_eq!(all[2], LiveError::ChannelClosed);
            }
            other => panic!("expected Faults, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_display_lists_every_failure() {
        let e = LiveError::Faults(vec![LiveError::NodePanicked(1), LiveError::ChannelClosed]);
        assert_eq!(
            e.to_string(),
            "2 transport failures: node thread 1 panicked; \
             inter-node channel closed unexpectedly"
        );
    }
}
