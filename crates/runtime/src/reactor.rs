//! A sharded, event-driven reactor for the TCP backend: O(N) threads
//! instead of one reader thread per link.
//!
//! The per-link-thread mesh ([`crate::TcpCluster`]'s original design)
//! spends O(N²) OS threads — dead weight at production node counts. This
//! module replaces it with a small fixed pool of *reactor shards*: each
//! shard owns the read side of a subset of nodes' sockets (nonblocking)
//! plus the retry duty for pending writes headed *to* those nodes, and
//! sweeps them with readiness discovered by attempting the syscall — no
//! `epoll`/`mio`/`libc`, just `WouldBlock`.
//!
//! # Readiness model
//!
//! All writers live in this process, so "data may be readable on link
//! `i → j`" is always caused by an in-process write. Writers therefore
//! *tell* the reactor instead of making it poll: after pushing bytes into
//! a socket, the writer sets the destination read-link's dirty flag and
//! kicks the destination's shard ([`Kick`]). A shard sweep drains every
//! dirty link to `WouldBlock`; the flag is cleared *before* draining, so
//! a write racing the sweep re-dirties the link and re-kicks — no lost
//! wakeups. On loopback, bytes are visible to the peer by the time
//! `write(2)` returns, which makes the kick protocol complete; a timed
//! safety sweep (only while the cluster has events in flight) backstops
//! it anyway.
//!
//! # Write coalescing and backpressure
//!
//! Outbound frames are batched per peer ([`dsj_core::wire::FrameBatch`])
//! and flushed once per engine frame with vectored writes — many messages
//! per syscall. A full socket (`WouldBlock`, or a partial write) parks
//! the unwritten tail in the link's [`WriteQueue`]; the destination shard
//! retries it on its next wakeup, which is exactly when socket space
//! reappears (the destination draining its read side is what frees the
//! peer's receive buffer). Messages with bytes still queued remain
//! counted by the cluster-wide in-flight counter — they were counted at
//! `send` time and are only decremented by the *receiving* engine — so
//! quiescence cannot be declared while a slow reader still owes traffic,
//! and a dead link gives its queued messages' counts back rather than
//! wedging the drain loop.

use crate::cluster::LiveError;
use crate::tcp::io_err;
use crossbeam::channel::Sender;
use dsj_core::wire::{FrameBatch, FrameDecoder};
use dsj_core::TransportEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

/// Read-buffer size for shard sweeps.
const READ_CHUNK: usize = 16 * 1024;

/// Idle wait while some link still has pending (unwritable) bytes.
const WAIT_PENDING: Duration = Duration::from_micros(200);
/// Idle wait while the cluster has events in flight but no local work.
const WAIT_ACTIVE: Duration = Duration::from_millis(1);
/// Idle wait when the cluster is globally quiet.
const WAIT_IDLE: Duration = Duration::from_millis(20);

/// Per-peer outbound byte queue with coalesced vectored writes and exact
/// frame accounting across partial writes.
///
/// The queue tracks, in absolute stream offsets, where every accepted
/// frame ends; advancing the written-bytes cursor retires frame
/// boundaries as they go fully onto the wire. [`WriteQueue::unsent_msgs`]
/// is therefore the precise number of messages the in-flight counter
/// must be repaired by if the link dies.
#[derive(Debug, Default)]
pub(crate) struct WriteQueue {
    /// Bytes accepted but not yet written, at `buf[head..]`.
    buf: Vec<u8>,
    head: usize,
    /// Absolute end offset of every frame not yet fully written.
    frame_ends: VecDeque<u64>,
    /// Total bytes ever accepted.
    accepted: u64,
    /// Total bytes ever written to the sink.
    written: u64,
    /// Frames fully written.
    frames_sent: u64,
    /// Successful write syscalls (each moved ≥ 1 byte).
    syscalls: u64,
    /// High-water mark of queued (unwritten) bytes.
    pending_peak: u64,
}

impl WriteQueue {
    /// Bytes accepted but not yet on the wire.
    pub(crate) fn pending_bytes(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Messages with at least one byte not yet on the wire.
    pub(crate) fn unsent_msgs(&self) -> i64 {
        self.frame_ends.len() as i64
    }

    /// `(frames_sent, write_syscalls, pending_peak_bytes)`.
    pub(crate) fn totals(&self) -> (u64, u64, u64) {
        (self.frames_sent, self.syscalls, self.pending_peak)
    }

    /// Writes as much as possible of the queued tail plus `fresh` (whose
    /// frames end at the relative offsets `ends`) to `w`, coalescing both
    /// into vectored writes. `WouldBlock` (or a partial write) parks the
    /// unwritten remainder in the queue and returns `Ok(())` — the caller
    /// retries (`OutLink::pump` re-invoking this with no fresh bytes)
    /// when the sink may have space.
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock`/`Interrupted`; the queue's
    /// remaining frame accounting stays valid so the caller can repair
    /// the in-flight counter by [`WriteQueue::unsent_msgs`].
    pub(crate) fn write_coalesced(
        &mut self,
        w: &mut impl Write,
        fresh: &[u8],
        ends: &[usize],
    ) -> io::Result<()> {
        let base = self.accepted;
        for &end in ends {
            self.frame_ends.push_back(base + end as u64);
        }
        self.accepted += fresh.len() as u64;
        let mut fresh_off = 0usize;
        loop {
            let queued = &self.buf[self.head..];
            let extra = &fresh[fresh_off..];
            if queued.is_empty() && extra.is_empty() {
                self.buf.clear();
                self.head = 0;
                return Ok(());
            }
            let wrote = if queued.is_empty() {
                w.write(extra)
            } else if extra.is_empty() {
                w.write(queued)
            } else {
                w.write_vectored(&[IoSlice::new(queued), IoSlice::new(extra)])
            };
            match wrote {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.syscalls += 1;
                    let from_queue = n.min(queued.len());
                    self.head += from_queue;
                    fresh_off += n - from_queue;
                    self.written += n as u64;
                    while self
                        .frame_ends
                        .front()
                        .is_some_and(|&end| end <= self.written)
                    {
                        self.frame_ends.pop_front();
                        self.frames_sent += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.park(&fresh[fresh_off..]);
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Retries the queued tail alone (test convenience over
    /// [`WriteQueue::write_coalesced`] with no fresh bytes — production
    /// retries go through `OutLink::pump`, which needs the call inlined
    /// for the lint's guard-scope analysis). Returns `true` when the
    /// queue fully drained.
    ///
    /// # Errors
    ///
    /// As for [`WriteQueue::write_coalesced`].
    #[cfg(test)]
    pub(crate) fn retry(&mut self, w: &mut impl Write) -> io::Result<bool> {
        self.write_coalesced(w, &[], &[])?;
        Ok(self.pending_bytes() == 0)
    }

    /// Parks `rest` (unwritten fresh bytes) behind the queued tail.
    fn park(&mut self, rest: &[u8]) {
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(rest);
        self.pending_peak = self.pending_peak.max(self.pending_bytes() as u64);
    }

    /// Drops all queued bytes and frame accounting (the link died);
    /// returns how many messages were still unsent.
    fn abandon(&mut self) -> i64 {
        let orphaned = self.unsent_msgs();
        self.buf.clear();
        self.head = 0;
        self.frame_ends.clear();
        orphaned
    }
}

/// The write half of one directed link, shared between the writer node's
/// transport (frame flushes) and the destination's reactor shard (pending
/// retries).
pub(crate) struct OutLink {
    /// Sending node (attributed on write failures).
    pub(crate) writer: u16,
    /// Lock-free hint that bytes are parked awaiting socket space — lets
    /// a shard skip the mutex on the (vast) majority of idle links.
    parked: AtomicBool,
    state: Mutex<OutState>,
}

struct OutState {
    stream: Arc<TcpStream>,
    queue: WriteQueue,
    dead: bool,
}

/// What a flush or pump attempt did to the link.
pub(crate) enum LinkWrite {
    /// All accepted bytes are on the wire.
    Clean,
    /// Some bytes remain queued; the destination shard must retry.
    Parked,
    /// The link failed; `orphaned` messages must be given back to the
    /// in-flight counter by the caller.
    Dead {
        /// The failure (first fatal error only; later calls return
        /// `orphaned: 0`).
        error: Option<LiveError>,
        /// Unsent messages abandoned in the queue.
        orphaned: i64,
    },
}

impl OutLink {
    pub(crate) fn new(writer: u16, stream: Arc<TcpStream>) -> Self {
        OutLink {
            writer,
            parked: AtomicBool::new(false),
            state: Mutex::new(OutState {
                stream,
                queue: WriteQueue::default(),
                dead: false,
            }),
        }
    }

    /// Flushes `batch` (plus any queued tail) into the socket.
    pub(crate) fn flush_batch(&self, batch: &FrameBatch) -> LinkWrite {
        let mut state = self.state.lock();
        if state.dead {
            // The failure was already reported; the caller still owes the
            // counter for the frames it was about to hand over.
            return LinkWrite::Dead {
                error: None,
                orphaned: 0,
            };
        }
        let stream = Arc::clone(&state.stream);
        let (bytes, ends) = (batch.bytes(), batch.frame_ends());
        // dsj-lint: allow(guard-across-blocking) — the socket is nonblocking; write_vectored returns WouldBlock instead of blocking, and the guard serializes writer-vs-reactor access to the queue
        let result = state.queue.write_coalesced(&mut (&*stream), bytes, ends);
        self.settle(state, result)
    }

    /// Retries queued bytes (reactor side). Cheap no-op when the queue is
    /// empty or the link is dead.
    pub(crate) fn pump(&self) -> LinkWrite {
        if !self.parked.load(Ordering::SeqCst) {
            return LinkWrite::Clean;
        }
        let mut state = self.state.lock();
        if state.dead || state.queue.pending_bytes() == 0 {
            self.parked.store(false, Ordering::SeqCst);
            return LinkWrite::Clean;
        }
        let stream = Arc::clone(&state.stream);
        // dsj-lint: allow(guard-across-blocking) — the socket is nonblocking; write_vectored returns WouldBlock instead of blocking, and the guard serializes writer-vs-reactor access to the queue
        let result = state.queue.write_coalesced(&mut (&*stream), &[], &[]);
        self.settle(state, result)
    }

    fn settle(
        &self,
        mut state: parking_lot::MutexGuard<'_, OutState>,
        result: io::Result<()>,
    ) -> LinkWrite {
        match result {
            Ok(()) if state.queue.pending_bytes() == 0 => {
                self.parked.store(false, Ordering::SeqCst);
                LinkWrite::Clean
            }
            Ok(()) => {
                self.parked.store(true, Ordering::SeqCst);
                LinkWrite::Parked
            }
            Err(e) => {
                state.dead = true;
                let orphaned = state.queue.abandon();
                self.parked.store(false, Ordering::SeqCst);
                LinkWrite::Dead {
                    error: Some(io_err(self.writer, &e)),
                    orphaned,
                }
            }
        }
    }

    /// Whether bytes are queued awaiting socket space (lock-free hint).
    pub(crate) fn has_pending(&self) -> bool {
        self.parked.load(Ordering::SeqCst)
    }

    /// `(frames_sent, write_syscalls, pending_peak_bytes)`.
    pub(crate) fn stats(&self) -> (u64, u64, u64) {
        self.state.lock().queue.totals()
    }
}

/// The read half of one directed link, owned by the destination's shard:
/// a nonblocking socket, its frame reassembler, and the destination
/// node's event channel.
pub(crate) struct ReadLink {
    stream: Arc<TcpStream>,
    /// Sending node (stamped on decoded messages).
    from: u16,
    /// Receiving node (owns the event channel; attributed on errors).
    to: u16,
    tx: Sender<TransportEvent>,
    decoder: FrameDecoder,
    /// Set by writers after pushing bytes; cleared by the shard before
    /// draining.
    dirty: Arc<AtomicBool>,
    open: bool,
}

impl ReadLink {
    pub(crate) fn new(
        stream: Arc<TcpStream>,
        from: u16,
        to: u16,
        tx: Sender<TransportEvent>,
        dirty: Arc<AtomicBool>,
    ) -> Self {
        ReadLink {
            stream,
            from,
            to,
            tx,
            decoder: FrameDecoder::new(),
            dirty,
            open: true,
        }
    }

    /// Drains the socket, forwarding decoded messages. Returns `true` if
    /// any bytes moved. A short read ends the drain without a confirming
    /// `WouldBlock` round-trip: bytes written after it are covered by the
    /// writer's store-dirty-then-kick, which happens only after its
    /// `write` returns.
    fn drain(&mut self, chunk: &mut [u8], failures: &Mutex<Vec<LiveError>>) -> bool {
        let mut progress = false;
        loop {
            let nread = match (&*self.stream).read(chunk) {
                Ok(0) => {
                    self.open = false; // peer closed: normal shutdown
                    return progress;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    failures.lock().push(io_err(self.to, &e));
                    self.open = false;
                    return progress;
                }
            };
            progress = true;
            let (from, tx) = (self.from, &self.tx);
            match self.decoder.feed_decode(&chunk[..nread], &mut |msg| {
                tx.send(TransportEvent::Net { from, msg }).is_ok()
            }) {
                Ok(true) => {}
                Ok(false) => {
                    // The node is gone (normal shutdown); stop reading.
                    self.open = false;
                    return progress;
                }
                Err(e) => {
                    failures.lock().push(LiveError::Decode {
                        node: self.to,
                        detail: e.to_string(),
                    });
                    self.open = false;
                    return progress;
                }
            }
            if nread < chunk.len() {
                return progress;
            }
        }
    }
}

/// A shard's wakeup latch: a kicked shard sweeps immediately instead of
/// waiting out its idle timeout.
///
/// Built on `park`/`unpark` rather than a condvar: the hot path — kicking
/// a shard that is already awake or already flagged — is a single atomic
/// swap, which matters because every node flush kicks. `unpark` before
/// `park` leaves a token that makes the next `park` return immediately,
/// so the flag-then-unpark order cannot lose a wakeup.
pub(crate) struct Kick {
    flag: AtomicBool,
    /// The shard thread to unpark; registered right after spawn. A kick
    /// arriving before registration only sets the flag — the shard checks
    /// it before first parking, and the idle timeout backstops the rest.
    thread: StdMutex<Option<Thread>>,
}

impl Kick {
    pub(crate) fn new() -> Self {
        Kick {
            flag: AtomicBool::new(false),
            thread: StdMutex::new(None),
        }
    }

    /// Binds the latch to its shard thread.
    fn register(&self, thread: Thread) {
        let mut slot = self.thread.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(thread);
    }

    /// Wakes the shard (idempotent; one atomic swap when already flagged).
    pub(crate) fn notify(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            let slot = self.thread.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = slot.as_ref() {
                t.unpark();
            }
        }
    }

    /// Waits until kicked or `timeout` elapses; returns `true` if kicked.
    /// Spurious `park` returns surface as `false` — callers treat that
    /// exactly like a timeout, so they are benign.
    fn wait(&self, timeout: Duration) -> bool {
        if self.flag.swap(false, Ordering::SeqCst) {
            return true;
        }
        thread::park_timeout(timeout);
        self.flag.swap(false, Ordering::SeqCst)
    }
}

/// Everything one shard thread needs: the read links it owns, the
/// out-links whose destinations it serves (pending-write retries), and
/// the shared run state.
pub(crate) struct ShardInput {
    /// Read links owned by this shard (destination nodes assigned to it).
    pub(crate) reads: Vec<ReadLink>,
    /// Out links whose `dest` is assigned to this shard.
    pub(crate) writes: Vec<Arc<OutLink>>,
    /// Wakeup latch (shared with every writer targeting this shard).
    pub(crate) kick: Arc<Kick>,
    /// Sweep counter (the per-shard `reactor_wakeups` gauge).
    pub(crate) wakeups: Arc<AtomicU64>,
    /// Cluster-wide in-flight event counter (repair on dead links, idle
    /// heuristics).
    pub(crate) in_flight: Arc<AtomicI64>,
    /// Shared failure sink.
    pub(crate) failures: Arc<Mutex<Vec<LiveError>>>,
}

/// The running reactor: shard threads plus their shutdown latch.
pub(crate) struct Reactor {
    shards: Vec<(Arc<Kick>, Arc<AtomicU64>, JoinHandle<()>)>,
    shutdown: Arc<AtomicBool>,
}

impl Reactor {
    /// How many shards to run for an `n`-node cluster on this host: one
    /// per two available cores, capped by the node count — never O(N).
    pub(crate) fn shard_count(n: usize) -> usize {
        let cores = thread::available_parallelism().map_or(1, usize::from);
        (cores / 2).clamp(1, 8).min(n.max(1))
    }

    /// Spawns one thread per [`ShardInput`] and returns the handle set.
    pub(crate) fn start(inputs: Vec<ShardInput>) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let shards = inputs
            .into_iter()
            .map(|input| {
                let kick = Arc::clone(&input.kick);
                let wakeups = Arc::clone(&input.wakeups);
                let stop = Arc::clone(&shutdown);
                let thread = thread::spawn(move || shard_loop(input, &stop));
                kick.register(thread.thread().clone());
                // Cover a kick that raced registration: the flag is set,
                // so waking the shard once makes it observe the work.
                thread.thread().unpark();
                (kick, wakeups, thread)
            })
            .collect();
        Reactor { shards, shutdown }
    }

    /// Stops every shard and returns each shard's final wakeup count.
    pub(crate) fn join(self) -> Vec<u64> {
        self.shutdown.store(true, Ordering::SeqCst);
        for (kick, _, _) in &self.shards {
            kick.notify();
        }
        self.shards
            .into_iter()
            .map(|(_, wakeups, thread)| {
                let _ = thread.join();
                wakeups.load(Ordering::SeqCst)
            })
            .collect()
    }
}

/// One shard's sweep loop: drain dirty read links, retry parked writes,
/// then wait for a kick (with an in-flight-gated safety sweep so a lost
/// wakeup can only ever delay progress, not wedge it).
fn shard_loop(mut input: ShardInput, shutdown: &AtomicBool) {
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let mut progress = true;
        while progress {
            progress = false;
            for link in &mut input.reads {
                // Relaxed pre-check keeps the common clean-link case to one
                // atomic load; a racing writer's store is confirmed (or
                // deferred to its kick) by the SeqCst swap.
                if link.open
                    && link.dirty.load(Ordering::Relaxed)
                    && link.dirty.swap(false, Ordering::SeqCst)
                {
                    progress |= link.drain(&mut chunk, &input.failures);
                }
            }
            for link in &input.writes {
                match link.pump() {
                    LinkWrite::Clean => {}
                    LinkWrite::Parked => {}
                    LinkWrite::Dead { error, orphaned } => {
                        if orphaned > 0 {
                            input.in_flight.fetch_sub(orphaned, Ordering::SeqCst);
                        }
                        if let Some(e) = error {
                            input.failures.lock().push(e);
                        }
                    }
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let any_parked = input.writes.iter().any(|l| l.has_pending());
        let active = input.in_flight.load(Ordering::SeqCst) > 0;
        let timeout = if any_parked {
            WAIT_PENDING
        } else if active {
            WAIT_ACTIVE
        } else {
            WAIT_IDLE
        };
        input.wakeups.fetch_add(1, Ordering::Relaxed);
        let kicked = input.kick.wait(timeout);
        if !kicked && (active || any_parked) {
            // Safety sweep: treat every link as potentially readable. On
            // loopback kicks are complete, so this path only runs while
            // traffic is in flight and something stalled.
            for link in &input.reads {
                link.dirty.store(true, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_core::wire;
    use dsj_core::Msg;
    use dsj_stream::{StreamId, Tuple};
    use std::net::TcpListener;

    fn tuple_msg(seq: u64) -> Msg {
        Msg::Tuple {
            tuple: Tuple::new(StreamId::R, (seq % 97) as u32, seq, 1),
            piggyback: Vec::new(),
        }
    }

    fn batch_of(count: u64) -> FrameBatch {
        let mut batch = FrameBatch::new();
        for seq in 0..count {
            batch.push(&tuple_msg(seq));
        }
        batch
    }

    /// A scripted sink: each entry is `Some(max_bytes)` to accept or
    /// `None` for a `WouldBlock`; after the script, everything is
    /// accepted. Captures accepted bytes and whether vectored writes
    /// were used.
    #[derive(Default)]
    struct ScriptedSink {
        script: VecDeque<Option<usize>>,
        accepted: Vec<u8>,
        vectored_calls: usize,
    }

    impl ScriptedSink {
        fn step(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(k)) => {
                    let k = k.min(buf.len());
                    self.accepted.extend_from_slice(&buf[..k]);
                    Ok(k)
                }
                Some(None) => Err(io::ErrorKind::WouldBlock.into()),
                None => {
                    self.accepted.extend_from_slice(buf);
                    Ok(buf.len())
                }
            }
        }
    }

    impl Write for ScriptedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.step(buf)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.vectored_calls += 1;
            let mut flat = Vec::new();
            for b in bufs {
                flat.extend_from_slice(b);
            }
            self.step(&flat)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_preserve_order_and_frame_accounting() {
        let batch = batch_of(5);
        let total = batch.bytes().len();
        let mut q = WriteQueue::default();
        let mut sink = ScriptedSink {
            // Accept 7 bytes (mid-frame), then block.
            script: VecDeque::from([Some(7), None]),
            ..ScriptedSink::default()
        };
        q.write_coalesced(&mut sink, batch.bytes(), batch.frame_ends())
            .unwrap();
        assert_eq!(q.pending_bytes(), total - 7);
        // Frame 0 is split across the wire boundary: all 5 still unsent.
        assert_eq!(q.unsent_msgs(), 5);
        // Retry drains the rest; byte stream is exactly the batch, in order.
        assert!(q.retry(&mut sink).unwrap());
        assert_eq!(sink.accepted, batch.bytes());
        assert_eq!(q.unsent_msgs(), 0);
        let (frames, syscalls, peak) = q.totals();
        assert_eq!(frames, 5);
        assert!(syscalls >= 2);
        assert_eq!(peak, (total - 7) as u64);
    }

    #[test]
    fn would_block_storm_makes_no_progress_and_no_error() {
        let batch = batch_of(3);
        let mut q = WriteQueue::default();
        let mut sink = ScriptedSink {
            script: VecDeque::from(vec![None; 16]),
            ..ScriptedSink::default()
        };
        q.write_coalesced(&mut sink, batch.bytes(), batch.frame_ends())
            .unwrap();
        for _ in 0..15 {
            assert!(!q.retry(&mut sink).unwrap(), "storm must keep bytes parked");
        }
        assert_eq!(q.unsent_msgs(), 3);
        assert!(sink.accepted.is_empty());
        // The storm ends; one pump delivers everything.
        assert!(q.retry(&mut sink).unwrap());
        assert_eq!(sink.accepted, batch.bytes());
        assert_eq!(q.totals().0, 3);
    }

    #[test]
    fn parked_tail_and_fresh_frames_coalesce_into_one_vectored_write() {
        let first = batch_of(2);
        let mut q = WriteQueue::default();
        let mut sink = ScriptedSink {
            script: VecDeque::from([Some(3), None]),
            ..ScriptedSink::default()
        };
        q.write_coalesced(&mut sink, first.bytes(), first.frame_ends())
            .unwrap();
        assert!(q.pending_bytes() > 0);
        // Next flush carries fresh frames: queued tail + fresh go out
        // through write_vectored, tail first.
        let second = batch_of(2);
        q.write_coalesced(&mut sink, second.bytes(), second.frame_ends())
            .unwrap();
        assert!(sink.vectored_calls >= 1, "expected a vectored write");
        let mut expect = first.bytes().to_vec();
        expect.extend_from_slice(second.bytes());
        assert_eq!(sink.accepted, expect);
        assert_eq!(q.unsent_msgs(), 0);
    }

    #[test]
    fn interrupted_is_retried_not_parked() {
        struct Interrupting {
            interrupts: usize,
            inner: ScriptedSink,
        }
        impl Write for Interrupting {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.interrupts > 0 {
                    self.interrupts -= 1;
                    return Err(io::ErrorKind::Interrupted.into());
                }
                self.inner.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let batch = batch_of(2);
        let mut q = WriteQueue::default();
        let mut sink = Interrupting {
            interrupts: 3,
            inner: ScriptedSink::default(),
        };
        q.write_coalesced(&mut sink, batch.bytes(), batch.frame_ends())
            .unwrap();
        assert_eq!(q.pending_bytes(), 0);
        assert_eq!(sink.inner.accepted, batch.bytes());
    }

    #[test]
    fn fatal_write_error_abandons_queue_with_exact_orphan_count() {
        let batch = batch_of(4);
        let mut q = WriteQueue::default();
        // One frame goes out whole, then the sink dies.
        let first_end = batch.frame_ends()[0];
        let mut sink = ScriptedSink {
            script: VecDeque::from([Some(first_end), None]),
            ..ScriptedSink::default()
        };
        q.write_coalesced(&mut sink, batch.bytes(), batch.frame_ends())
            .unwrap();
        assert_eq!(q.unsent_msgs(), 3);
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::ErrorKind::BrokenPipe.into())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(q.retry(&mut Dead).is_err());
        assert_eq!(q.abandon(), 3);
        assert_eq!(q.pending_bytes(), 0);
    }

    /// End-to-end over a real loopback socket: stuff the send buffer
    /// until the kernel pushes back, verify the queue parks the overflow
    /// (the WouldBlock path on a real socket), then drain the reader and
    /// verify every byte arrives intact and in order — a slow reader
    /// stalls delivery, never correctness, and the queue empties once the
    /// reader catches up (so quiescence can complete).
    #[test]
    fn real_socket_backpressure_parks_then_drains() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = TcpStream::connect(addr).unwrap();
        writer.set_nonblocking(true).unwrap();
        writer.set_nodelay(true).unwrap();
        let (mut reader, _) = listener.accept().unwrap();

        let batch = batch_of(64); // ~1.2 KiB per flush
        let mut q = WriteQueue::default();
        let mut flushes = 0u64;
        // Keep flushing without reading until the kernel blocks us.
        while q.pending_bytes() == 0 && flushes < 100_000 {
            q.write_coalesced(&mut (&writer), batch.bytes(), batch.frame_ends())
                .unwrap();
            flushes += 1;
        }
        assert!(q.pending_bytes() > 0, "socket buffers never filled");
        let expect_total = flushes * batch.bytes().len() as u64;
        // Storm: repeated pumps against the full socket stay parked.
        for _ in 0..8 {
            let _ = q.retry(&mut (&writer)).unwrap();
        }
        // Reader catches up; writer pumps until everything is delivered.
        let mut got: Vec<u8> = Vec::new();
        let mut chunk = vec![0u8; READ_CHUNK];
        while (got.len() as u64) < expect_total {
            let n = reader.read(&mut chunk).unwrap();
            assert!(n > 0, "writer closed early");
            got.extend_from_slice(&chunk[..n]);
            let _ = q.retry(&mut (&writer)).unwrap();
        }
        assert!(q.retry(&mut (&writer)).unwrap());
        assert_eq!(q.unsent_msgs(), 0);
        assert_eq!(got.len() as u64, expect_total);
        // The delivered stream is the batch repeated `flushes` times.
        let mut dec = FrameDecoder::new();
        let mut frames = 0u64;
        dec.feed_decode(&got, &mut |msg| {
            assert_eq!(
                wire::encode(&msg),
                wire::encode(&tuple_msg(frames % 64)),
                "frame {frames} corrupted"
            );
            frames += 1;
            true
        })
        .unwrap();
        assert_eq!(frames, flushes * 64);
        let (sent, syscalls, peak) = q.totals();
        assert_eq!(sent, frames);
        assert!(
            syscalls < frames,
            "coalescing must beat one syscall per frame"
        );
        assert!(peak > 0);
    }

    #[test]
    fn kick_wakes_a_waiting_shard() {
        let kick = Arc::new(Kick::new());
        let k2 = Arc::clone(&kick);
        let waiter = thread::spawn(move || {
            k2.register(thread::current());
            k2.wait(Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(10));
        kick.notify();
        assert!(waiter.join().unwrap(), "wait should report the kick");
        // And a timeout without a kick reports false.
        assert!(!kick.wait(Duration::from_millis(1)));
    }
}
