//! Live cluster runtimes: real threads, real sockets.
//!
//! The paper evaluated a *working prototype*: twenty processes exchanging
//! real messages. `dsj-simnet` reproduces its network model as a
//! deterministic discrete-event simulation; this crate runs the very same
//! node logic (a [`dsj_core::NodeEngine`] speaking only the
//! [`dsj_core::Transport`] trait) as **real concurrent threads** — one OS
//! thread per node, wall-clock timing — over two interchangeable
//! backends:
//!
//! * [`LiveCluster`] — crossbeam channels as links: concurrency
//!   correctness and raw in-process speed.
//! * [`TcpCluster`] — loopback TCP sockets as links, every message framed
//!   by the [`dsj_core::wire`] codec: serialization, syscalls and stream
//!   reassembly are all real.
//!
//! Use the simulation for reproducible experiments and figure
//! regeneration; use these runtimes to demonstrate that the algorithms
//! and their data structures are `Send`, contention-safe and fast enough
//! to process hundreds of thousands of tuples per second of *real* time.
//! Under [`Pacing::Lockstep`] all three backends — simulated, channels,
//! TCP — produce identical per-node results for the same configuration
//! (see `tests/equivalence.rs`).
//!
//! ```
//! use dsj_core::{Algorithm, ClusterConfig};
//! use dsj_runtime::LiveCluster;
//!
//! let cfg = ClusterConfig::new(4, Algorithm::Dftt)
//!     .window(128)
//!     .domain(1 << 9)
//!     .tuples(2_000);
//! let outcome = LiveCluster::run(&cfg)?;
//! assert!(outcome.epsilon <= 1.0);
//! assert!(outcome.wall_time.as_nanos() > 0);
//! # Ok::<(), dsj_runtime::LiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod harness;
mod reactor;
mod tcp;

pub use cluster::{LiveCluster, LiveError, LiveOutcome, TransportStats};
pub use harness::{FeedReport, LoadRun, OpenLoop, Pacing};
pub use tcp::{TcpCluster, TcpMode};
