//! Live threaded cluster runtime.
//!
//! The paper evaluated a *working prototype*: twenty processes exchanging
//! real messages. `dsj-simnet` reproduces its network model as a
//! deterministic discrete-event simulation; this crate runs the very same
//! node logic ([`dsj_core::JoinNode`], via its transport-agnostic
//! `handle_arrival`/`handle_message` methods) as **real concurrent
//! threads** exchanging messages over channels — one OS thread per node, a
//! crossbeam channel per directed link, wall-clock timing.
//!
//! Use the simulation for reproducible experiments and figure
//! regeneration; use this runtime to demonstrate that the algorithms and
//! their data structures are `Send`, contention-safe and fast enough to
//! process hundreds of thousands of tuples per second of *real* time.
//!
//! ```
//! use dsj_core::{Algorithm, ClusterConfig};
//! use dsj_runtime::LiveCluster;
//!
//! let cfg = ClusterConfig::new(4, Algorithm::Dftt)
//!     .window(128)
//!     .domain(1 << 9)
//!     .tuples(2_000);
//! let outcome = LiveCluster::run(&cfg)?;
//! assert!(outcome.epsilon <= 1.0);
//! assert!(outcome.wall_time.as_nanos() > 0);
//! # Ok::<(), dsj_runtime::LiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;

pub use cluster::{LiveCluster, LiveError, LiveOutcome};
