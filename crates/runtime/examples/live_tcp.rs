//! Runs the distributed join over real loopback TCP sockets.
//!
//! ```text
//! cargo run --release -p dsj-runtime --example live_tcp -- [N] [TUPLES] [ALGO] [PACING] [MODE]
//! ```
//!
//! `N` defaults to 4 nodes, `TUPLES` to 20 000, `ALGO` to `dftt`
//! (one of `base|dft|dftt|bloom|sketch`), `PACING` to `freerun`
//! (`lockstep` drains the cluster between arrivals and reproduces the
//! deterministic simulation's results exactly), `MODE` to `mesh`
//! (`reactor` selects the sharded event-driven transport — required
//! for N ≳ 100, where the mesh's O(N²) sockets exhaust the fd limit;
//! see the README's "large clusters" note).

use dsj_core::{Algorithm, ClusterConfig};
use dsj_runtime::{Pacing, TcpCluster, TcpMode};
use dsj_stream::gen::WorkloadKind;

fn usage() -> ! {
    eprintln!(
        "usage: live_tcp [N] [TUPLES] [base|dft|dftt|bloom|sketch] [freerun|lockstep] [mesh|reactor]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u16 = args
        .first()
        .map_or(Ok(4), |s| s.parse())
        .unwrap_or_else(|_| usage());
    let tuples: usize = args
        .get(1)
        .map_or(Ok(20_000), |s| s.parse())
        .unwrap_or_else(|_| usage());
    let algorithm = match args.get(2).map(String::as_str) {
        None | Some("dftt") => Algorithm::Dftt,
        Some("base") => Algorithm::Base,
        Some("dft") => Algorithm::Dft,
        Some("bloom") => Algorithm::Bloom,
        Some("sketch") => Algorithm::Sketch,
        Some(_) => usage(),
    };
    let pacing = match args.get(3).map(String::as_str) {
        None | Some("freerun") => Pacing::Freerun,
        Some("lockstep") => Pacing::Lockstep,
        Some(_) => usage(),
    };
    let mode = match args.get(4).map(String::as_str) {
        None | Some("mesh") => TcpMode::ThreadPerLink,
        Some("reactor") => TcpMode::Reactor,
        Some(_) => usage(),
    };

    let cfg = ClusterConfig::new(n, algorithm)
        .window(512)
        .domain(1 << 10)
        .tuples(tuples)
        .workload(WorkloadKind::Zipf { alpha: 0.4 })
        .seed(1);
    match TcpCluster::run_paced_mode(&cfg, pacing, mode) {
        Ok(outcome) => {
            println!(
                "{algorithm} over TCP: {n} nodes x {tuples} tuples ({pacing:?}, {mode:?})\n\
                 matches {}/{} (epsilon {:.4}), {} messages, {:.0} tuples/s in {:.2?}",
                outcome.reported_matches,
                outcome.truth_matches,
                outcome.epsilon,
                outcome.messages,
                outcome.tuples_per_sec,
                outcome.wall_time,
            );
        }
        Err(e) => {
            eprintln!("live_tcp failed: {e}");
            std::process::exit(1);
        }
    }
}
