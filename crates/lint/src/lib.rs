//! `dsj-lint` — repo-specific static analysis for the dsjoin workspace.
//!
//! A dependency-free linter enforcing the invariants the reproduction's
//! claims rest on:
//!
//! - **determinism** — no `HashMap`/`HashSet` in deterministic paths, no
//!   wall clocks outside the timing allowlist, no unseeded RNGs;
//! - **panic-safety** — no `unwrap()`/`expect()`/`panic!`/`todo!` in
//!   library code (tests, benches, examples exempt);
//! - **hygiene** — every crate root carries `#![forbid(unsafe_code)]` and
//!   `#![warn(missing_docs)]`; float `==`/`!=` comparisons are banned;
//! - **hot-path discipline** — a call-graph pass ([`callgraph`]) proves
//!   the per-tuple path (window insert → incremental DFT → route →
//!   fan-out) stays allocation-free, panic-free and deterministic,
//!   *transitively*: functions marked `// dsj-lint: hot-path` (plus the
//!   configured [`callgraph::HOT_PATH_ROOTS`]) are roots, every workspace
//!   function reachable from them is scanned, and calls the resolver
//!   cannot follow surface as `hot-path-opaque-call` findings;
//! - **concurrency & protocol discipline** — [`concurrency`] builds an
//!   intra-procedural CFG ([`mod@cfg`]) per function and proves the
//!   may-hold-while-acquiring lock graph acyclic (`lock-order`,
//!   `RwLock` read/write guards included), flags guards live across
//!   blocking calls on any path (`guard-across-blocking`) and proves
//!   the `in_flight` quiescence counter balanced on every path
//!   (`in-flight-balance`, with witness paths); [`atomics`] checks the
//!   reactor's ordering protocols (`atomic-protocol`: Relaxed gates
//!   need a confirming RMW, flags are set before kicks); [`growth`]
//!   flags loop-fed struct fields nothing ever drains
//!   (`unbounded-growth`); [`protocol`] cross-checks every wire enum
//!   variant against its four mandatory homes — encode, decode,
//!   `wire_bytes` accounting and engine handling (`wire-exhaustive`).
//!
//! Findings can be waived in place with
//! `// dsj-lint: allow(<rule>) — <reason>`; the waiver covers the pragma's
//! own line and the next line, and every waiver is counted and reported
//! (a pragma that waives nothing is itself a violation). On a resolvable
//! call, `allow(hot-path-opaque-call)` also cuts the call edge — the
//! sanctioned way to mark a deliberate cold-path escape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod cfg;
pub mod concurrency;
pub mod growth;
pub mod lex;
pub mod parse;
pub mod protocol;
pub mod report;
pub mod rules;

pub use report::{baseline_ids, diff_baseline, finding_id, render_json, render_waivers};
pub use rules::{classify_fixture, classify_workspace, lint_source, Finding, Rule, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", "fixtures", ".git"];

/// Whether to apply workspace path rules or arm every rule (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Path-sensitive classification for the dsjoin workspace; the
    /// configured hot-path roots are required to resolve.
    Workspace,
    /// Every rule live on every file (self-test fixtures); only
    /// marker-derived hot-path roots are analyzed.
    Fixture,
}

/// One waiver pragma with its audited hit count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverRecord {
    /// Workspace-relative path of the file holding the pragma.
    pub file: String,
    /// 1-based line the pragma sits on.
    pub line: u32,
    /// The rule it waives.
    pub rule: Rule,
    /// The justification text.
    pub reason: String,
    /// How many findings it waived (zero ⇒ stale ⇒ a `pragma` violation).
    pub hits: usize,
}

/// The full result of linting a tree: every finding (waived ones
/// included) plus the waiver audit.
#[derive(Debug)]
pub struct Report {
    /// The mode the tree was linted under.
    pub mode: Mode,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every waiver pragma in the tree, sorted by (file, line).
    pub waivers: Vec<WaiverRecord>,
}

/// Recursively collects `.rs` files under `root`, skipping `vendor/`,
/// `target/`, `fixtures/` and `.git/`. The result is sorted so reports
/// are stable.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Per-file state carried between the scan, call-graph and waiver passes.
struct FileState {
    rel: String,
    scan: lex::Scan,
    items: parse::FileItems,
    exempt: bool,
    pragmas: Vec<rules::Pragma>,
    findings: Vec<Finding>,
}

/// Lints every `.rs` file under `root` — token rules per file, then the
/// cross-file hot-path pass, then waiver application and the stale-pragma
/// audit — and returns the full [`Report`].
pub fn lint_tree_report(root: &Path, mode: Mode) -> io::Result<Report> {
    let mut states: Vec<FileState> = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let class = match mode {
            Mode::Workspace => classify_workspace(&rel),
            Mode::Fixture => classify_fixture(&rel),
        };
        let scan = lex::scan(&source);
        let items = parse::parse_items(&scan);
        let (pragmas, pragma_errors) = rules::parse_pragmas(&rel, &scan.comments);
        let mut findings = rules::token_findings(&rel, &scan, class);
        findings.extend(pragma_errors);
        for &line in &items.dangling_markers {
            findings.push(Finding {
                file: rel.clone(),
                line,
                rule: Rule::Pragma,
                message: "hot-path marker attaches to no `fn` below it".to_string(),
                waiver: None,
            });
        }
        states.push(FileState {
            rel,
            scan,
            items,
            exempt: class.exempt_code,
            pragmas,
            findings,
        });
    }

    // Cross-file hot-path pass over the whole tree.
    let inputs: Vec<callgraph::FileGraphInput<'_>> = states
        .iter()
        .map(|s| callgraph::FileGraphInput {
            rel: &s.rel,
            tokens: &s.scan.tokens,
            items: &s.items,
            exempt: s.exempt,
            cut_lines: s
                .pragmas
                .iter()
                .filter(|p| p.rule == Rule::HotPathOpaque)
                .map(|p| p.line)
                .collect(),
        })
        .collect();
    let mut hot = callgraph::analyze(&inputs, mode == Mode::Workspace);
    let model = concurrency::build_model(&inputs);
    hot.extend(concurrency::analyze_model(&model, &inputs));
    hot.extend(atomics::analyze_model(&model, &inputs));
    hot.extend(growth::analyze_model(&model, &inputs));
    drop(model);
    hot.extend(protocol::analyze(&inputs, mode == Mode::Workspace));
    drop(inputs);
    let mut unattached: Vec<Finding> = Vec::new();
    for f in hot {
        match states.iter_mut().find(|s| s.rel == f.file) {
            Some(s) => s.findings.push(f),
            None => unattached.push(f),
        }
    }

    // Waiver application + audit, per file.
    let mut findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    for s in &mut states {
        let mut hits = vec![0usize; s.pragmas.len()];
        rules::apply_waivers(&mut s.findings, &s.pragmas, &mut hits);
        for (k, p) in s.pragmas.iter().enumerate() {
            waivers.push(WaiverRecord {
                file: s.rel.clone(),
                line: p.line,
                rule: p.rule,
                reason: p.reason.clone(),
                hits: hits[k],
            });
            if hits[k] == 0 {
                s.findings.push(rules::stale_pragma_finding(&s.rel, p));
            }
        }
        findings.append(&mut s.findings);
    }
    findings.append(&mut unattached);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        mode,
        findings,
        waivers,
    })
}

/// Lints every `.rs` file under `root` and returns all findings (waived
/// ones included), sorted by file then line.
pub fn lint_tree(root: &Path, mode: Mode) -> io::Result<Vec<Finding>> {
    Ok(lint_tree_report(root, mode)?.findings)
}

/// Detects whether `root` is the dsjoin workspace (a `Cargo.toml` with a
/// `[workspace]` table) as opposed to a fixture directory.
pub fn is_workspace_root(root: &Path) -> bool {
    fs::read_to_string(root.join("Cargo.toml"))
        .map(|s| s.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_detection_requires_workspace_table() {
        // The lint crate's own Cargo.toml is a package, not a workspace.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        assert!(!is_workspace_root(here));
        // Two levels up is the dsjoin workspace root.
        let ws = here.join("../..");
        assert!(is_workspace_root(&ws));
    }

    #[test]
    fn collect_skips_vendor_and_fixtures() {
        let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_rs_files(&ws).expect("walk workspace");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            assert!(!s.contains("/vendor/"), "{s}");
            assert!(!s.contains("/target/"), "{s}");
            assert!(!s.contains("/fixtures/"), "{s}");
        }
    }
}
