//! `dsj-lint` — repo-specific static analysis for the dsjoin workspace.
//!
//! A dependency-free, token-level linter enforcing the invariants the
//! reproduction's claims rest on:
//!
//! - **determinism** — no `HashMap`/`HashSet` in deterministic paths, no
//!   wall clocks outside the timing allowlist, no unseeded RNGs;
//! - **panic-safety** — no `unwrap()`/`expect()`/`panic!`/`todo!` in
//!   library code (tests, benches, examples exempt);
//! - **hygiene** — every crate root carries `#![forbid(unsafe_code)]` and
//!   `#![warn(missing_docs)]`; float `==`/`!=` comparisons are banned.
//!
//! Findings can be waived in place with
//! `// dsj-lint: allow(<rule>) — <reason>`; the waiver covers the pragma's
//! own line and the next line, and every waiver is counted and reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod rules;

pub use rules::{classify_fixture, classify_workspace, lint_source, Finding, Rule, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", "fixtures", ".git"];

/// Whether to apply workspace path rules or arm every rule (fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Path-sensitive classification for the dsjoin workspace.
    Workspace,
    /// Every rule live on every file (self-test fixtures).
    Fixture,
}

/// Recursively collects `.rs` files under `root`, skipping `vendor/`,
/// `target/`, `fixtures/` and `.git/`. The result is sorted so reports
/// are stable.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root` and returns all findings (waived
/// ones included), sorted by file then line.
pub fn lint_tree(root: &Path, mode: Mode) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let class = match mode {
            Mode::Workspace => classify_workspace(&rel),
            Mode::Fixture => classify_fixture(&rel),
        };
        findings.extend(lint_source(&rel, &source, class));
    }
    Ok(findings)
}

/// Detects whether `root` is the dsjoin workspace (a `Cargo.toml` with a
/// `[workspace]` table) as opposed to a fixture directory.
pub fn is_workspace_root(root: &Path) -> bool {
    fs::read_to_string(root.join("Cargo.toml"))
        .map(|s| s.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_detection_requires_workspace_table() {
        // The lint crate's own Cargo.toml is a package, not a workspace.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        assert!(!is_workspace_root(here));
        // Two levels up is the dsjoin workspace root.
        let ws = here.join("../..");
        assert!(is_workspace_root(&ws));
    }

    #[test]
    fn collect_skips_vendor_and_fixtures() {
        let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_rs_files(&ws).expect("walk workspace");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            assert!(!s.contains("/vendor/"), "{s}");
            assert!(!s.contains("/target/"), "{s}");
            assert!(!s.contains("/fixtures/"), "{s}");
        }
    }
}
