//! Intra-workspace call-graph construction and the transitive `hot-path`
//! rule family.
//!
//! Starting from analysis roots — functions carrying a
//! `// dsj-lint: hot-path` marker, plus the configured
//! [`HOT_PATH_ROOTS`] list in workspace mode — this pass walks the
//! transitive callee set *within the workspace* and flags every reachable
//! construct that would break the per-tuple hot-path invariants:
//!
//! - **`hot-path-alloc`** — heap allocation (`vec![]`, `format!`,
//!   `Vec::new`, `Box::new`, `.clone()`, `.collect()`, `.to_vec()`, ...);
//! - **`hot-path-panic`** — `.unwrap()`/`.expect()`/`panic!` and friends,
//!   *transitively* (a hot function calling a cold helper that unwraps is
//!   flagged at the helper's call-free construct site);
//! - **`hot-path-nondet`** — unseeded RNGs, `HashMap`/`HashSet`
//!   iteration order, wall clocks;
//! - **`hot-path-opaque-call`** — a call the resolver cannot follow
//!   (trait object, closure, unknown std method). Conservative by design:
//!   every opaque call must either be made resolvable or waived with
//!   `// dsj-lint: allow(hot-path-opaque-call) — <why it is clean>`.
//!
//! Call resolution is name-based and deliberately over-approximate:
//! `Type::method` and `Self::method` resolve exactly; `self.method(..)`
//! prefers the enclosing `impl`; any other `.method(..)` resolves to the
//! *union* of workspace functions with that name (every candidate is
//! analyzed). A small allowlist of std methods that neither allocate,
//! panic, nor introduce nondeterminism (`CLEAN_METHODS`) keeps the
//! opaque-call noise floor at zero; growth-amortized container calls
//! (`push`, `extend`, `resize`, `entry().or_default()`) are allowlisted
//! under the scratch-reuse policy documented in DESIGN.md §6.
//!
//! An `allow(hot-path-opaque-call)` pragma on a *resolvable* call line
//! additionally **cuts** the edge: the callee is not traversed and the
//! cut is reported as a (waived) opaque-call finding, so deliberate
//! cold-path escapes (`self.recompute()`, summary shipping) stay visible
//! in every waiver audit.

use crate::lex::{Token, TokenKind};
use crate::parse::FileItems;
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Where the configured root list lives — findings about the list itself
/// (e.g. a root that no longer resolves) point here.
pub const ROOTS_FILE: &str = "crates/lint/src/callgraph.rs";

/// The per-tuple hot-path roots enforced in workspace mode, as
/// `Owner::name` (or bare `name` for free functions). Every entry must
/// resolve to at least one ungated workspace function; a rename that
/// orphans an entry is itself a finding.
pub const HOT_PATH_ROOTS: [&str; 12] = [
    "BaseRouter::route_into",
    "DftRouter::route_into",
    "JoinNode::handle_arrival_into",
    "NodeEngine::on_arrival",
    "NodeEngine::on_frame",
    "PointDft::add",
    "RoundRobin::pick_into",
    "Router::route_into",
    "SlidingDft::push",
    "SlidingWindow::insert",
    "forwarding_probabilities_into",
    "sample_recipients_into",
];

/// One scanned file, as the call-graph pass needs it.
#[derive(Debug)]
pub struct FileGraphInput<'a> {
    /// Workspace-relative path (as reported in findings).
    pub rel: &'a str,
    /// The file's code tokens.
    pub tokens: &'a [Token],
    /// Recovered `fn` items.
    pub items: &'a FileItems,
    /// Test/bench/example code — excluded from the graph entirely.
    pub exempt: bool,
    /// Lines carrying an `allow(hot-path-opaque-call)` pragma: resolvable
    /// calls on these lines (or the line below) are cut instead of
    /// traversed.
    pub cut_lines: Vec<u32>,
}

/// Macros that unconditionally panic.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Macros that allocate or format on every expansion.
const ALLOC_MACROS: [&str; 8] = [
    "vec", "format", "println", "print", "eprintln", "eprint", "write", "writeln",
];

/// Macros that are safe on the hot path (contract checks evaluate their
/// arguments, which are still scanned as part of the enclosing body).
const CLEAN_MACROS: [&str; 8] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "cfg",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
];

/// Method names that always heap-allocate a fresh owner.
const ALLOC_METHODS: [&str; 9] = [
    "clone",
    "collect",
    "concat",
    "into_boxed_slice",
    "into_owned",
    "join",
    "repeat",
    "to_owned",
    "to_vec",
];

/// Qualifiers whose associated constructors build owning containers.
const ALLOC_TYPES: [&str; 12] = [
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "CString",
    "OsString",
    "PathBuf",
    "Rc",
    "String",
    "Vec",
    "VecDeque",
];

/// Calls that construct nondeterministically-seeded state.
const NONDET_CALLS: [&str; 3] = ["from_entropy", "from_os_rng", "thread_rng"];

/// Rust keywords — never call heads, even when followed by `(`
/// (`for (i, x) in ..`, `let (a, b) = ..`, `match (x) {..}`).
pub(crate) const KEYWORDS: [&str; 36] = [
    "Self", "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while",
];

/// Primitive qualifiers: `u64::from`, `f64::from_bits` and friends are
/// pure conversions.
const PRIM_TYPES: [&str; 17] = [
    "bool", "char", "f32", "f64", "i128", "i16", "i32", "i64", "i8", "isize", "str", "u128", "u16",
    "u32", "u64", "u8", "usize",
];

/// Std/`rand` methods known not to allocate, panic, or branch on
/// nondeterminism — consulted only for calls the workspace resolver could
/// not follow. Growth-amortized container calls (`push`, `extend`,
/// `resize`, `entry`/`or_default`, `remove`) are included under the
/// scratch-reuse policy (DESIGN.md §6): hot-path buffers are reused
/// across tuples, so steady-state growth is zero. Sorted — looked up by
/// binary search.
pub(crate) const CLEAN_METHODS: [&str; 139] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_slices",
    "as_str",
    "back",
    "ceil",
    "chain",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "clamp",
    "clear",
    "cmp",
    "contains",
    "copied",
    "copy_from_slice",
    "cos",
    "count",
    "count_ones",
    "dedup",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fetch_add",
    "fetch_sub",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "from",
    "from_bits",
    "front",
    "gen",
    "gen_bool",
    "gen_range",
    "get",
    "get_mut",
    "hypot",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_none_or",
    "is_ok",
    "is_some",
    "is_some_and",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "leading_zeros",
    "len",
    "ln",
    "log2",
    "map",
    "map_or",
    "map_or_else",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "partial_cmp",
    "partition_point",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_back",
    "push_front",
    "recip",
    "rem_euclid",
    "remove",
    "resize",
    "rev",
    "rotate_left",
    "rotate_right",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "seed_from_u64",
    "signum",
    "sin",
    "sin_cos",
    "skip",
    "sort_unstable",
    "sort_unstable_by",
    "split_at",
    "sqrt",
    "sum",
    "swap",
    "take",
    "then",
    "then_some",
    "to_bits",
    "total_cmp",
    "trailing_zeros",
    "truncate",
    "try_from",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "zip",
];

/// A function in the cross-file graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FnId {
    file: usize,
    item: usize,
}

/// Name-resolution tables over every ungated, non-exempt workspace `fn`.
struct Graph {
    by_qual: BTreeMap<(String, String), Vec<FnId>>,
    by_name: BTreeMap<String, Vec<FnId>>,
    free_by_name: BTreeMap<String, Vec<FnId>>,
}

/// How a call site names its callee.
enum Shape {
    /// `recv.name(..)`; `self_recv` when the receiver is literally `self`.
    Method { self_recv: bool },
    /// `Qualifier::name(..)`.
    Qualified(String),
    /// `name(..)`.
    Bare,
}

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Runs the hot-path pass over the scanned files. When
/// `require_builtin_roots` is set (workspace mode), every entry of
/// [`HOT_PATH_ROOTS`] must resolve, and the resolved functions join the
/// marker-derived root set.
pub fn analyze(files: &[FileGraphInput<'_>], require_builtin_roots: bool) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut graph = Graph {
        by_qual: BTreeMap::new(),
        by_name: BTreeMap::new(),
        free_by_name: BTreeMap::new(),
    };
    for (fi, f) in files.iter().enumerate() {
        if f.exempt {
            continue;
        }
        for (ii, item) in f.items.fns.iter().enumerate() {
            if item.gated || item.body.is_none() {
                continue;
            }
            let id = FnId { file: fi, item: ii };
            match &item.owner {
                Some(owner) => graph
                    .by_qual
                    .entry((owner.clone(), item.name.clone()))
                    .or_default()
                    .push(id),
                None => graph
                    .free_by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(id),
            }
            graph.by_name.entry(item.name.clone()).or_default().push(id);
        }
    }

    let mut roots: Vec<FnId> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, item) in f.items.fns.iter().enumerate() {
            if !item.hot_marker {
                continue;
            }
            let misuse = if f.exempt {
                Some("exempt (test/bench/example) code is never analyzed")
            } else if item.gated {
                Some("cfg-gated code is excluded from release builds")
            } else if item.body.is_none() {
                Some("a bodyless signature cannot be analyzed")
            } else {
                None
            };
            if let Some(why) = misuse {
                findings.push(pragma_finding(
                    f.rel,
                    item.line,
                    format!(
                        "hot-path marker on `{}` has no effect — {why}",
                        item.display()
                    ),
                ));
            } else {
                roots.push(FnId { file: fi, item: ii });
            }
        }
    }
    if require_builtin_roots {
        for spec in HOT_PATH_ROOTS {
            let ids = match spec.split_once("::") {
                Some((owner, name)) => graph.by_qual.get(&(owner.to_string(), name.to_string())),
                None => graph.free_by_name.get(spec),
            };
            match ids {
                Some(ids) if !ids.is_empty() => {
                    for id in ids {
                        if !roots.contains(id) {
                            roots.push(*id);
                        }
                    }
                }
                _ => findings.push(pragma_finding(
                    ROOTS_FILE,
                    1,
                    format!(
                        "configured hot-path root `{spec}` no longer resolves to an ungated \
                         workspace fn — update HOT_PATH_ROOTS if it was renamed or gated"
                    ),
                )),
            }
        }
    }

    // Breadth-first over call edges; each function is scanned once, under
    // the first root that reaches it.
    let mut root_of: BTreeMap<FnId, String> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for id in roots {
        root_of.entry(id).or_insert_with(|| {
            queue.push_back(id);
            files[id.file].items.fns[id.item].display()
        });
    }
    let mut seen: BTreeSet<(String, u32, Rule, String)> = BTreeSet::new();
    while let Some(id) = queue.pop_front() {
        let Some(root) = root_of.get(&id).cloned() else {
            continue;
        };
        let mut edges: Vec<FnId> = Vec::new();
        scan_fn(
            files,
            &graph,
            id,
            &root,
            &mut findings,
            &mut seen,
            &mut edges,
        );
        for callee in edges {
            root_of.entry(callee).or_insert_with(|| {
                queue.push_back(callee);
                root.clone()
            });
        }
    }
    findings
}

fn pragma_finding(file: &str, line: u32, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: Rule::Pragma,
        message,
        waiver: None,
    }
}

/// Scans one function body: emits hot-path findings and collects resolved
/// call edges (unless cut by a pragma).
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    files: &[FileGraphInput<'_>],
    graph: &Graph,
    id: FnId,
    root: &str,
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
    edges: &mut Vec<FnId>,
) {
    let file = &files[id.file];
    let item = &file.items.fns[id.item];
    let Some((start, end)) = item.body else {
        return;
    };
    let toks = file.tokens;
    let display = item.display();
    let ctx = if display == root {
        format!("in hot-path root `{root}`")
    } else {
        format!("in `{display}` (reachable from hot-path root `{root}`)")
    };
    let mut emit = |line: u32, rule: Rule, key: &str, message: String| {
        if seen.insert((file.rel.to_string(), line, rule, key.to_string())) {
            findings.push(Finding {
                file: file.rel.to_string(),
                line,
                rule,
                message,
                waiver: None,
            });
        }
    };
    let is_cut = |line: u32| file.cut_lines.iter().any(|&l| l == line || l + 1 == line);

    let mut i = start;
    while i < end.min(toks.len()) {
        let Some(name) = ident(toks, i) else {
            i += 1;
            continue;
        };
        if KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        let line = toks[i].line;

        // Macro invocation: `name!(..)`, `name![..]`, `name!{..}`.
        if punct(toks, i + 1) == Some("!")
            && matches!(punct(toks, i + 2), Some("(") | Some("[") | Some("{"))
        {
            if PANIC_MACROS.contains(&name) {
                emit(
                    line,
                    Rule::HotPathPanic,
                    name,
                    format!("`{name}!` {ctx} — a per-tuple panic kills the node thread"),
                );
            } else if ALLOC_MACROS.contains(&name) {
                emit(
                    line,
                    Rule::HotPathAlloc,
                    name,
                    format!("`{name}!` {ctx} — allocates/formats on every tuple"),
                );
            } else if !CLEAN_MACROS.contains(&name) {
                emit(
                    line,
                    Rule::HotPathOpaque,
                    name,
                    format!(
                        "macro `{name}!` {ctx} cannot be analyzed — waive with \
                         `allow(hot-path-opaque-call)` if its expansion is allocation- and \
                         panic-free"
                    ),
                );
            }
            i += 2;
            continue;
        }

        // Nondeterminism visible from a bare identifier.
        match name {
            "HashMap" | "HashSet" => emit(
                line,
                Rule::HotPathNondet,
                name,
                format!("`{name}` {ctx} — iteration order varies per process"),
            ),
            "OsRng" | "thread_rng" | "from_entropy" | "from_os_rng" => emit(
                line,
                Rule::HotPathNondet,
                name,
                format!("`{name}` {ctx} — unseeded randomness breaks replay"),
            ),
            "SystemTime" => emit(
                line,
                Rule::HotPathNondet,
                name,
                format!("`SystemTime` {ctx} — wall clocks must not reach the hot path"),
            ),
            _ => {}
        }

        if !is_call(toks, i, end) {
            i += 1;
            continue;
        }
        let shape = match punct(toks, i.wrapping_sub(1)) {
            Some(".") if i >= 1 => Shape::Method {
                self_recv: i >= 2 && ident(toks, i - 2) == Some("self"),
            },
            Some("::") if i >= 1 => match (i >= 2).then(|| ident(toks, i - 2)).flatten() {
                Some(q) => Shape::Qualified(q.to_string()),
                None => Shape::Method { self_recv: false },
            },
            _ => Shape::Bare,
        };

        if matches!(name, "unwrap" | "expect")
            && matches!(shape, Shape::Method { .. } | Shape::Qualified(_))
        {
            emit(
                line,
                Rule::HotPathPanic,
                name,
                format!("`.{name}(..)` {ctx} — a poisoned tuple would crash the node"),
            );
            i += 1;
            continue;
        }
        if matches!(shape, Shape::Method { .. }) && ALLOC_METHODS.contains(&name) {
            emit(
                line,
                Rule::HotPathAlloc,
                name,
                format!("`.{name}()` {ctx} — per-tuple heap allocation; reuse a scratch buffer"),
            );
            i += 1;
            continue;
        }
        if let Shape::Qualified(q) = &shape {
            if ALLOC_TYPES.contains(&q.as_str()) {
                emit(
                    line,
                    Rule::HotPathAlloc,
                    name,
                    format!("`{q}::{name}` {ctx} — constructs an owning container per tuple"),
                );
                i += 1;
                continue;
            }
            if (q == "Instant" || q == "SystemTime") && name == "now" {
                emit(
                    line,
                    Rule::HotPathNondet,
                    name,
                    format!("`{q}::now` {ctx} — wall clocks must not reach the hot path"),
                );
                i += 1;
                continue;
            }
        }
        if NONDET_CALLS.contains(&name) {
            // Already reported by the bare-identifier check above.
            i += 1;
            continue;
        }

        // A non-`self` method call whose name is an allowlisted std method
        // is taken as std: resolving it by name union would drag unrelated
        // workspace functions that happen to share a common iterator-style
        // name (`map`, `take`, ...) into the hot graph.
        if matches!(shape, Shape::Method { self_recv: false })
            && CLEAN_METHODS.binary_search(&name).is_ok()
        {
            i += 1;
            continue;
        }

        // Workspace resolution.
        let callees: &[FnId] = match &shape {
            Shape::Qualified(q) if q == "Self" => item
                .owner
                .as_ref()
                .and_then(|o| graph.by_qual.get(&(o.clone(), name.to_string())))
                .map_or(&[], Vec::as_slice),
            Shape::Qualified(q) => graph
                .by_qual
                .get(&(q.clone(), name.to_string()))
                .map_or(&[], Vec::as_slice),
            Shape::Method { self_recv: true } => item
                .owner
                .as_ref()
                .and_then(|o| graph.by_qual.get(&(o.clone(), name.to_string())))
                .or_else(|| graph.by_name.get(name))
                .map_or(&[], Vec::as_slice),
            Shape::Method { self_recv: false } => {
                graph.by_name.get(name).map_or(&[], Vec::as_slice)
            }
            Shape::Bare => graph.free_by_name.get(name).map_or(&[], Vec::as_slice),
        };

        if !callees.is_empty() {
            if is_cut(line) {
                emit(
                    line,
                    Rule::HotPathOpaque,
                    name,
                    format!("call to `{name}` {ctx} deliberately cut from traversal"),
                );
            } else {
                edges.extend_from_slice(callees);
            }
            i += 1;
            continue;
        }

        // Unresolved: allowlisted std call, constructor, or opaque.
        let clean = CLEAN_METHODS.binary_search(&name).is_ok()
            || matches!(&shape, Shape::Qualified(q) if PRIM_TYPES.contains(&q.as_str()))
            || name.starts_with(|c: char| c.is_ascii_uppercase());
        if !clean {
            emit(
                line,
                Rule::HotPathOpaque,
                name,
                format!(
                    "cannot resolve `{name}(..)` {ctx} — make it resolvable or waive with \
                     `// dsj-lint: allow(hot-path-opaque-call) — <why it is clean>`"
                ),
            );
        }
        i += 1;
    }
}

/// `true` when the identifier at `i` heads a call: followed by `(`
/// directly or through a `::<..>` turbofish.
pub(crate) fn is_call(toks: &[Token], i: usize, limit: usize) -> bool {
    match punct(toks, i + 1) {
        Some("(") => true,
        Some("::") if punct(toks, i + 2) == Some("<") => {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < limit.min(toks.len()) {
                match punct(toks, j) {
                    Some("<") => depth += 1,
                    Some(">") => {
                        depth -= 1;
                        if depth == 0 {
                            return punct(toks, j + 1) == Some("(");
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let cut_lines = crate::rules::parse_pragmas("a.rs", &scan.comments)
            .0
            .into_iter()
            .filter(|p| p.rule == Rule::HotPathOpaque)
            .map(|p| p.line)
            .collect();
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines,
        };
        analyze(&[input], false)
    }

    #[test]
    fn clean_methods_is_sorted_for_binary_search() {
        assert!(CLEAN_METHODS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn direct_alloc_in_root_is_flagged() {
        let f = analyze_src("// dsj-lint: hot-path\nfn hot() { let v = vec![1]; }");
        assert!(f.iter().any(|x| x.rule == Rule::HotPathAlloc), "{f:?}");
    }

    #[test]
    fn transitive_alloc_two_calls_deep_is_flagged() {
        let src = "// dsj-lint: hot-path\nfn hot() { mid(); }\n\
                   fn mid() { leaf(); }\n\
                   fn leaf() -> Vec<u32> { Vec::new() }";
        let f = analyze_src(src);
        let alloc: Vec<_> = f.iter().filter(|x| x.rule == Rule::HotPathAlloc).collect();
        assert_eq!(alloc.len(), 1, "{f:?}");
        assert_eq!(alloc[0].line, 4);
        assert!(alloc[0].message.contains("hot-path root `hot`"));
    }

    #[test]
    fn transitive_unwrap_through_a_method_is_flagged() {
        let src = "// dsj-lint: hot-path\nfn hot(w: W) { w.helper(); }\n\
                   struct W;\nimpl W { fn helper(&self) { None::<u32>.unwrap(); } }";
        let f = analyze_src(src);
        assert!(f.iter().any(|x| x.rule == Rule::HotPathPanic), "{f:?}");
    }

    #[test]
    fn unresolved_call_is_opaque_and_waivable() {
        let unwaived = analyze_src("// dsj-lint: hot-path\nfn hot() { mystery(); }");
        assert!(
            unwaived.iter().any(|x| x.rule == Rule::HotPathOpaque),
            "{unwaived:?}"
        );
        // Constructors and allowlisted std calls are not opaque.
        let ctor = analyze_src("// dsj-lint: hot-path\nfn hot() -> Option<u32> { Some(1) }");
        assert!(ctor.is_empty(), "{ctor:?}");
        let clean = analyze_src("// dsj-lint: hot-path\nfn hot(v: &[u32]) -> usize { v.len() }");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn cut_pragma_stops_traversal_but_stays_visible() {
        let src = "// dsj-lint: hot-path\nfn hot() {\n    \
                   cold(); // dsj-lint: allow(hot-path-opaque-call) — cold path\n}\n\
                   fn cold() { let v = vec![1]; }";
        let f = analyze_src(src);
        // The allocation behind the cut is NOT reported...
        assert!(!f.iter().any(|x| x.rule == Rule::HotPathAlloc), "{f:?}");
        // ...but the cut itself is, as an opaque-call finding on the
        // pragma's line (waived later by the waiver pass).
        let opaque: Vec<_> = f.iter().filter(|x| x.rule == Rule::HotPathOpaque).collect();
        assert_eq!(opaque.len(), 1, "{f:?}");
        assert_eq!(opaque[0].line, 3);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let f =
            analyze_src("// dsj-lint: hot-path\nfn hot(v: &[f64]) { v.iter().mystery::<f64>(); }");
        assert!(f.iter().any(|x| x.rule == Rule::HotPathOpaque), "{f:?}");
        let clean = analyze_src(
            "// dsj-lint: hot-path\nfn hot(v: &[f64]) -> f64 { v.iter().sum::<f64>() }",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn nondet_sources_are_flagged_transitively() {
        let src = "// dsj-lint: hot-path\nfn hot() { helper(); }\n\
                   fn helper() { let r = rand::thread_rng(); }";
        let f = analyze_src(src);
        assert!(f.iter().any(|x| x.rule == Rule::HotPathNondet), "{f:?}");
    }

    #[test]
    fn gated_fns_are_not_resolvable() {
        let src = "// dsj-lint: hot-path\nfn hot() { gated(); }\n\
                   #[cfg(test)]\nfn gated() { let v = vec![1]; }";
        let f = analyze_src(src);
        // The call cannot resolve into gated code: opaque, not alloc.
        assert!(f.iter().any(|x| x.rule == Rule::HotPathOpaque), "{f:?}");
        assert!(!f.iter().any(|x| x.rule == Rule::HotPathAlloc), "{f:?}");
    }

    #[test]
    fn marker_misuse_is_a_pragma_finding() {
        let f = analyze_src("// dsj-lint: hot-path\n#[cfg(test)]\nfn gated() {}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Pragma);
        assert!(f[0].message.contains("no effect"), "{f:?}");
    }

    #[test]
    fn missing_builtin_root_is_reported_in_workspace_mode() {
        let scan = lex::scan("fn unrelated() {}");
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        let f = analyze(&[input], true);
        assert_eq!(f.len(), HOT_PATH_ROOTS.len(), "{f:?}");
        assert!(f
            .iter()
            .all(|x| x.rule == Rule::Pragma && x.file == ROOTS_FILE));
    }
}
