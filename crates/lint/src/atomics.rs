//! `atomic-protocol`: ordering discipline for the reactor's readiness
//! idioms, machine-checked on the CFG.
//!
//! Two checks, both derived from the writer-kick protocol the runtime's
//! reactor transport depends on:
//!
//! - **Relaxed gate needs a confirming RMW.** A
//!   `x.load(Ordering::Relaxed)` used as a *positive* conjunct of an
//!   `if`/`while` condition is only a cheap pre-check: it synchronizes
//!   with nothing, so acting on it alone races the writer. The idiom is
//!   `if flag.load(Relaxed) && flag.swap(false, SeqCst) { .. }` — the
//!   Acquire-or-stronger read-modify-write on the *same* atomic
//!   confirms the hint before the side effects run. The check: from the
//!   Relaxed load, every path to a side-effecting call inside the
//!   then-branch must pass a confirming RMW (`swap`,
//!   `compare_exchange[_weak]`, `fetch_*`) on the same atomic with
//!   `Acquire`/`AcqRel`/`SeqCst` ordering. Negated conjuncts
//!   (`!shutdown.load(Relaxed)`) are exempt: continuing *because the
//!   flag is unset* is the benign advisory use.
//! - **Flag set before kick.** In a function that both writes an atomic
//!   flag and `unpark`s a peer, every path from entry to the `unpark`
//!   must pass a Release-or-stronger write (`store`/`swap`/`fetch_or`/
//!   ...) first — a kick with no visible flag (or a `Relaxed` one that
//!   can reorder after it) wakes a thread that re-parks with work
//!   pending. Functions with no atomic write at all are skipped: a pure
//!   kicker helper's ordering obligation sits with its callers.
//!
//! Both checks are name-based on the receiver chain (the same
//! attribution the lock rules use) and path-based on
//! [`crate::cfg::Cfg::reachable_after`] — `kills` are the confirming /
//! flag-writing tokens, so a surviving reachability witness *is* an
//! ordering hole on some path.

use crate::callgraph::{is_call, FileGraphInput, KEYWORDS};
use crate::concurrency::{self, receiver_name, Model};
use crate::lex::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::BTreeSet;

/// Read-modify-write methods that can confirm a Relaxed pre-check.
const CONFIRMING_RMWS: [&str; 9] = [
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "swap",
];

/// Atomic write methods that count as "the flag is set" before a kick.
const FLAG_WRITES: [&str; 8] = [
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "store",
    "swap",
];

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Whether the argument list opening at `open` (a `(`) contains one of
/// the given ordering identifiers; returns the index past the `)`.
fn args_contain(toks: &[Token], open: usize, names: &[&str]) -> (bool, usize) {
    if punct(toks, open) != Some("(") {
        return (false, open);
    }
    let mut d = 0i32;
    let mut i = open;
    let mut found = false;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct(p) if p == "(" => d += 1,
            TokenKind::Punct(p) if p == ")" => {
                d -= 1;
                if d == 0 {
                    return (found, i + 1);
                }
            }
            TokenKind::Ident(s) if names.contains(&s.as_str()) => found = true,
            _ => {}
        }
        i += 1;
    }
    (found, i)
}

const ACQUIRE_OR_STRONGER: [&str; 3] = ["AcqRel", "Acquire", "SeqCst"];
const RELEASE_OR_STRONGER: [&str; 3] = ["AcqRel", "Release", "SeqCst"];

/// Runs the atomic-protocol pass standalone (tests); production shares
/// the model via `analyze_model`.
pub fn analyze(files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let model = concurrency::build_model(files);
    analyze_model(&model, files)
}

pub(crate) fn analyze_model(model: &Model, files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for f in &model.fns {
        let toks = files[f.file].tokens;
        let rel = files[f.file].rel;
        relaxed_gate_check(f, toks, rel, &mut findings, &mut seen);
        flag_before_kick_check(f, toks, rel, &mut findings, &mut seen);
    }
    findings
}

/// Conjunct segments of a condition range, split at `&&` (two `&`
/// puncts at bracket depth zero).
fn conjuncts(toks: &[Token], cond: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut d = 0i32;
    let mut seg = cond.0;
    let mut i = cond.0;
    while i < cond.1 {
        match punct(toks, i) {
            Some("(") | Some("[") | Some("{") => d += 1,
            Some(")") | Some("]") | Some("}") => d -= 1,
            Some("&") if d == 0 && punct(toks, i + 1) == Some("&") => {
                out.push((seg, i));
                i += 2;
                seg = i;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out.push((seg, cond.1));
    out
}

/// The Relaxed-gate check over every recorded `if`/`while` branch.
fn relaxed_gate_check(
    f: &concurrency::FnData,
    toks: &[Token],
    rel: &str,
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(usize, u32, String)>,
) {
    for br in &f.cfg.branches {
        for (cs, ce) in conjuncts(toks, br.cond) {
            // A negated conjunct (`!flag.load(Relaxed)`) is advisory use.
            if punct(toks, cs) == Some("!") {
                continue;
            }
            // Find `<chain>.load( .. Relaxed .. )` inside this conjunct.
            let mut i = cs;
            while i < ce {
                if ident(toks, i) != Some("load") || punct(toks, i.wrapping_sub(1)) != Some(".") {
                    i += 1;
                    continue;
                }
                let (relaxed, _) = args_contain(toks, i + 1, &["Relaxed"]);
                let Some(atomic) = receiver_name(toks, i) else {
                    i += 1;
                    continue;
                };
                if !relaxed {
                    i += 1;
                    continue;
                }
                check_gate(f, toks, rel, i, &atomic, br, findings, seen);
                i += 1;
            }
        }
    }
}

/// Verifies one Relaxed gate: every path from the load to a
/// side-effecting call in the then-branch must pass a confirming RMW on
/// the same atomic.
#[allow(clippy::too_many_arguments)]
fn check_gate(
    f: &concurrency::FnData,
    toks: &[Token],
    rel: &str,
    load_tok: usize,
    atomic: &str,
    br: &crate::cfg::Branch,
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(usize, u32, String)>,
) {
    // Confirming RMWs on the same atomic, in the condition tail or the
    // then-branch — these are the `kills` for the path query.
    let mut confirms: Vec<usize> = Vec::new();
    let mut t = load_tok + 1;
    while t < br.then_range.1 {
        if let Some(name) = ident(toks, t) {
            if CONFIRMING_RMWS.binary_search(&name).is_ok()
                && punct(toks, t.wrapping_sub(1)) == Some(".")
                && receiver_name(toks, t).as_deref() == Some(atomic)
            {
                let (strong, _) = args_contain(toks, t + 1, &ACQUIRE_OR_STRONGER);
                if strong {
                    confirms.push(t);
                }
            }
        }
        t += 1;
    }
    let reach = f.cfg.reachable_after(load_tok, usize::MAX, &confirms);
    // Side-effecting calls in the then-branch a confirm-free path reaches.
    let (ts, te) = br.then_range;
    let mut e = ts;
    while e < te {
        let Some(name) = ident(toks, e) else {
            e += 1;
            continue;
        };
        // Any call is a side effect here: CLEAN_METHODS deliberately
        // does NOT filter — that list means allocation-free, and a
        // `drain` on a stale gate is exactly the bug.
        if KEYWORDS.contains(&name) || name == "load" || !is_call(toks, e, te) || !reach.contains(e)
        {
            e += 1;
            continue;
        }
        let line = toks[load_tok].line;
        if seen.insert((f.file, line, format!("gate:{atomic}"))) {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: Rule::AtomicProtocol,
                message: format!(
                    "`{atomic}.load(Ordering::Relaxed)` gates `{name}(..)` (line {}) but no \
                     Acquire-or-stronger RMW on `{atomic}` confirms the hint on that path in \
                     `{}` — a stale Relaxed read races the writer; confirm with \
                     `{atomic}.swap(.., Ordering::SeqCst)` in the condition, as the reactor's \
                     dirty pre-check does",
                    toks[e].line, f.display
                ),
                waiver: None,
            });
        }
        return;
    }
}

/// The flag-set-before-kick check: in a function that both writes an
/// atomic and `unpark`s, no path may reach the `unpark` without a
/// Release-or-stronger write first.
fn flag_before_kick_check(
    f: &concurrency::FnData,
    toks: &[Token],
    rel: &str,
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(usize, u32, String)>,
) {
    let (start, end) = f.body;
    let mut kicks: Vec<usize> = Vec::new();
    let mut strong_writes: Vec<usize> = Vec::new();
    let mut any_write = false;
    let mut i = start;
    while i < end.min(toks.len()) {
        if f.cfg.block_of(i).is_none() {
            i += 1;
            continue; // lifted closure bodies are their own functions
        }
        if let Some(name) = ident(toks, i) {
            if name == "unpark" && punct(toks, i.wrapping_sub(1)) == Some(".") {
                kicks.push(i);
            } else if FLAG_WRITES.binary_search(&name).is_ok()
                && punct(toks, i.wrapping_sub(1)) == Some(".")
                && receiver_name(toks, i).is_some()
            {
                any_write = true;
                let (strong, _) = args_contain(toks, i + 1, &RELEASE_OR_STRONGER);
                if strong {
                    strong_writes.push(i);
                }
            }
        }
        i += 1;
    }
    if kicks.is_empty() || !any_write {
        return;
    }
    if start >= end.min(toks.len()) {
        return;
    }
    // Paths from entry that avoid every strong write. (The walk starts
    // after the first body token, which can never be a flag-write
    // method ident — those need a preceding `.`.)
    let unflagged = f.cfg.reachable_after(start, usize::MAX, &strong_writes);
    for &k in &kicks {
        if !unflagged.contains(k) {
            continue;
        }
        let line = toks[k].line;
        if seen.insert((f.file, line, "kick".to_string())) {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: Rule::AtomicProtocol,
                message: format!(
                    "`unpark()` is reachable without a Release-or-stronger flag write before \
                     it in `{}` — the woken thread can observe the flag unset and park again \
                     with work pending; store/swap the readiness flag (SeqCst) before kicking",
                    f.display
                ),
                waiver: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        analyze(&[input])
    }

    #[test]
    fn rmw_and_write_tables_are_sorted() {
        assert!(CONFIRMING_RMWS.windows(2).all(|w| w[0] < w[1]));
        assert!(FLAG_WRITES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn relaxed_gate_without_confirming_swap_is_flagged() {
        let src = "fn pump(link: &Link) {\n\
             if link.dirty.load(Ordering::Relaxed) {\n\
             flush_batch(link);\n\
             }\n\
             }\n\
             fn flush_batch(link: &Link) { let _ = link; }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AtomicProtocol);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("no Acquire-or-stronger RMW"), "{f:?}");
    }

    #[test]
    fn the_reactor_precheck_swap_idiom_is_clean() {
        let src = "fn pump(link: &Link) {\n\
             if link.open && link.dirty.load(Ordering::Relaxed)\n\
             && link.dirty.swap(false, Ordering::SeqCst) {\n\
             flush_batch(link);\n\
             }\n\
             }\n\
             fn flush_batch(link: &Link) { let _ = link; }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn confirm_in_the_then_branch_covers_only_its_paths() {
        // The confirming swap sits in one arm; the sibling arm's side
        // effect still runs on a stale Relaxed read.
        let src = "fn pump(link: &Link, x: u8) {\n\
             if link.dirty.load(Ordering::Relaxed) {\n\
             match x {\n\
             0 => { if link.dirty.swap(false, Ordering::SeqCst) { flush_batch(link); } }\n\
             _ => flush_batch(link),\n\
             }\n\
             }\n\
             }\n\
             fn flush_batch(link: &Link) { let _ = link; }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn a_relaxed_confirmation_is_not_a_confirmation() {
        let src = "fn pump(link: &Link) {\n\
             if link.dirty.load(Ordering::Relaxed)\n\
             && link.dirty.swap(false, Ordering::Relaxed) {\n\
             flush_batch(link);\n\
             }\n\
             }\n\
             fn flush_batch(link: &Link) { let _ = link; }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn negated_relaxed_load_is_advisory_and_exempt() {
        let src = "fn run(shutdown: &AtomicBool) {\n\
             while !shutdown.load(Ordering::Relaxed) {\n\
             step();\n\
             }\n\
             }\n\
             fn step() {}";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn acquire_load_gates_are_exempt() {
        let src = "fn pump(link: &Link) {\n\
             if link.dirty.load(Ordering::Acquire) {\n\
             flush_batch(link);\n\
             }\n\
             }\n\
             fn flush_batch(link: &Link) { let _ = link; }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn empty_then_branch_has_no_side_effect_to_protect() {
        let src = "fn observe(flag: &AtomicBool, hits: &mut u64) {\n\
             if flag.load(Ordering::Relaxed) { *hits += 1; }\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn kick_without_flag_write_on_some_path_is_flagged() {
        let src = "fn notify(flag: &AtomicBool, thread: &Thread, urgent: bool) {\n\
             if urgent {\n\
             flag.store(true, Ordering::SeqCst);\n\
             }\n\
             thread.unpark();\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("park again"), "{f:?}");
    }

    #[test]
    fn the_kick_coalescing_idiom_is_clean() {
        let src = "fn notify(flag: &AtomicBool, thread: &Thread) {\n\
             if !flag.swap(true, Ordering::SeqCst) {\n\
             thread.unpark();\n\
             }\n\
             }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn a_relaxed_flag_store_does_not_cover_the_kick() {
        let src = "fn notify(flag: &AtomicBool, thread: &Thread) {\n\
             flag.store(true, Ordering::Relaxed);\n\
             thread.unpark();\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Release-or-stronger"), "{f:?}");
    }

    #[test]
    fn a_pure_kicker_helper_is_the_callers_problem() {
        let src = "fn kick(thread: &Thread) { thread.unpark(); }";
        assert!(analyze_src(src).is_empty());
    }
}
