//! Concurrency-discipline analyses: lock-order cycles, guards held across
//! blocking calls, and in-flight counter balance — CFG-based since v4.
//!
//! Three tree-level rule families share one pass over the ungated,
//! non-exempt workspace functions:
//!
//! - **`lock-order`** — every `.lock()` (and zero-argument `.read()` /
//!   `.write()`, the `RwLock` guard constructors) is attributed to a
//!   *named* lock (the last field, variable or accessor-fn identifier of
//!   its receiver chain: `self.failures.lock()` → `failures`,
//!   `self.links[i].queue.lock()` → `queue`). While a guard is live on
//!   some path, any further acquisition — directly or through a resolved
//!   workspace call that transitively locks — adds a
//!   may-hold-while-acquiring edge carrying the reader/writer mode. A
//!   cycle in that graph means two code paths can take the same locks in
//!   opposite orders; the finding carries the full witness path. A
//!   `.lock()` whose receiver cannot be named is itself a finding:
//!   unattributable guards would silently fall out of the proof.
//! - **`guard-across-blocking`** — a guard live on a path reaching a
//!   call whose name is in [`BLOCKING_CALLS`] (or that resolves to a
//!   workspace function which transitively makes one) is flagged: a
//!   blocked thread holds the lock and stalls every other party.
//! - **`in-flight-balance`** — for counters in [`BALANCED_COUNTERS`]:
//!   every CFG path from a `fetch_add` to an *early* exit (`return` or
//!   `?`) must pass a `fetch_sub` on the same counter or a call that
//!   transitively decrements it (closures count: their bodies are lifted
//!   as sub-functions credited at the definition site); the fall-through
//!   exit is the designated hand-off to the deliver side. A leak finding
//!   carries the witness path. A visibility call ([`VISIBILITY_CALLS`])
//!   with a path to the first `fetch_add` inverts the
//!   increment-before-visibility protocol; and a counter with adds but
//!   no subs anywhere in the tree (or vice versa) can never quiesce.
//!
//! Guard *liveness* is path-sensitive: the live region of a `let`-bound
//! guard is every token reachable from the acquisition without passing a
//! `drop(var)` or leaving the binding block — a guard dropped in one
//! `match` arm stays live in its siblings, and only there. Temporaries
//! and pattern bindings stay live to the end of their statement. Lock
//! identity is name-based and call resolution reuses the
//! over-approximate union resolver of [`crate::callgraph`]; the residual
//! approximations are spelled out in DESIGN.md §6.

use crate::callgraph::{is_call, FileGraphInput, CLEAN_METHODS, KEYWORDS};
use crate::cfg::{self, Cfg};
use crate::lex::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call names treated as potentially blocking when a lock guard is live.
/// Sorted — looked up by binary search. Bare `read`/`write` are *not*
/// here: with no arguments they are `RwLock` guard constructors (tracked
/// as acquisitions), and the I/O forms (`read_exact`, `write_all`,
/// `write_vectored`, ...) carry buffers and keep their own entries.
pub const BLOCKING_CALLS: [&str; 18] = [
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "send",
    "send_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "write_all",
    "write_vectored",
];

/// Calls that make an event visible to another thread — a balanced
/// counter must be incremented *before* any of these run, or a racing
/// quiescence check can observe zero while work is in flight.
pub const VISIBILITY_CALLS: [&str; 3] = ["send", "write", "write_all"];

/// Atomic counters whose `fetch_add`/`fetch_sub` sites must balance: the
/// live harness's quiescence invariant rests on `in_flight` reaching a
/// true zero.
pub const BALANCED_COUNTERS: [&str; 1] = ["in_flight"];

/// `(file index, item index)` — a function's identity across the pass.
/// Lifted closures get synthetic item indices past the file's real ones.
pub(crate) type Key = (usize, usize);

/// How a guard was constructed — `Mutex::lock`, `RwLock::read` or
/// `RwLock::write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GuardMode {
    Mutex,
    Read,
    Write,
}

impl GuardMode {
    fn word(self) -> &'static str {
        match self {
            GuardMode::Mutex => "guard",
            GuardMode::Read => "read guard",
            GuardMode::Write => "write guard",
        }
    }
}

/// One acquisition site and the bounds of its guard's life.
pub(crate) struct LockSite {
    /// Attributed lock name; `None` when the receiver cannot be named.
    name: Option<String>,
    mode: GuardMode,
    tok: usize,
    line: u32,
    /// Hard bound: the binding block's close (bound guards) or the end
    /// of the statement (temporaries), exclusive.
    scope_end: usize,
    /// Every `drop(var)` of the bound guard — path-sensitive kills.
    drops: Vec<usize>,
}

/// A call site that resolved to at least one workspace function (or a
/// lifted closure).
pub(crate) struct CallSite {
    tok: usize,
    line: u32,
    name: String,
    callees: Vec<Key>,
}

/// A call whose *name* is in [`BLOCKING_CALLS`], resolved or not.
pub(crate) struct BlockingSite {
    tok: usize,
    line: u32,
    name: String,
}

/// A `fetch_add`/`fetch_sub` on a balanced counter.
pub(crate) struct CounterSite {
    counter: String,
    tok: usize,
    line: u32,
}

/// A visibility call site ([`VISIBILITY_CALLS`]).
pub(crate) struct VisSite {
    tok: usize,
    line: u32,
    name: String,
}

/// Everything the analyses need from one function (or closure) body.
pub(crate) struct FnData {
    pub(crate) key: Key,
    pub(crate) file: usize,
    pub(crate) display: String,
    pub(crate) body: (usize, usize),
    pub(crate) cfg: Cfg,
    locks: Vec<LockSite>,
    pub(crate) calls: Vec<CallSite>,
    blocking: Vec<BlockingSite>,
    adds: Vec<CounterSite>,
    subs: Vec<CounterSite>,
    vis: Vec<VisSite>,
}

impl CallSite {
    pub(crate) fn tok(&self) -> usize {
        self.tok
    }
    pub(crate) fn callees(&self) -> &[Key] {
        &self.callees
    }
}

/// A may-hold-while-acquiring edge: `to` is (possibly transitively)
/// acquired while a guard of `from` is live.
struct Edge {
    from: String,
    from_mode: GuardMode,
    to: String,
    file: String,
    line: u32,
    holder: String,
    /// `" via `callee` (..)"` for edges through a call; empty for direct
    /// nested acquisitions.
    note: String,
}

/// Name-resolution tables over the same function set the call-graph pass
/// uses (ungated, non-exempt, with a body).
pub(crate) struct Tables {
    by_qual: BTreeMap<(String, String), Vec<Key>>,
    by_name: BTreeMap<String, Vec<Key>>,
    free_by_name: BTreeMap<String, Vec<Key>>,
}

/// The scanned function set plus its index — shared by this pass and the
/// v4 [`crate::atomics`] / [`crate::growth`] passes.
pub(crate) struct Model {
    pub(crate) fns: Vec<FnData>,
    pub(crate) fn_index: BTreeMap<Key, usize>,
}

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Runs the concurrency pass over the scanned files.
pub fn analyze(files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let model = build_model(files);
    analyze_model(&model, files)
}

/// Scans every ungated, non-exempt function (and its lifted closures)
/// into the shared [`Model`].
pub(crate) fn build_model(files: &[FileGraphInput<'_>]) -> Model {
    let tables = build_tables(files);
    let mut fns: Vec<FnData> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.exempt {
            continue;
        }
        let mut next_sub = f.items.fns.len();
        for (ii, item) in f.items.fns.iter().enumerate() {
            if item.gated {
                continue;
            }
            let Some(body) = item.body else {
                continue;
            };
            scan_region(
                files,
                &tables,
                fi,
                &item.owner,
                item.display(),
                (body.0, body.1.min(f.tokens.len())),
                (fi, ii),
                &mut next_sub,
                &mut fns,
            );
        }
    }
    let mut fn_index: BTreeMap<Key, usize> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        fn_index.insert(f.key, i);
    }
    Model { fns, fn_index }
}

/// The lock-order / guard-across-blocking / in-flight checks over a
/// prebuilt model.
pub(crate) fn analyze_model(model: &Model, files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let fns = &model.fns;
    let fn_index = &model.fn_index;
    let may_block = may_block_fixpoint(files, fns, fn_index);
    let acquires = acquires_fixpoint(files, fns, fn_index);

    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<(String, u32, Rule, String)> = BTreeSet::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_seen: BTreeSet<(String, String, String, u32)> = BTreeSet::new();

    for f in fns {
        let rel = files[f.file].rel;
        for s in &f.locks {
            let Some(from) = &s.name else {
                emit(
                    &mut findings,
                    &mut seen,
                    rel,
                    s.line,
                    Rule::LockOrder,
                    "anon",
                    format!(
                        "cannot attribute this acquisition to a named lock in `{}` — end the \
                         receiver chain in a field, variable or accessor fn, or waive with \
                         `allow(lock-order)`",
                        f.display
                    ),
                );
                continue;
            };
            // Path-sensitive liveness: tokens reachable from the
            // acquisition without passing a drop or leaving the scope.
            // The textual clamp `t > s.tok` matters under loops: a back
            // edge re-enters tokens *before* the acquisition, but those
            // run in the next iteration, where this iteration's guard is
            // already dead (RAII ends it at the binding block's close).
            let live = f.cfg.reachable_after(s.tok, s.scope_end, &s.drops);
            // Direct nested acquisitions on a live path.
            for s2 in &f.locks {
                if s2.tok > s.tok && live.contains(s2.tok) {
                    if let Some(to) = &s2.name {
                        push_edge(
                            &mut edges,
                            &mut edge_seen,
                            Edge {
                                from: from.clone(),
                                from_mode: s.mode,
                                to: to.clone(),
                                file: rel.to_string(),
                                line: s2.line,
                                holder: f.display.clone(),
                                note: String::new(),
                            },
                        );
                    }
                }
            }
            // Acquisitions and blocking behind calls on a live path.
            let mut blocked_lines: BTreeSet<u32> = BTreeSet::new();
            for b in &f.blocking {
                if b.tok > s.tok && live.contains(b.tok) {
                    blocked_lines.insert(b.line);
                    emit(
                        &mut findings,
                        &mut seen,
                        rel,
                        b.line,
                        Rule::GuardBlocking,
                        &format!("{from}:{}", b.name),
                        format!(
                            "`{}(..)` can block while the `{from}` {} (acquired line {}) is \
                             live in `{}` — a blocked thread holds the lock; drop or scope the \
                             guard first",
                            b.name,
                            s.mode.word(),
                            s.line,
                            f.display
                        ),
                    );
                }
            }
            for c in &f.calls {
                if c.tok <= s.tok || !live.contains(c.tok) {
                    continue;
                }
                for k in &c.callees {
                    if let Some(acq) = acquires.get(k) {
                        for (to, wit) in acq {
                            push_edge(
                                &mut edges,
                                &mut edge_seen,
                                Edge {
                                    from: from.clone(),
                                    from_mode: s.mode,
                                    to: to.clone(),
                                    file: rel.to_string(),
                                    line: c.line,
                                    holder: f.display.clone(),
                                    note: format!(" via `{}` ({wit})", disp(fns, fn_index, k)),
                                },
                            );
                        }
                    }
                }
                if !blocked_lines.contains(&c.line) {
                    if let Some((k, wit)) = c
                        .callees
                        .iter()
                        .find_map(|k| may_block.get(k).map(|w| (k, w)))
                    {
                        blocked_lines.insert(c.line);
                        emit(
                            &mut findings,
                            &mut seen,
                            rel,
                            c.line,
                            Rule::GuardBlocking,
                            &format!("{from}:{}", c.name),
                            format!(
                                "`{}(..)` resolves to `{}` which may block ({wit}) while the \
                                 `{from}` {} (acquired line {}) is live in `{}`",
                                c.name,
                                disp(fns, fn_index, k),
                                s.mode.word(),
                                s.line,
                                f.display
                            ),
                        );
                    }
                }
            }
        }
    }

    cycle_findings(&edges, &mut findings, &mut seen);
    in_flight_findings(files, fns, fn_index, &mut findings, &mut seen);
    findings
}

pub(crate) fn build_tables(files: &[FileGraphInput<'_>]) -> Tables {
    let mut t = Tables {
        by_qual: BTreeMap::new(),
        by_name: BTreeMap::new(),
        free_by_name: BTreeMap::new(),
    };
    for (fi, f) in files.iter().enumerate() {
        if f.exempt {
            continue;
        }
        for (ii, item) in f.items.fns.iter().enumerate() {
            if item.gated || item.body.is_none() {
                continue;
            }
            let id = (fi, ii);
            match &item.owner {
                Some(owner) => t
                    .by_qual
                    .entry((owner.clone(), item.name.clone()))
                    .or_default()
                    .push(id),
                None => t
                    .free_by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(id),
            }
            t.by_name.entry(item.name.clone()).or_default().push(id);
        }
    }
    t
}

/// Scans one body region (a function or a lifted closure) for lock
/// sites, resolved calls, blocking-name calls and balanced-counter
/// touches; recurses into lifted closures as sub-functions wired to the
/// enclosing region at their definition token.
#[allow(clippy::too_many_arguments)]
fn scan_region(
    files: &[FileGraphInput<'_>],
    tables: &Tables,
    fi: usize,
    owner: &Option<String>,
    display: String,
    body: (usize, usize),
    key: Key,
    next_sub: &mut usize,
    out: &mut Vec<FnData>,
) {
    let file = &files[fi];
    let toks = file.tokens;
    let (start, end) = body;
    let graph = cfg::build(toks, body);

    // Lifted sub-regions (closures and nested `fn`s) leave this region's
    // token walk entirely.
    let mut skip: Vec<(usize, usize)> = graph.lifted.iter().map(|l| l.body).collect();
    skip.sort_unstable();

    let mut data = FnData {
        key,
        file: fi,
        display: display.clone(),
        body,
        cfg: graph,
        locks: Vec::new(),
        calls: Vec::new(),
        blocking: Vec::new(),
        adds: Vec::new(),
        subs: Vec::new(),
        vis: Vec::new(),
    };

    let mut i = start;
    while i < end {
        if let Some(&(_, le)) = skip.iter().find(|&&(ls, le)| i >= ls && i < le) {
            i = le;
            continue;
        }
        let Some(name) = ident(toks, i) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        // Macro invocation: skip the head, the body tokens still scan.
        if punct(toks, i + 1) == Some("!")
            && matches!(punct(toks, i + 2), Some("(") | Some("[") | Some("{"))
        {
            i += 2;
            continue;
        }
        if KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        if !is_call(toks, i, end) {
            i += 1;
            continue;
        }

        // Guard acquisitions: `.lock()`, and the `RwLock` constructors
        // — zero-argument `.read()` / `.write()` (the I/O forms always
        // carry a buffer argument).
        let acq = if name == "lock" {
            Some(GuardMode::Mutex)
        } else if (name == "read" || name == "write")
            && punct(toks, i + 1) == Some("(")
            && punct(toks, i + 2) == Some(")")
        {
            Some(if name == "read" {
                GuardMode::Read
            } else {
                GuardMode::Write
            })
        } else {
            None
        };
        if let Some(mode) = acq {
            if punct(toks, i.wrapping_sub(1)) == Some(".") && i >= 1 {
                let lock_name = receiver_name(toks, i);
                let scope = guard_scope(toks, start, end, i);
                data.locks.push(LockSite {
                    name: lock_name,
                    mode,
                    tok: i,
                    line,
                    scope_end: scope.end,
                    drops: scope.drops,
                });
                i += 1;
                continue;
            }
        }

        // Balanced-counter touches.
        if (name == "fetch_add" || name == "fetch_sub")
            && punct(toks, i.wrapping_sub(1)) == Some(".")
            && i >= 1
        {
            if let Some(recv) = receiver_name(toks, i) {
                if BALANCED_COUNTERS.contains(&recv.as_str()) {
                    let site = CounterSite {
                        counter: recv,
                        tok: i,
                        line,
                    };
                    if name == "fetch_add" {
                        data.adds.push(site);
                    } else {
                        data.subs.push(site);
                    }
                }
            }
            i += 1;
            continue;
        }

        if BLOCKING_CALLS.binary_search(&name).is_ok() {
            data.blocking.push(BlockingSite {
                tok: i,
                line,
                name: name.to_string(),
            });
        }
        if VISIBILITY_CALLS.contains(&name) && punct(toks, i.wrapping_sub(1)) == Some(".") && i >= 1
        {
            data.vis.push(VisSite {
                tok: i,
                line,
                name: name.to_string(),
            });
        }

        // Workspace resolution, mirroring the call-graph pass.
        let prev = punct(toks, i.wrapping_sub(1));
        let self_recv = i >= 2 && ident(toks, i - 2) == Some("self");
        let callees: Vec<Key> = match prev {
            Some(".") if i >= 1 => {
                if !self_recv && CLEAN_METHODS.binary_search(&name).is_ok() {
                    Vec::new()
                } else if self_recv {
                    owner
                        .as_ref()
                        .and_then(|o| tables.by_qual.get(&(o.clone(), name.to_string())))
                        .or_else(|| tables.by_name.get(name))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    tables.by_name.get(name).cloned().unwrap_or_default()
                }
            }
            Some("::") if i >= 2 => match ident(toks, i - 2) {
                Some("Self") => owner
                    .as_ref()
                    .and_then(|o| tables.by_qual.get(&(o.clone(), name.to_string())))
                    .cloned()
                    .unwrap_or_default(),
                Some(q) => tables
                    .by_qual
                    .get(&(q.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default(),
                None => Vec::new(),
            },
            _ => tables.free_by_name.get(name).cloned().unwrap_or_default(),
        };
        if !callees.is_empty() {
            data.calls.push(CallSite {
                tok: i,
                line,
                name: name.to_string(),
                callees,
            });
        }
        i += 1;
    }

    // Lifted closures become callable sub-functions, wired to this
    // region at their definition token; nested `fn`s are real items the
    // outer loop scans on its own, so they only leave the token walk.
    let lifted: Vec<(usize, u32, (usize, usize), bool)> = data
        .cfg
        .lifted
        .iter()
        .map(|l| (l.tok, l.line, l.body, l.is_closure))
        .collect();
    for (tok, line, lbody, is_closure) in lifted {
        if !is_closure {
            continue;
        }
        let sub_key = (fi, *next_sub);
        *next_sub += 1;
        data.calls.push(CallSite {
            tok,
            line,
            name: format!("{{closure@{line}}}"),
            callees: vec![sub_key],
        });
        scan_region(
            files,
            tables,
            fi,
            owner,
            format!("{display}::{{closure@{line}}}"),
            lbody,
            sub_key,
            next_sub,
            out,
        );
    }
    out.push(data);
}

/// The last named identifier of the receiver chain ending at the `.`
/// before token `i`: `self.failures.lock` → `failures`,
/// `self.links[i].queue.lock` → `queue`, `exclusivity().lock` →
/// `exclusivity`, `locks[i].lock` → `locks`. `?` and `await` hops in
/// the chain are skipped.
pub(crate) fn receiver_name(toks: &[Token], i: usize) -> Option<String> {
    receiver_ident(toks, i).and_then(|j| match &toks[j].kind {
        TokenKind::Ident(s) => Some(s.clone()),
        _ => None,
    })
}

/// Like [`receiver_name`], but returns the token *index* of the naming
/// identifier — callers that must keep walking the chain (the growth
/// rule's adapter skipping) restart from it.
pub(crate) fn receiver_ident(toks: &[Token], i: usize) -> Option<usize> {
    if i < 2 {
        return None;
    }
    let mut j = i - 2; // the token before the `.`
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if s == "await" => {
                // `x.fut().await.lock()` — keep walking the chain.
                if j < 2 || punct(toks, j - 1) != Some(".") {
                    return None;
                }
                j -= 2;
            }
            Some(TokenKind::Ident(_)) => return Some(j),
            Some(TokenKind::Punct(p)) if p == "?" => {
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            Some(TokenKind::Punct(p)) if p == ")" || p == "]" => {
                let (open, close) = if p == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0i32;
                loop {
                    match punct(toks, j) {
                        Some(x) if x == close => depth += 1,
                        Some(x) if x == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                }
                // `j` is at the opening bracket; the name precedes it.
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            _ => return None,
        }
    }
}

/// The textual bounds of the guard born at the acquisition at token `i`.
struct GuardScope {
    /// Hard bound (exclusive): binding block close, or statement end
    /// for temporaries.
    end: usize,
    /// Every `drop(var)` position inside the bound — path-sensitive
    /// kills for [`Cfg::reachable_after`].
    drops: Vec<usize>,
}

fn guard_scope(toks: &[Token], body_start: usize, body_end: usize, i: usize) -> GuardScope {
    // Walk back to the start of the enclosing statement.
    let mut depth = 0i32;
    let mut j = i;
    let stmt_start = loop {
        if j == body_start {
            break j;
        }
        j -= 1;
        match punct(toks, j) {
            Some("}") if depth == 0 => {
                // A `}` at statement depth closes the *previous* statement's
                // block (`if {..}`, `match {..}`, a loop body): it cannot be
                // part of this statement's receiver chain, so the statement
                // starts right after it. Without this, the walk swallows the
                // whole preceding block, `let` is never seen, and the guard's
                // scope silently collapses at the first `;`.
                break j + 1;
            }
            Some(")") | Some("]") | Some("}") => depth += 1,
            Some("(") | Some("[") | Some("{") => {
                if depth == 0 {
                    break j + 1;
                }
                depth -= 1;
            }
            Some(";") | Some(",") if depth == 0 => break j + 1,
            _ => {}
        }
    };
    let bound_var = if ident(toks, stmt_start) == Some("let") {
        let mut k = stmt_start + 1;
        if ident(toks, k) == Some("mut") {
            k += 1;
        }
        match ident(toks, k) {
            Some(v)
                if v != "_"
                    && !KEYWORDS.contains(&v)
                    && matches!(punct(toks, k + 1), Some("=") | Some(":")) =>
            {
                Some(v.to_string())
            }
            _ => None,
        }
    } else {
        None
    };

    let mut depth = 0i32;
    let mut j = i;
    let mut drops = Vec::new();
    while j < body_end {
        match punct(toks, j) {
            Some("(") | Some("[") | Some("{") => depth += 1,
            Some(")") | Some("]") | Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return GuardScope { end: j, drops };
                }
            }
            Some(";") | Some(",") if depth == 0 && bound_var.is_none() => {
                return GuardScope { end: j, drops }
            }
            _ => {}
        }
        if let Some(var) = &bound_var {
            if ident(toks, j) == Some("drop")
                && punct(toks, j + 1) == Some("(")
                && ident(toks, j + 2) == Some(var)
                && punct(toks, j + 3) == Some(")")
            {
                drops.push(j);
            }
        }
        j += 1;
    }
    GuardScope {
        end: body_end,
        drops,
    }
}

/// Functions that may block, with a witness: seeded by direct
/// blocking-name calls, propagated over resolved call edges (closure
/// sub-functions included).
fn may_block_fixpoint(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    fn_index: &BTreeMap<Key, usize>,
) -> BTreeMap<Key, String> {
    let mut may_block: BTreeMap<Key, String> = BTreeMap::new();
    for f in fns {
        if let Some(b) = f.blocking.first() {
            may_block.insert(
                f.key,
                format!("calls `{}` at {}:{}", b.name, files[f.file].rel, b.line),
            );
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            if may_block.contains_key(&f.key) {
                continue;
            }
            'calls: for c in &f.calls {
                for k in &c.callees {
                    if may_block.contains_key(k) {
                        may_block.insert(
                            f.key,
                            format!(
                                "via `{}` at {}:{}",
                                disp(fns, fn_index, k),
                                files[f.file].rel,
                                c.line
                            ),
                        );
                        changed = true;
                        break 'calls;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    may_block
}

/// Lock names each function may acquire (transitively), with witnesses.
fn acquires_fixpoint(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    fn_index: &BTreeMap<Key, usize>,
) -> BTreeMap<Key, BTreeMap<String, String>> {
    let mut acquires: BTreeMap<Key, BTreeMap<String, String>> = BTreeMap::new();
    for f in fns {
        for s in &f.locks {
            if let Some(n) = &s.name {
                acquires
                    .entry(f.key)
                    .or_default()
                    .entry(n.clone())
                    .or_insert_with(|| {
                        format!(
                            "takes the `{n}` {} at {}:{}",
                            s.mode.word(),
                            files[f.file].rel,
                            s.line
                        )
                    });
            }
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            for c in &f.calls {
                for k in &c.callees {
                    if *k == f.key {
                        continue;
                    }
                    let Some(callee_acq) = acquires.get(k) else {
                        continue;
                    };
                    let fresh: Vec<String> = callee_acq
                        .keys()
                        .filter(|n| {
                            acquires
                                .get(&f.key)
                                .is_none_or(|m| !m.contains_key(n.as_str()))
                        })
                        .cloned()
                        .collect();
                    if fresh.is_empty() {
                        continue;
                    }
                    let wit = format!(
                        "via `{}` at {}:{}",
                        disp(fns, fn_index, k),
                        files[f.file].rel,
                        c.line
                    );
                    let m = acquires.entry(f.key).or_default();
                    for n in fresh {
                        m.insert(n, wit.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    acquires
}

/// Reports every edge that participates in a cycle of the
/// may-hold-while-acquiring graph, with the full witness path.
fn cycle_findings(
    edges: &[Edge],
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
) {
    let mut adj: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.from.clone()).or_default().push(i);
    }
    for e in edges {
        if e.from == e.to {
            emit(
                findings,
                seen,
                &e.file,
                e.line,
                Rule::LockOrder,
                &format!("cycle:{}:{}", e.from, e.to),
                format!(
                    "re-entrant acquisition: `{}` is taken again while its {} is already held \
                     in `{}`{} — self-deadlock",
                    e.to,
                    e.from_mode.word(),
                    e.holder,
                    e.note
                ),
            );
            continue;
        }
        let Some(path) = find_path(edges, &adj, &e.to, &e.from) else {
            continue;
        };
        let mut msg = format!(
            "lock-order cycle: `{}` may be acquired while the `{}` {} is held in `{}`{}",
            e.to,
            e.from,
            e.from_mode.word(),
            e.holder,
            e.note
        );
        for &pi in &path {
            let pe = &edges[pi];
            msg.push_str(&format!(
                "; the opposite order runs `{}` → `{}` at {}:{} in `{}`{}",
                pe.from, pe.to, pe.file, pe.line, pe.holder, pe.note
            ));
        }
        msg.push_str(" — two threads taking these locks in opposite orders deadlock");
        emit(
            findings,
            seen,
            &e.file,
            e.line,
            Rule::LockOrder,
            &format!("cycle:{}:{}", e.from, e.to),
            msg,
        );
    }
}

/// BFS from `start` to `target` over the lock graph; returns the edge
/// path when reachable.
fn find_path(
    edges: &[Edge],
    adj: &BTreeMap<String, Vec<usize>>,
    start: &str,
    target: &str,
) -> Option<Vec<usize>> {
    let mut parent: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(start.to_string());
    while let Some(u) = queue.pop_front() {
        let Some(outs) = adj.get(&u) else {
            continue;
        };
        for &ei in outs {
            let to = &edges[ei].to;
            if to == start || parent.contains_key(to) {
                continue;
            }
            parent.insert(to.clone(), ei);
            if to == target {
                let mut path = vec![ei];
                let mut node = edges[ei].from.clone();
                while node != start {
                    let &pe = parent.get(&node)?;
                    path.push(pe);
                    node = edges[pe].from.clone();
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(to.clone());
        }
    }
    None
}

/// Per-counter `(file, line)` sites of every `fetch_add` and `fetch_sub`
/// in the tree, for the pairing check.
type CounterTotals = BTreeMap<String, (Vec<(String, u32)>, Vec<(String, u32)>)>;

/// Counters each function (transitively) decrements — a call to such a
/// function credits a path, and a closure containing a `fetch_sub` is
/// credited at its definition site through its synthetic call edge.
fn subs_fixpoint(fns: &[FnData]) -> BTreeMap<Key, BTreeSet<String>> {
    let mut subs_of: BTreeMap<Key, BTreeSet<String>> = BTreeMap::new();
    for f in fns {
        for s in &f.subs {
            subs_of.entry(f.key).or_default().insert(s.counter.clone());
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            for c in &f.calls {
                for k in &c.callees {
                    if *k == f.key {
                        continue;
                    }
                    let fresh: Vec<String> = match subs_of.get(k) {
                        Some(cs) => cs
                            .iter()
                            .filter(|n| subs_of.get(&f.key).is_none_or(|m| !m.contains(n.as_str())))
                            .cloned()
                            .collect(),
                        None => continue,
                    };
                    if !fresh.is_empty() {
                        let m = subs_of.entry(f.key).or_default();
                        for n in fresh {
                            m.insert(n);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    subs_of
}

/// The three `in-flight-balance` checks: all-paths leak proofs with
/// witness paths, visibility ordering, and tree-wide add/sub pairing.
fn in_flight_findings(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    fn_index: &BTreeMap<Key, usize>,
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
) {
    let subs_of = subs_fixpoint(fns);
    let mut totals: CounterTotals = BTreeMap::new();
    for f in fns {
        let rel = files[f.file].rel;
        let toks = files[f.file].tokens;
        for a in &f.adds {
            totals
                .entry(a.counter.clone())
                .or_default()
                .0
                .push((rel.to_string(), a.line));
            // Credits: a direct `fetch_sub` on the same counter, or a
            // call (including a lifted closure at its definition site)
            // that transitively decrements it.
            let mut credits: BTreeSet<usize> = f
                .subs
                .iter()
                .filter(|s| s.counter == a.counter)
                .map(|s| s.tok)
                .collect();
            for c in &f.calls {
                if c.callees
                    .iter()
                    .any(|k| subs_of.get(k).is_some_and(|cs| cs.contains(&a.counter)))
                {
                    credits.insert(c.tok);
                }
            }
            if let Some(w) = f.cfg.uncredited_exit(toks, a.tok, &credits) {
                let path = w
                    .path_lines
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(" → ");
                emit(
                    findings,
                    seen,
                    rel,
                    w.exit_line,
                    Rule::InFlightBalance,
                    &format!("leak:{}", a.counter),
                    format!(
                        "`{}.fetch_add` (line {}) can escape through the `{}` early exit on \
                         line {} without a matching `fetch_sub` in `{}` — witness path: lines \
                         {path} — the in-flight count leaks and quiescence never observes zero",
                        a.counter, a.line, w.exit_kind, w.exit_line, f.display
                    ),
                );
            }
        }
        for s in &f.subs {
            totals
                .entry(s.counter.clone())
                .or_default()
                .1
                .push((rel.to_string(), s.line));
        }
        // Increment-before-visibility: nothing may publish the event on
        // a path that later reaches the first add of this function. The
        // textual `v.tok < first.tok` guard keeps loop back edges from
        // pairing iteration N's publish with iteration N+1's increment.
        if let Some(first) = f.adds.first() {
            for v in &f.vis {
                if v.tok >= first.tok {
                    continue;
                }
                let after_vis = f.cfg.reachable_after(v.tok, usize::MAX, &[]);
                if after_vis.contains(first.tok) {
                    emit(
                        findings,
                        seen,
                        rel,
                        first.line,
                        Rule::InFlightBalance,
                        &format!("vis:{}", first.counter),
                        format!(
                            "`{}.fetch_add` happens after `{}(..)` on line {} in `{}` — \
                             increment before making the event visible, or a racing \
                             quiescence check can observe zero while work is in flight",
                            first.counter, v.name, v.line, f.display
                        ),
                    );
                    break;
                }
            }
        }
    }
    let _ = fn_index;
    for (counter, (adds, subs)) in &totals {
        if !adds.is_empty() && subs.is_empty() {
            let (file, line) = &adds[0];
            emit(
                findings,
                seen,
                file,
                *line,
                Rule::InFlightBalance,
                &format!("pair:{counter}"),
                format!(
                    "`{counter}.fetch_add` has no matching `{counter}.fetch_sub` anywhere in \
                     the tree — the count can only grow, so quiescence never completes"
                ),
            );
        }
        if adds.is_empty() && !subs.is_empty() {
            let (file, line) = &subs[0];
            emit(
                findings,
                seen,
                file,
                *line,
                Rule::InFlightBalance,
                &format!("pair:{counter}"),
                format!(
                    "`{counter}.fetch_sub` has no matching `{counter}.fetch_add` anywhere in \
                     the tree — the count can go negative and quiescence reports idle early"
                ),
            );
        }
    }
}

fn disp<'a>(fns: &'a [FnData], fn_index: &BTreeMap<Key, usize>, k: &Key) -> &'a str {
    fn_index.get(k).map_or("?", |&i| fns[i].display.as_str())
}

fn push_edge(edges: &mut Vec<Edge>, seen: &mut BTreeSet<(String, String, String, u32)>, e: Edge) {
    if seen.insert((e.from.clone(), e.to.clone(), e.file.clone(), e.line)) {
        edges.push(e);
    }
}

fn emit(
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
    file: &str,
    line: u32,
    rule: Rule,
    key: &str,
    message: String,
) {
    if seen.insert((file.to_string(), line, rule, key.to_string())) {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            waiver: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        analyze(&[input])
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn blocking_calls_is_sorted_for_binary_search() {
        assert!(BLOCKING_CALLS.windows(2).all(|w| w[0] < w[1]));
        assert!(!BLOCKING_CALLS.contains(&"read"));
        assert!(!BLOCKING_CALLS.contains(&"write"));
    }

    #[test]
    fn opposite_lock_orders_two_calls_deep_are_a_cycle() {
        let src = "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P {\n\
             fn forward(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             self.take_b(); drop(g); }\n\
             fn take_b(&self) { let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); \
             let _ = h; }\n\
             fn backward(&self) { let g = self.b.lock().unwrap_or_else(|e| e.into_inner()); \
             self.take_a(); drop(g); }\n\
             fn take_a(&self) { let h = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let _ = h; }\n\
             }";
        let f = analyze_src(src);
        let cycles: Vec<_> = f.iter().filter(|x| x.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 2, "{f:?}");
        assert!(cycles[0].message.contains("lock-order cycle"), "{f:?}");
        assert!(cycles[0].message.contains("opposite order"), "{f:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P {\n\
             fn one(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             fn two(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             }";
        let f = analyze_src(src);
        assert!(!rules_of(&f).contains(&Rule::LockOrder), "{f:?}");
    }

    #[test]
    fn reentrant_lock_is_a_self_deadlock() {
        let src = "struct P { a: Mutex<u32> }\n\
             impl P {\n\
             fn twice(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.a.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             }";
        let f = analyze_src(src);
        assert!(
            f.iter()
                .any(|x| x.rule == Rule::LockOrder && x.message.contains("re-entrant")),
            "{f:?}"
        );
    }

    #[test]
    fn rwlock_read_and_write_guards_are_acquisitions() {
        // Opposite orders through RwLock guards form a cycle, and the
        // messages carry the reader/writer mode.
        let src = "struct P { a: RwLock<u32>, b: RwLock<u32> }\n\
             impl P {\n\
             fn fwd(&self) { let g = self.a.read().unwrap_or_else(|e| e.into_inner()); \
             let h = self.b.write().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             fn bwd(&self) { let g = self.b.read().unwrap_or_else(|e| e.into_inner()); \
             let h = self.a.write().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             }";
        let f = analyze_src(src);
        let cycles: Vec<_> = f.iter().filter(|x| x.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 2, "{f:?}");
        assert!(cycles[0].message.contains("read guard"), "{f:?}");
    }

    #[test]
    fn io_read_with_arguments_is_not_an_acquisition() {
        // `stream.read(&mut buf)` takes a buffer — it must not be
        // mistaken for an RwLock guard (and is no longer classified as
        // a blocking name either; `read_exact` et al. still are).
        let src = "fn pump(stream: &mut TcpStream, buf: &mut [u8]) -> usize {\n\
             stream.read(buf).unwrap_or(0)\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn rwlock_write_guard_across_blocking_is_flagged() {
        let src = "fn publish(state: &RwLock<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let mut g = state.write().unwrap_or_else(|e| e.into_inner());\n\
             g.push(v);\n\
             let _ = tx.send(v);\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert!(f[0].message.contains("write guard"), "{f:?}");
    }

    #[test]
    fn guard_across_send_is_flagged_and_drop_releases() {
        let held = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             let _ = tx.send(v);\n\
             }";
        let f = analyze_src(held);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert_eq!(f[0].line, 4);

        let dropped = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             drop(held);\n\
             let _ = tx.send(v);\n\
             }";
        assert!(analyze_src(dropped).is_empty());
    }

    #[test]
    fn guard_dropped_in_one_match_arm_stays_live_in_siblings() {
        // Path-sensitivity both ways: the arm that dropped the guard may
        // block freely; the sibling arm that still holds it may not.
        let src = "fn route(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let g = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             match v {\n\
             0 => { drop(g); let _ = tx.send(v); }\n\
             _ => { let _ = tx.send(v + 1); }\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert_eq!(f[0].line, 5, "only the still-holding sibling arm: {f:?}");
    }

    #[test]
    fn guard_bound_after_a_block_statement_still_tracks_scope() {
        // Regression: the backward walk to the statement start used to
        // swallow a preceding `if {..}` block, miss the `let`, and collapse
        // the guard's scope at the first `;` — hiding every
        // guard-across-blocking hazard in functions with an early return.
        let src = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             if v == 0 { return; }\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             let _ = tx.send(v);\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             log.lock().unwrap_or_else(|e| e.into_inner()).push(v);\n\
             let _ = tx.send(v);\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn blocking_behind_a_call_is_flagged_transitively() {
        let src = "fn outer(log: &Mutex<u32>) {\n\
             let g = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             slow();\n\
             let _ = g;\n\
             }\n\
             fn slow() { std::thread::sleep(std::time::Duration::from_secs(1)); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert!(f[0].message.contains("may block"), "{f:?}");
        assert!(f[0].message.contains("`slow`"), "{f:?}");
    }

    #[test]
    fn blocking_inside_a_closure_is_charged_to_the_holder() {
        // The closure body is lifted, but its synthetic call edge at the
        // definition site keeps the transitive blocking charge.
        let src = "fn outer(log: &Mutex<u32>, xs: Vec<u32>) {\n\
             let g = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             xs.iter().for_each(|x| { std::thread::sleep(d(*x)); });\n\
             let _ = g;\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert!(f[0].message.contains("closure"), "{f:?}");
    }

    #[test]
    fn unattributable_lock_is_reported() {
        let src = "fn odd(pair: (Mutex<u32>, u32)) { let g = (pair.0).lock(); let _ = g; }";
        let f = analyze_src(src);
        assert!(
            f.iter()
                .any(|x| x.rule == Rule::LockOrder && x.message.contains("cannot attribute")),
            "{f:?}"
        );
    }

    #[test]
    fn receiver_names_survive_index_and_call_chains() {
        let name = |src: &str| {
            let scan = lex::scan(src);
            let i = scan
                .tokens
                .iter()
                .position(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "lock"))
                .unwrap();
            receiver_name(&scan.tokens, i)
        };
        assert_eq!(
            name("fn f(&self) { self.links[i].queue.lock(); }"),
            Some("queue".to_string())
        );
        assert_eq!(
            name("fn f(&self) { self.links[idx(i)].lock(); }"),
            Some("links".to_string())
        );
        assert_eq!(
            name("fn f(&self) { self.link(i).lock(); }"),
            Some("link".to_string())
        );
        assert_eq!(
            name("fn f(&self) { self.link(i)?.queue.lock(); }"),
            Some("queue".to_string()),
            "`?` hops in the chain are skipped"
        );
        assert_eq!(
            name("fn f(&self) { self.get(i)?.lock(); }"),
            Some("get".to_string())
        );
        assert_eq!(name("fn f() { (pair.0).lock(); }"), None);
    }

    #[test]
    fn a_lock_reacquired_across_loop_iterations_is_not_reentrant() {
        // The guard dies at the iteration's end; the back edge must not
        // mark the acquisition site as live-while-held.
        let src = "fn pump(q: &Mutex<Vec<u32>>) {\n\
             loop {\n\
             let mut g = q.lock().unwrap_or_else(|e| e.into_inner());\n\
             if g.pop().is_none() { break; }\n\
             }\n\
             }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn a_temporary_guard_in_a_for_head_is_held_for_the_body_only() {
        // `for e in x.lock().iter()` holds the guard across the whole
        // loop body (temporary lifetime), but the back edge must not
        // turn the single acquisition into a re-entrant one — and a
        // blocking call in the body is still flagged.
        let clean = "fn collect(log: &Mutex<Vec<u32>>, out: &mut Vec<u32>) {\n\
             for e in log.lock().unwrap_or_else(|x| x.into_inner()).iter() {\n\
             out.push(*e);\n\
             }\n\
             }";
        assert!(analyze_src(clean).is_empty(), "{:?}", analyze_src(clean));

        let held = "fn relay(log: &Mutex<Vec<u32>>, tx: &Sender<u32>) {\n\
             for e in log.lock().unwrap_or_else(|x| x.into_inner()).iter() {\n\
             let _ = tx.send(*e);\n\
             }\n\
             }";
        let f = analyze_src(held);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
    }

    #[test]
    fn branch_dependent_leak_is_caught_with_a_witness_path() {
        // v3's textual scan saw a `fetch_sub` token *before* the second
        // `return` and called this balanced; only a path proof sees the
        // uncredited arm.
        let src = "fn send_event(in_flight: &AtomicI64, x: u8) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             match x {\n\
             0 => { in_flight.fetch_sub(1, Ordering::SeqCst); return Err(()); }\n\
             _ => return Err(()),\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert_eq!(f[0].line, 5, "{f:?}");
        assert!(f[0].message.contains("witness path"), "{f:?}");
    }

    #[test]
    fn early_return_after_fetch_add_leaks() {
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready { return Err(()); }\n\
             in_flight.fetch_sub(1, Ordering::SeqCst);\n\
             Ok(())\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("early exit"), "{f:?}");
    }

    #[test]
    fn decrement_before_the_exit_balances() {
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready { in_flight.fetch_sub(1, Ordering::SeqCst); return Err(()); }\n\
             Ok(())\n\
             }\n\
             fn other(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn closure_hidden_fetch_sub_is_credited() {
        // The decrement lives behind a closure boundary; the lifted
        // sub-function's summary credits the definition site.
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready {\n\
             let undo = || { in_flight.fetch_sub(1, Ordering::SeqCst); };\n\
             undo();\n\
             return Err(());\n\
             }\n\
             Ok(())\n\
             }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn decrement_behind_a_named_call_is_credited() {
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready { undo(in_flight); return Err(()); }\n\
             Ok(())\n\
             }\n\
             fn undo(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn try_exit_after_fetch_add_leaks() {
        let src = "fn send_event(in_flight: &AtomicI64) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             publish()?;\n\
             in_flight.fetch_sub(1, Ordering::SeqCst);\n\
             Ok(())\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert!(f[0].message.contains("`?` early exit"), "{f:?}");
    }

    #[test]
    fn visibility_before_increment_is_flagged() {
        let src = "fn send_event(in_flight: &AtomicI64, tx: &Sender<u32>) {\n\
             let _ = tx.send(7);\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             }\n\
             fn other(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert!(
            f[0].message.contains("before making the event visible"),
            "{f:?}"
        );
    }

    #[test]
    fn visibility_in_a_sibling_branch_is_not_before() {
        // v3 compared token positions; a send in the *other* branch is
        // not on any path to the increment.
        let src = "fn send_event(in_flight: &AtomicI64, tx: &Sender<u32>, x: bool) {\n\
             if x { let _ = tx.send(7); } else { in_flight.fetch_add(1, Ordering::SeqCst); }\n\
             }\n\
             fn other(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn add_without_any_sub_in_the_tree_is_flagged() {
        let src = "fn only_up(in_flight: &AtomicI64) { in_flight.fetch_add(1, Ordering::SeqCst); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert!(f[0].message.contains("no matching"), "{f:?}");
    }

    #[test]
    fn unrelated_counters_are_ignored() {
        let src = "fn tick(next: &AtomicU64) { next.fetch_add(1, Ordering::Relaxed); }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn accessor_fn_receivers_attribute_to_the_accessor_name() {
        let src = "fn install() {\n\
             let g = exclusivity().lock().unwrap_or_else(|e| e.into_inner());\n\
             let h = sink().lock().unwrap_or_else(|e| e.into_inner());\n\
             let _ = (g, h);\n\
             }";
        // One direction only: an edge, but no cycle.
        assert!(analyze_src(src).is_empty());
    }
}
