//! Concurrency-discipline analyses: lock-order cycles, guards held across
//! blocking calls, and in-flight counter balance.
//!
//! Three tree-level rule families share one pass over the ungated,
//! non-exempt workspace functions:
//!
//! - **`lock-order`** — every `.lock()` site is attributed to a *named*
//!   lock (the last field, variable or accessor-fn identifier of its
//!   receiver chain: `self.failures.lock()` → `failures`,
//!   `exclusivity().lock()` → `exclusivity`). While a guard is live, any
//!   further acquisition — directly or through a resolved workspace call
//!   that transitively locks — adds a may-hold-while-acquiring edge. A
//!   cycle in that graph means two code paths can take the same locks in
//!   opposite orders; the finding carries the full witness path. A
//!   `.lock()` whose receiver cannot be named is itself a finding:
//!   unattributable guards would silently fall out of the proof.
//! - **`guard-across-blocking`** — a live guard spanning a call whose
//!   name is in [`BLOCKING_CALLS`] (or that resolves to a workspace
//!   function which transitively makes one) is flagged: a blocked thread
//!   holds the lock and stalls every other party.
//! - **`in-flight-balance`** — for counters in [`BALANCED_COUNTERS`]:
//!   an explicit `return`/`?` exit after `fetch_add` with no intervening
//!   `fetch_sub` leaks the count (abort paths must decrement; the success
//!   path falls off the end of the block and hands the count to the
//!   deliver side); a visibility call ([`VISIBILITY_CALLS`]) before the
//!   first `fetch_add` inverts the increment-before-visibility protocol;
//!   and a counter with adds but no subs anywhere in the tree (or vice
//!   versa) can never quiesce.
//!
//! Guard scopes are tracked textually from declaration to drop or end of
//! block: `let g = x.lock()..` is live until the enclosing block closes
//! or `drop(g)`; a `.lock()` not bound to a simple `let` identifier
//! (temporaries, `let Some(g) = ..` patterns, `let _ = ..`) is live to
//! the end of its statement. Lock identity is name-based, call
//! resolution reuses the over-approximate union resolver of
//! [`crate::callgraph`], and the path checks are textual rather than
//! CFG-accurate — the limits are spelled out in DESIGN.md §6.

use crate::callgraph::{is_call, FileGraphInput, CLEAN_METHODS, KEYWORDS};
use crate::lex::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call names treated as potentially blocking when a lock guard is live.
/// Sorted — looked up by binary search.
pub const BLOCKING_CALLS: [&str; 20] = [
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "read",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "send",
    "send_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "write",
    "write_all",
    "write_vectored",
];

/// Calls that make an event visible to another thread — a balanced
/// counter must be incremented *before* any of these run, or a racing
/// quiescence check can observe zero while work is in flight.
pub const VISIBILITY_CALLS: [&str; 3] = ["send", "write", "write_all"];

/// Atomic counters whose `fetch_add`/`fetch_sub` sites must balance: the
/// live harness's quiescence invariant rests on `in_flight` reaching a
/// true zero.
pub const BALANCED_COUNTERS: [&str; 1] = ["in_flight"];

/// `(file index, item index)` — a function's identity across the pass.
type Key = (usize, usize);

/// One `.lock()` acquisition and the token range its guard is live for.
struct LockSite {
    /// Attributed lock name; `None` when the receiver cannot be named.
    name: Option<String>,
    tok: usize,
    line: u32,
    /// Exclusive token index where the guard dies (drop, `;`, or block
    /// close).
    scope_end: usize,
}

/// A call site that resolved to at least one workspace function.
struct CallSite {
    tok: usize,
    line: u32,
    name: String,
    callees: Vec<Key>,
}

/// A call whose *name* is in [`BLOCKING_CALLS`], resolved or not.
struct BlockingSite {
    tok: usize,
    line: u32,
    name: String,
}

/// A `fetch_add`/`fetch_sub` on a balanced counter.
struct CounterSite {
    counter: String,
    tok: usize,
    line: u32,
}

/// Everything the analyses need from one function body.
struct FnData {
    key: Key,
    file: usize,
    display: String,
    body: (usize, usize),
    locks: Vec<LockSite>,
    calls: Vec<CallSite>,
    blocking: Vec<BlockingSite>,
    adds: Vec<CounterSite>,
    subs: Vec<CounterSite>,
}

/// A may-hold-while-acquiring edge: `to` is (possibly transitively)
/// acquired while a guard of `from` is live.
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    holder: String,
    /// `" via `callee` (..)"` for edges through a call; empty for direct
    /// nested acquisitions.
    note: String,
}

/// Name-resolution tables over the same function set the call-graph pass
/// uses (ungated, non-exempt, with a body).
struct Tables {
    by_qual: BTreeMap<(String, String), Vec<Key>>,
    by_name: BTreeMap<String, Vec<Key>>,
    free_by_name: BTreeMap<String, Vec<Key>>,
}

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Runs the concurrency pass over the scanned files.
pub fn analyze(files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let tables = build_tables(files);
    let mut fns: Vec<FnData> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.exempt {
            continue;
        }
        for (ii, item) in f.items.fns.iter().enumerate() {
            if item.gated || item.body.is_none() {
                continue;
            }
            fns.push(scan_fn(files, &tables, fi, ii));
        }
    }
    let mut fn_index: BTreeMap<Key, usize> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        fn_index.insert(f.key, i);
    }

    let may_block = may_block_fixpoint(files, &fns, &fn_index);
    let acquires = acquires_fixpoint(files, &fns, &fn_index);

    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<(String, u32, Rule, String)> = BTreeSet::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_seen: BTreeSet<(String, String, String, u32)> = BTreeSet::new();

    for f in &fns {
        let rel = files[f.file].rel;
        for s in &f.locks {
            let Some(from) = &s.name else {
                emit(
                    &mut findings,
                    &mut seen,
                    rel,
                    s.line,
                    Rule::LockOrder,
                    "anon",
                    format!(
                        "cannot attribute this `.lock()` to a named lock in `{}` — end the \
                         receiver chain in a field, variable or accessor fn, or waive with \
                         `allow(lock-order)`",
                        f.display
                    ),
                );
                continue;
            };
            // Direct nested acquisitions inside the guard scope.
            for s2 in &f.locks {
                if s2.tok > s.tok && s2.tok < s.scope_end {
                    if let Some(to) = &s2.name {
                        push_edge(
                            &mut edges,
                            &mut edge_seen,
                            Edge {
                                from: from.clone(),
                                to: to.clone(),
                                file: rel.to_string(),
                                line: s2.line,
                                holder: f.display.clone(),
                                note: String::new(),
                            },
                        );
                    }
                }
            }
            // Acquisitions and blocking behind calls inside the scope.
            let mut blocked_lines: BTreeSet<u32> = BTreeSet::new();
            for b in &f.blocking {
                if b.tok > s.tok && b.tok < s.scope_end {
                    blocked_lines.insert(b.line);
                    emit(
                        &mut findings,
                        &mut seen,
                        rel,
                        b.line,
                        Rule::GuardBlocking,
                        &format!("{from}:{}", b.name),
                        format!(
                            "`{}(..)` can block while the `{from}` guard (acquired line {}) is \
                             live in `{}` — a blocked thread holds the lock; drop or scope the \
                             guard first",
                            b.name, s.line, f.display
                        ),
                    );
                }
            }
            for c in &f.calls {
                if c.tok <= s.tok || c.tok >= s.scope_end {
                    continue;
                }
                for k in &c.callees {
                    if let Some(acq) = acquires.get(k) {
                        for (to, wit) in acq {
                            push_edge(
                                &mut edges,
                                &mut edge_seen,
                                Edge {
                                    from: from.clone(),
                                    to: to.clone(),
                                    file: rel.to_string(),
                                    line: c.line,
                                    holder: f.display.clone(),
                                    note: format!(" via `{}` ({wit})", disp(&fns, &fn_index, k)),
                                },
                            );
                        }
                    }
                }
                if !blocked_lines.contains(&c.line) {
                    if let Some((k, wit)) = c
                        .callees
                        .iter()
                        .find_map(|k| may_block.get(k).map(|w| (k, w)))
                    {
                        blocked_lines.insert(c.line);
                        emit(
                            &mut findings,
                            &mut seen,
                            rel,
                            c.line,
                            Rule::GuardBlocking,
                            &format!("{from}:{}", c.name),
                            format!(
                                "`{}(..)` resolves to `{}` which may block ({wit}) while the \
                                 `{from}` guard (acquired line {}) is live in `{}`",
                                c.name,
                                disp(&fns, &fn_index, k),
                                s.line,
                                f.display
                            ),
                        );
                    }
                }
            }
        }
    }

    cycle_findings(&edges, &mut findings, &mut seen);
    in_flight_findings(files, &fns, &mut findings, &mut seen);
    findings
}

fn build_tables(files: &[FileGraphInput<'_>]) -> Tables {
    let mut t = Tables {
        by_qual: BTreeMap::new(),
        by_name: BTreeMap::new(),
        free_by_name: BTreeMap::new(),
    };
    for (fi, f) in files.iter().enumerate() {
        if f.exempt {
            continue;
        }
        for (ii, item) in f.items.fns.iter().enumerate() {
            if item.gated || item.body.is_none() {
                continue;
            }
            let id = (fi, ii);
            match &item.owner {
                Some(owner) => t
                    .by_qual
                    .entry((owner.clone(), item.name.clone()))
                    .or_default()
                    .push(id),
                None => t
                    .free_by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(id),
            }
            t.by_name.entry(item.name.clone()).or_default().push(id);
        }
    }
    t
}

/// Scans one function body for lock sites, resolved calls, blocking-name
/// calls and balanced-counter touches.
fn scan_fn(files: &[FileGraphInput<'_>], tables: &Tables, fi: usize, ii: usize) -> FnData {
    let file = &files[fi];
    let item = &file.items.fns[ii];
    let (start, end) = item.body.unwrap_or((0, 0));
    let end = end.min(file.tokens.len());
    let toks = file.tokens;
    let mut data = FnData {
        key: (fi, ii),
        file: fi,
        display: item.display(),
        body: (start, end),
        locks: Vec::new(),
        calls: Vec::new(),
        blocking: Vec::new(),
        adds: Vec::new(),
        subs: Vec::new(),
    };

    let mut i = start;
    while i < end {
        let Some(name) = ident(toks, i) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        // Macro invocation: skip the head, the body tokens still scan.
        if punct(toks, i + 1) == Some("!")
            && matches!(punct(toks, i + 2), Some("(") | Some("[") | Some("{"))
        {
            i += 2;
            continue;
        }
        if KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        if !is_call(toks, i, end) {
            i += 1;
            continue;
        }

        // `.lock()` — an acquisition site with a guard scope.
        if name == "lock" && punct(toks, i.wrapping_sub(1)) == Some(".") && i >= 1 {
            let lock_name = receiver_name(toks, i);
            let scope_end = guard_scope_end(toks, start, end, i);
            data.locks.push(LockSite {
                name: lock_name,
                tok: i,
                line,
                scope_end,
            });
            i += 1;
            continue;
        }

        // Balanced-counter touches.
        if (name == "fetch_add" || name == "fetch_sub")
            && punct(toks, i.wrapping_sub(1)) == Some(".")
            && i >= 1
        {
            if let Some(recv) = receiver_name(toks, i) {
                if BALANCED_COUNTERS.contains(&recv.as_str()) {
                    let site = CounterSite {
                        counter: recv,
                        tok: i,
                        line,
                    };
                    if name == "fetch_add" {
                        data.adds.push(site);
                    } else {
                        data.subs.push(site);
                    }
                }
            }
            i += 1;
            continue;
        }

        if BLOCKING_CALLS.binary_search(&name).is_ok() {
            data.blocking.push(BlockingSite {
                tok: i,
                line,
                name: name.to_string(),
            });
        }

        // Workspace resolution, mirroring the call-graph pass.
        let prev = punct(toks, i.wrapping_sub(1));
        let self_recv = i >= 2 && ident(toks, i - 2) == Some("self");
        let callees: Vec<Key> = match prev {
            Some(".") if i >= 1 => {
                if !self_recv && CLEAN_METHODS.binary_search(&name).is_ok() {
                    Vec::new()
                } else if self_recv {
                    item.owner
                        .as_ref()
                        .and_then(|o| tables.by_qual.get(&(o.clone(), name.to_string())))
                        .or_else(|| tables.by_name.get(name))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    tables.by_name.get(name).cloned().unwrap_or_default()
                }
            }
            Some("::") if i >= 2 => match ident(toks, i - 2) {
                Some("Self") => item
                    .owner
                    .as_ref()
                    .and_then(|o| tables.by_qual.get(&(o.clone(), name.to_string())))
                    .cloned()
                    .unwrap_or_default(),
                Some(q) => tables
                    .by_qual
                    .get(&(q.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default(),
                None => Vec::new(),
            },
            _ => tables.free_by_name.get(name).cloned().unwrap_or_default(),
        };
        if !callees.is_empty() {
            data.calls.push(CallSite {
                tok: i,
                line,
                name: name.to_string(),
                callees,
            });
        }
        i += 1;
    }
    data
}

/// The last named identifier of the receiver chain ending at the `.`
/// before token `i`: `self.failures.lock` → `failures`,
/// `exclusivity().lock` → `exclusivity`, `locks[i].lock` → `locks`.
fn receiver_name(toks: &[Token], i: usize) -> Option<String> {
    if i < 2 {
        return None;
    }
    let mut j = i - 2; // the token before the `.`
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => return Some(s.clone()),
            Some(TokenKind::Punct(p)) if p == ")" || p == "]" => {
                let (open, close) = if p == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0i32;
                loop {
                    match punct(toks, j) {
                        Some(x) if x == close => depth += 1,
                        Some(x) if x == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                }
                // `j` is at the opening bracket; the name precedes it.
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            _ => return None,
        }
    }
}

/// Where the guard born at the `.lock()` at token `i` dies (exclusive).
///
/// A simple `let [mut] name = ..` binding is live to `drop(name)` or the
/// enclosing block close; anything else (temporaries, pattern bindings,
/// `let _`) is live to the end of its statement.
fn guard_scope_end(toks: &[Token], body_start: usize, body_end: usize, i: usize) -> usize {
    // Walk back to the start of the enclosing statement.
    let mut depth = 0i32;
    let mut j = i;
    let stmt_start = loop {
        if j == body_start {
            break j;
        }
        j -= 1;
        match punct(toks, j) {
            Some("}") if depth == 0 => {
                // A `}` at statement depth closes the *previous* statement's
                // block (`if {..}`, `match {..}`, a loop body): it cannot be
                // part of this statement's receiver chain, so the statement
                // starts right after it. Without this, the walk swallows the
                // whole preceding block, `let` is never seen, and the guard's
                // scope silently collapses at the first `;`.
                break j + 1;
            }
            Some(")") | Some("]") | Some("}") => depth += 1,
            Some("(") | Some("[") | Some("{") => {
                if depth == 0 {
                    break j + 1;
                }
                depth -= 1;
            }
            Some(";") | Some(",") if depth == 0 => break j + 1,
            _ => {}
        }
    };
    let bound_var = if ident(toks, stmt_start) == Some("let") {
        let mut k = stmt_start + 1;
        if ident(toks, k) == Some("mut") {
            k += 1;
        }
        match ident(toks, k) {
            Some(v)
                if v != "_"
                    && !KEYWORDS.contains(&v)
                    && matches!(punct(toks, k + 1), Some("=") | Some(":")) =>
            {
                Some(v.to_string())
            }
            _ => None,
        }
    } else {
        None
    };

    let mut depth = 0i32;
    let mut j = i;
    while j < body_end {
        match punct(toks, j) {
            Some("(") | Some("[") | Some("{") => depth += 1,
            Some(")") | Some("]") | Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(";") | Some(",") if depth == 0 && bound_var.is_none() => return j,
            _ => {}
        }
        if let Some(var) = &bound_var {
            if ident(toks, j) == Some("drop")
                && punct(toks, j + 1) == Some("(")
                && ident(toks, j + 2) == Some(var)
                && punct(toks, j + 3) == Some(")")
            {
                return j;
            }
        }
        j += 1;
    }
    body_end
}

/// End of the innermost block enclosing token `i` (exclusive).
fn brace_scope_end(toks: &[Token], i: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < body_end {
        match punct(toks, j) {
            Some("(") | Some("[") | Some("{") => depth += 1,
            Some(")") | Some("]") | Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// Functions that may block, with a witness: seeded by direct
/// blocking-name calls, propagated over resolved call edges.
fn may_block_fixpoint(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    fn_index: &BTreeMap<Key, usize>,
) -> BTreeMap<Key, String> {
    let mut may_block: BTreeMap<Key, String> = BTreeMap::new();
    for f in fns {
        if let Some(b) = f.blocking.first() {
            may_block.insert(
                f.key,
                format!("calls `{}` at {}:{}", b.name, files[f.file].rel, b.line),
            );
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            if may_block.contains_key(&f.key) {
                continue;
            }
            'calls: for c in &f.calls {
                for k in &c.callees {
                    if may_block.contains_key(k) {
                        may_block.insert(
                            f.key,
                            format!(
                                "via `{}` at {}:{}",
                                disp(fns, fn_index, k),
                                files[f.file].rel,
                                c.line
                            ),
                        );
                        changed = true;
                        break 'calls;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    may_block
}

/// Lock names each function may acquire (transitively), with witnesses.
fn acquires_fixpoint(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    fn_index: &BTreeMap<Key, usize>,
) -> BTreeMap<Key, BTreeMap<String, String>> {
    let mut acquires: BTreeMap<Key, BTreeMap<String, String>> = BTreeMap::new();
    for f in fns {
        for s in &f.locks {
            if let Some(n) = &s.name {
                acquires
                    .entry(f.key)
                    .or_default()
                    .entry(n.clone())
                    .or_insert_with(|| format!("locks `{n}` at {}:{}", files[f.file].rel, s.line));
            }
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            for c in &f.calls {
                for k in &c.callees {
                    if *k == f.key {
                        continue;
                    }
                    let Some(callee_acq) = acquires.get(k) else {
                        continue;
                    };
                    let fresh: Vec<String> = callee_acq
                        .keys()
                        .filter(|n| {
                            acquires
                                .get(&f.key)
                                .is_none_or(|m| !m.contains_key(n.as_str()))
                        })
                        .cloned()
                        .collect();
                    if fresh.is_empty() {
                        continue;
                    }
                    let wit = format!(
                        "via `{}` at {}:{}",
                        disp(fns, fn_index, k),
                        files[f.file].rel,
                        c.line
                    );
                    let m = acquires.entry(f.key).or_default();
                    for n in fresh {
                        m.insert(n, wit.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    acquires
}

/// Reports every edge that participates in a cycle of the
/// may-hold-while-acquiring graph, with the full witness path.
fn cycle_findings(
    edges: &[Edge],
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
) {
    let mut adj: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.from.clone()).or_default().push(i);
    }
    for e in edges {
        if e.from == e.to {
            emit(
                findings,
                seen,
                &e.file,
                e.line,
                Rule::LockOrder,
                &format!("cycle:{}:{}", e.from, e.to),
                format!(
                    "re-entrant acquisition: `{}` is locked again while already held in \
                     `{}`{} — self-deadlock",
                    e.to, e.holder, e.note
                ),
            );
            continue;
        }
        let Some(path) = find_path(edges, &adj, &e.to, &e.from) else {
            continue;
        };
        let mut msg = format!(
            "lock-order cycle: `{}` may be acquired while `{}` is held in `{}`{}",
            e.to, e.from, e.holder, e.note
        );
        for &pi in &path {
            let pe = &edges[pi];
            msg.push_str(&format!(
                "; the opposite order runs `{}` → `{}` at {}:{} in `{}`{}",
                pe.from, pe.to, pe.file, pe.line, pe.holder, pe.note
            ));
        }
        msg.push_str(" — two threads taking these locks in opposite orders deadlock");
        emit(
            findings,
            seen,
            &e.file,
            e.line,
            Rule::LockOrder,
            &format!("cycle:{}:{}", e.from, e.to),
            msg,
        );
    }
}

/// BFS from `start` to `target` over the lock graph; returns the edge
/// path when reachable.
fn find_path(
    edges: &[Edge],
    adj: &BTreeMap<String, Vec<usize>>,
    start: &str,
    target: &str,
) -> Option<Vec<usize>> {
    let mut parent: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(start.to_string());
    while let Some(u) = queue.pop_front() {
        let Some(outs) = adj.get(&u) else {
            continue;
        };
        for &ei in outs {
            let to = &edges[ei].to;
            if to == start || parent.contains_key(to) {
                continue;
            }
            parent.insert(to.clone(), ei);
            if to == target {
                let mut path = vec![ei];
                let mut node = edges[ei].from.clone();
                while node != start {
                    let &pe = parent.get(&node)?;
                    path.push(pe);
                    node = edges[pe].from.clone();
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(to.clone());
        }
    }
    None
}

/// Per-counter `(file, line)` sites of every `fetch_add` and `fetch_sub`
/// in the tree, for the pairing check.
type CounterTotals = BTreeMap<String, (Vec<(String, u32)>, Vec<(String, u32)>)>;

/// The three `in-flight-balance` checks: early-exit leaks, visibility
/// ordering, and tree-wide add/sub pairing.
fn in_flight_findings(
    files: &[FileGraphInput<'_>],
    fns: &[FnData],
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
) {
    let mut totals: CounterTotals = BTreeMap::new();
    for f in fns {
        let rel = files[f.file].rel;
        let toks = files[f.file].tokens;
        for a in &f.adds {
            totals
                .entry(a.counter.clone())
                .or_default()
                .0
                .push((rel.to_string(), a.line));
            let end = brace_scope_end(toks, a.tok, f.body.1);
            let mut j = a.tok + 1;
            while j < end {
                let exit = match &toks[j].kind {
                    TokenKind::Ident(s) => s == "return",
                    TokenKind::Punct(p) => p == "?",
                    _ => false,
                };
                if exit {
                    let balanced = f
                        .subs
                        .iter()
                        .any(|s| s.counter == a.counter && s.tok > a.tok && s.tok < j);
                    if !balanced {
                        emit(
                            findings,
                            seen,
                            rel,
                            toks[j].line,
                            Rule::InFlightBalance,
                            &format!("leak:{}", a.counter),
                            format!(
                                "`{}.fetch_add` (line {}) escapes through this early exit \
                                 without a matching `fetch_sub` in `{}` — the in-flight count \
                                 leaks and quiescence never observes zero",
                                a.counter, a.line, f.display
                            ),
                        );
                        break;
                    }
                }
                j += 1;
            }
        }
        for s in &f.subs {
            totals
                .entry(s.counter.clone())
                .or_default()
                .1
                .push((rel.to_string(), s.line));
        }
        // Increment-before-visibility: nothing may publish the event
        // before the first add of this function.
        if let Some(first) = f.adds.first() {
            let mut j = f.body.0;
            while j < first.tok {
                if let Some(n) = ident(toks, j) {
                    if VISIBILITY_CALLS.contains(&n)
                        && j >= 1
                        && punct(toks, j - 1) == Some(".")
                        && is_call(toks, j, f.body.1)
                    {
                        emit(
                            findings,
                            seen,
                            rel,
                            first.line,
                            Rule::InFlightBalance,
                            &format!("vis:{}", first.counter),
                            format!(
                                "`{}.fetch_add` happens after `{n}(..)` on line {} in `{}` — \
                                 increment before making the event visible, or a racing \
                                 quiescence check can observe zero while work is in flight",
                                first.counter, toks[j].line, f.display
                            ),
                        );
                        break;
                    }
                }
                j += 1;
            }
        }
    }
    for (counter, (adds, subs)) in &totals {
        if !adds.is_empty() && subs.is_empty() {
            let (file, line) = &adds[0];
            emit(
                findings,
                seen,
                file,
                *line,
                Rule::InFlightBalance,
                &format!("pair:{counter}"),
                format!(
                    "`{counter}.fetch_add` has no matching `{counter}.fetch_sub` anywhere in \
                     the tree — the count can only grow, so quiescence never completes"
                ),
            );
        }
        if adds.is_empty() && !subs.is_empty() {
            let (file, line) = &subs[0];
            emit(
                findings,
                seen,
                file,
                *line,
                Rule::InFlightBalance,
                &format!("pair:{counter}"),
                format!(
                    "`{counter}.fetch_sub` has no matching `{counter}.fetch_add` anywhere in \
                     the tree — the count can go negative and quiescence reports idle early"
                ),
            );
        }
    }
}

fn disp<'a>(fns: &'a [FnData], fn_index: &BTreeMap<Key, usize>, k: &Key) -> &'a str {
    fn_index.get(k).map_or("?", |&i| fns[i].display.as_str())
}

fn push_edge(edges: &mut Vec<Edge>, seen: &mut BTreeSet<(String, String, String, u32)>, e: Edge) {
    if seen.insert((e.from.clone(), e.to.clone(), e.file.clone(), e.line)) {
        edges.push(e);
    }
}

fn emit(
    findings: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, u32, Rule, String)>,
    file: &str,
    line: u32,
    rule: Rule,
    key: &str,
    message: String,
) {
    if seen.insert((file.to_string(), line, rule, key.to_string())) {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            waiver: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        analyze(&[input])
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn blocking_calls_is_sorted_for_binary_search() {
        assert!(BLOCKING_CALLS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn opposite_lock_orders_two_calls_deep_are_a_cycle() {
        let src = "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P {\n\
             fn forward(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             self.take_b(); drop(g); }\n\
             fn take_b(&self) { let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); \
             let _ = h; }\n\
             fn backward(&self) { let g = self.b.lock().unwrap_or_else(|e| e.into_inner()); \
             self.take_a(); drop(g); }\n\
             fn take_a(&self) { let h = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let _ = h; }\n\
             }";
        let f = analyze_src(src);
        let cycles: Vec<_> = f.iter().filter(|x| x.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 2, "{f:?}");
        assert!(cycles[0].message.contains("lock-order cycle"), "{f:?}");
        assert!(cycles[0].message.contains("opposite order"), "{f:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P {\n\
             fn one(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             fn two(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.b.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             }";
        let f = analyze_src(src);
        assert!(!rules_of(&f).contains(&Rule::LockOrder), "{f:?}");
    }

    #[test]
    fn reentrant_lock_is_a_self_deadlock() {
        let src = "struct P { a: Mutex<u32> }\n\
             impl P {\n\
             fn twice(&self) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); \
             let h = self.a.lock().unwrap_or_else(|e| e.into_inner()); let _ = (g, h); }\n\
             }";
        let f = analyze_src(src);
        assert!(
            f.iter()
                .any(|x| x.rule == Rule::LockOrder && x.message.contains("re-entrant")),
            "{f:?}"
        );
    }

    #[test]
    fn guard_across_send_is_flagged_and_drop_releases() {
        let held = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             let _ = tx.send(v);\n\
             }";
        let f = analyze_src(held);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert_eq!(f[0].line, 4);

        let dropped = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             drop(held);\n\
             let _ = tx.send(v);\n\
             }";
        assert!(analyze_src(dropped).is_empty());
    }

    #[test]
    fn guard_bound_after_a_block_statement_still_tracks_scope() {
        // Regression: the backward walk to the statement start used to
        // swallow a preceding `if {..}` block, miss the `let`, and collapse
        // the guard's scope at the first `;` — hiding every
        // guard-across-blocking hazard in functions with an early return.
        let src = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             if v == 0 { return; }\n\
             let mut held = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             held.push(v);\n\
             let _ = tx.send(v);\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn publish(log: &Mutex<Vec<u32>>, tx: &Sender<u32>, v: u32) {\n\
             log.lock().unwrap_or_else(|e| e.into_inner()).push(v);\n\
             let _ = tx.send(v);\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn blocking_behind_a_call_is_flagged_transitively() {
        let src = "fn outer(log: &Mutex<u32>) {\n\
             let g = log.lock().unwrap_or_else(|e| e.into_inner());\n\
             slow();\n\
             let _ = g;\n\
             }\n\
             fn slow() { std::thread::sleep(std::time::Duration::from_secs(1)); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardBlocking], "{f:?}");
        assert!(f[0].message.contains("may block"), "{f:?}");
        assert!(f[0].message.contains("`slow`"), "{f:?}");
    }

    #[test]
    fn unattributable_lock_is_reported() {
        let src = "fn odd(pair: (Mutex<u32>, u32)) { let g = (pair.0).lock(); let _ = g; }";
        let f = analyze_src(src);
        assert!(
            f.iter()
                .any(|x| x.rule == Rule::LockOrder && x.message.contains("cannot attribute")),
            "{f:?}"
        );
    }

    #[test]
    fn early_return_after_fetch_add_leaks() {
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready { return Err(()); }\n\
             in_flight.fetch_sub(1, Ordering::SeqCst);\n\
             Ok(())\n\
             }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("early exit"), "{f:?}");
    }

    #[test]
    fn decrement_before_the_exit_balances() {
        let src = "fn send_event(in_flight: &AtomicI64, ready: bool) -> Result<(), ()> {\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             if !ready { in_flight.fetch_sub(1, Ordering::SeqCst); return Err(()); }\n\
             Ok(())\n\
             }\n\
             fn other(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn visibility_before_increment_is_flagged() {
        let src = "fn send_event(in_flight: &AtomicI64, tx: &Sender<u32>) {\n\
             let _ = tx.send(7);\n\
             in_flight.fetch_add(1, Ordering::SeqCst);\n\
             }\n\
             fn other(in_flight: &AtomicI64) { in_flight.fetch_sub(1, Ordering::SeqCst); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert!(
            f[0].message.contains("before making the event visible"),
            "{f:?}"
        );
    }

    #[test]
    fn add_without_any_sub_in_the_tree_is_flagged() {
        let src = "fn only_up(in_flight: &AtomicI64) { in_flight.fetch_add(1, Ordering::SeqCst); }";
        let f = analyze_src(src);
        assert_eq!(rules_of(&f), vec![Rule::InFlightBalance], "{f:?}");
        assert!(f[0].message.contains("no matching"), "{f:?}");
    }

    #[test]
    fn unrelated_counters_are_ignored() {
        let src = "fn tick(next: &AtomicU64) { next.fetch_add(1, Ordering::Relaxed); }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn accessor_fn_receivers_attribute_to_the_accessor_name() {
        let src = "fn install() {\n\
             let g = exclusivity().lock().unwrap_or_else(|e| e.into_inner());\n\
             let h = sink().lock().unwrap_or_else(|e| e.into_inner());\n\
             let _ = (g, h);\n\
             }";
        // One direction only: an edge, but no cycle.
        assert!(analyze_src(src).is_empty());
    }
}
