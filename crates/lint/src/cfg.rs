//! Intra-procedural control-flow graphs over the token substrate.
//!
//! The v3 concurrency families scanned function bodies as flat token
//! ranges, which made every path property (counter balance, guard
//! liveness) a *textual* approximation. This module recovers a real —
//! if deliberately small — CFG from the same [`crate::lex`] token
//! stream the rest of the linter uses:
//!
//! - **Basic blocks** split at `if`/`else`, `match` arms, `loop` /
//!   `while` / `for`, `return`, `?`, `break` and `continue`. Bare
//!   braced blocks (including struct literals and `unsafe {}`) are
//!   transparent: their interior threads through the current block.
//! - **`?`** adds an early edge to the function exit *and* a
//!   fall-through edge, so "every path reaches X" checks see the error
//!   path that the textual scan could only guess at.
//! - **Closures** (and the rare nested `fn`) are *lifted*: their body
//!   tokens leave the enclosing CFG entirely and are reported in
//!   [`Cfg::lifted`] so the caller can analyze them as sub-functions
//!   wired into the call graph at the definition site. A single
//!   representative token (the opening `|` / `move` / `fn`) stays in
//!   the enclosing block so lifted bodies still occupy a path position.
//! - **Exit edges carry a kind**: `Return` and `Try` mark explicit
//!   early exits, `Seq` marks the fall-through off the end of the body
//!   — the in-flight balance rule treats fall-through as the designated
//!   hand-off to the deliver side and early exits as paths that must
//!   credit a decrement.
//!
//! Known approximations (all spelled out in DESIGN.md §6): labeled
//! `break`/`continue` bind to the innermost loop; `match` *pattern*
//! tokens (including guards) are appended raw to the arm's first block
//! without closure lifting; an `if`/`match` nested inside a condition's
//! parenthesized sub-expression is threaded linearly rather than
//! branched. Each is an over-approximation that keeps every token
//! observable to the passes.

use crate::lex::{Token, TokenKind};
use std::collections::BTreeSet;

/// What an edge means for path classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary control flow (including loop back edges and the final
    /// fall-through into the exit block).
    Seq,
    /// An explicit `return` statement reaching the function exit.
    Return,
    /// The early-return half of a `?` operator.
    Try,
}

/// A basic block: ordered token spans plus successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Half-open token ranges owned by this block, in source order.
    pub spans: Vec<(usize, usize)>,
    /// Successor block indices with the edge kind.
    pub succs: Vec<(usize, EdgeKind)>,
}

/// A closure or nested `fn` body lifted out of the enclosing CFG.
#[derive(Debug)]
pub struct Lifted {
    /// Token index of the representative token left in the enclosing
    /// block (the opening `|`, `move`, or `fn`).
    pub tok: usize,
    /// 1-based line of the definition.
    pub line: u32,
    /// Token range of the lifted body (exclusive of delimiters).
    pub body: (usize, usize),
    /// `true` for closures, `false` for nested `fn` items.
    pub is_closure: bool,
}

/// One `if`/`while` condition with its then-branch, for gate checks.
#[derive(Debug)]
pub struct Branch {
    /// Token range of the condition expression.
    pub cond: (usize, usize),
    /// Entry block of the then-branch.
    pub then_entry: usize,
    /// Token range of the then-branch body (inside its braces).
    pub then_range: (usize, usize),
}

/// Tokens reachable from a point, with a membership query.
pub struct Reach {
    base: usize,
    set: Vec<bool>,
}

impl Reach {
    /// Whether token index `t` is reachable.
    pub fn contains(&self, t: usize) -> bool {
        t >= self.base && t - self.base < self.set.len() && self.set[t - self.base]
    }
}

/// A path from an increment to an early exit with no credit on it.
#[derive(Debug)]
pub struct LeakWitness {
    /// First-token line of each block the witness path traverses.
    pub path_lines: Vec<u32>,
    /// Line of the early exit itself.
    pub exit_line: u32,
    /// `"return"` or `"?"`.
    pub exit_kind: &'static str,
}

/// The CFG of one function (or lifted closure) body.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks; index 0 is the entry, [`Cfg::exit`] the virtual exit.
    pub blocks: Vec<Block>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Virtual exit block index (always 1, no spans).
    pub exit: usize,
    /// Closure / nested-fn bodies lifted out of this CFG.
    pub lifted: Vec<Lifted>,
    /// `if`/`while` conditions with their then-branches.
    pub branches: Vec<Branch>,
    /// Token ranges of `loop`/`while`/`for` bodies (for loop-position
    /// queries).
    pub loop_bodies: Vec<(usize, usize)>,
    body: (usize, usize),
    owner: Vec<u32>,
}

const NO_BLOCK: u32 = u32::MAX;

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Index of the `}` matching the `{` at `open` (brace depth only —
/// literals are already excluded by the lexer); `end` when unbalanced.
fn brace_match(toks: &[Token], open: usize, end: usize) -> usize {
    let mut d = 0i32;
    let mut i = open;
    while i < end {
        match punct(toks, i) {
            Some("{") => d += 1,
            Some("}") => {
                d -= 1;
                if d == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// First `{` (or statement-terminating `;`) at paren/bracket depth zero
/// from `from` — the body opener of an `if`/`while`/`for`/`match`
/// header. Skips `unsafe { .. }` operands inside the condition.
fn find_body_open(toks: &[Token], from: usize, end: usize) -> usize {
    let mut d = 0i32;
    let mut i = from;
    while i < end {
        match punct(toks, i) {
            Some("(") | Some("[") => d += 1,
            Some(")") | Some("]") => d -= 1,
            Some(";") if d <= 0 => return i,
            Some("{") if d <= 0 => {
                if i > from && ident(toks, i - 1) == Some("unsafe") {
                    i = brace_match(toks, i, end) + 1;
                    continue;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// End of the statement starting after a `return`/`break`/`continue`:
/// the `;` or `,` at depth zero, or the index of an unmatched closer.
fn stmt_end(toks: &[Token], from: usize, end: usize) -> usize {
    let mut d = 0i32;
    let mut i = from;
    while i < end {
        match punct(toks, i) {
            Some("(") | Some("[") | Some("{") => d += 1,
            Some(")") | Some("]") | Some("}") => {
                if d == 0 {
                    return i;
                }
                d -= 1;
            }
            Some(";") | Some(",") if d == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

/// Whether token `i` starts a closure (`|..|` or `move |..|`), given
/// that the current expression region began at `region_start`.
fn closure_start(toks: &[Token], i: usize, region_start: usize) -> bool {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) if s == "move" => matches!(punct(toks, i + 1), Some("|")),
        Some(TokenKind::Punct(p)) if p == "|" => {
            if i == region_start {
                return true;
            }
            match toks.get(i - 1).map(|t| &t.kind) {
                Some(TokenKind::Punct(q)) => {
                    matches!(q.as_str(), "(" | "," | "=" | "{" | ";" | ":" | "&" | ">")
                }
                Some(TokenKind::Ident(s)) => matches!(s.as_str(), "return" | "else" | "move"),
                _ => false,
            }
        }
        _ => false,
    }
}

struct LoopCtx {
    head: usize,
    after: usize,
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    exit: usize,
    lifted: Vec<Lifted>,
    branches: Vec<Branch>,
    loop_bodies: Vec<(usize, usize)>,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if !self.blocks[from].succs.contains(&(to, kind)) {
            self.blocks[from].succs.push((to, kind));
        }
    }

    fn push_tok(&mut self, b: usize, i: usize) {
        let blk = &mut self.blocks[b];
        match blk.spans.last_mut() {
            Some(s) if s.1 == i => s.1 = i + 1,
            _ => blk.spans.push((i, i + 1)),
        }
    }

    /// Lifts the closure starting at `i`; returns the index just past
    /// its full extent. The representative token `i` must already be
    /// pushed by the caller.
    fn lift_closure(&mut self, i: usize, end: usize) -> usize {
        let line = self.toks[i].line;
        let bar = if ident(self.toks, i) == Some("move") {
            i + 1
        } else {
            i
        };
        let params_end = if punct(self.toks, bar + 1) == Some("|") {
            bar + 1
        } else {
            let mut d = 0i32;
            let mut j = bar + 1;
            loop {
                if j >= end {
                    break j;
                }
                match punct(self.toks, j) {
                    Some("(") | Some("[") => d += 1,
                    Some(")") | Some("]") => d -= 1,
                    Some("|") if d == 0 => break j,
                    _ => {}
                }
                j += 1;
            }
        };
        let mut bs = params_end + 1;
        // Explicit return type: `|x| -> T { .. }` — skip to the brace.
        if punct(self.toks, bs) == Some("-") && punct(self.toks, bs + 1) == Some(">") {
            while bs < end && punct(self.toks, bs) != Some("{") {
                bs += 1;
            }
        }
        let (body, extent) = if punct(self.toks, bs) == Some("{") {
            let close = brace_match(self.toks, bs, end);
            ((bs + 1, close), (close + 1).min(end))
        } else {
            let e = stmt_end(self.toks, bs, end);
            ((bs, e), e)
        };
        self.lifted.push(Lifted {
            tok: i,
            line,
            body,
            is_closure: true,
        });
        extent
    }

    /// Appends a straight-line expression range to `cur`, lifting
    /// closures and splitting on `?`; returns the (possibly new)
    /// current block.
    fn append_expr(&mut self, mut cur: usize, from: usize, to: usize) -> usize {
        let mut i = from;
        while i < to {
            if closure_start(self.toks, i, from) {
                self.push_tok(cur, i);
                i = self.lift_closure(i, to);
                continue;
            }
            if punct(self.toks, i) == Some("?") {
                self.push_tok(cur, i);
                self.edge(cur, self.exit, EdgeKind::Try);
                let nb = self.new_block();
                self.edge(cur, nb, EdgeKind::Seq);
                cur = nb;
                i += 1;
                continue;
            }
            self.push_tok(cur, i);
            i += 1;
        }
        cur
    }

    /// Walks tokens `[start, end)` into the CFG starting in block
    /// `cur`; returns the block that falls through at `end`.
    fn seq(&mut self, start: usize, end: usize, mut cur: usize) -> usize {
        let mut i = start;
        while i < end {
            match &self.toks[i].kind {
                TokenKind::Ident(kw) => match kw.as_str() {
                    "if" => {
                        let (ni, nc) = self.parse_if(i, end, cur);
                        i = ni;
                        cur = nc;
                    }
                    "match" => {
                        let (ni, nc) = self.parse_match(i, end, cur);
                        i = ni;
                        cur = nc;
                    }
                    "loop" => {
                        let (ni, nc) = self.parse_loop(i, end, cur);
                        i = ni;
                        cur = nc;
                    }
                    "while" => {
                        let (ni, nc) = self.parse_while_for(i, end, cur);
                        i = ni;
                        cur = nc;
                    }
                    "for" if punct(self.toks, i + 1) != Some("<") => {
                        let (ni, nc) = self.parse_while_for(i, end, cur);
                        i = ni;
                        cur = nc;
                    }
                    "return" => {
                        self.push_tok(cur, i);
                        let j = stmt_end(self.toks, i + 1, end);
                        cur = self.append_expr(cur, i + 1, j);
                        self.edge(cur, self.exit, EdgeKind::Return);
                        cur = self.new_block();
                        i = j;
                    }
                    "break" | "continue" => {
                        let is_break = kw == "break";
                        self.push_tok(cur, i);
                        let j = stmt_end(self.toks, i + 1, end);
                        cur = self.append_expr(cur, i + 1, j);
                        let (tgt, kind) = match self.loop_stack.last() {
                            Some(ctx) if is_break => (ctx.after, EdgeKind::Seq),
                            Some(ctx) => (ctx.head, EdgeKind::Seq),
                            None => (self.exit, EdgeKind::Seq),
                        };
                        self.edge(cur, tgt, kind);
                        cur = self.new_block();
                        i = j;
                    }
                    "move" if closure_start(self.toks, i, i) => {
                        self.push_tok(cur, i);
                        i = self.lift_closure(i, end);
                    }
                    "fn" if matches!(
                        self.toks.get(i + 1).map(|t| &t.kind),
                        Some(TokenKind::Ident(_))
                    ) =>
                    {
                        // A nested `fn` item: lift like a closure so its
                        // `return`s don't alias the outer exit.
                        self.push_tok(cur, i);
                        let line = self.toks[i].line;
                        let open = find_body_open(self.toks, i + 1, end);
                        if punct(self.toks, open) == Some("{") {
                            let close = brace_match(self.toks, open, end);
                            self.lifted.push(Lifted {
                                tok: i,
                                line,
                                body: (open + 1, close),
                                is_closure: false,
                            });
                            i = close + 1;
                        } else {
                            i = open + 1;
                        }
                    }
                    _ => {
                        self.push_tok(cur, i);
                        i += 1;
                    }
                },
                TokenKind::Punct(p) => match p.as_str() {
                    "?" => {
                        self.push_tok(cur, i);
                        self.edge(cur, self.exit, EdgeKind::Try);
                        let nb = self.new_block();
                        self.edge(cur, nb, EdgeKind::Seq);
                        cur = nb;
                        i += 1;
                    }
                    "{" => {
                        // Bare block / struct literal / `unsafe {}` body:
                        // transparent — the interior threads through.
                        self.push_tok(cur, i);
                        let close = brace_match(self.toks, i, end);
                        cur = self.seq(i + 1, close, cur);
                        if close < end {
                            self.push_tok(cur, close);
                        }
                        i = close + 1;
                    }
                    "|" if closure_start(self.toks, i, start) => {
                        self.push_tok(cur, i);
                        i = self.lift_closure(i, end);
                    }
                    _ => {
                        self.push_tok(cur, i);
                        i += 1;
                    }
                },
                _ => {
                    self.push_tok(cur, i);
                    i += 1;
                }
            }
        }
        cur
    }

    fn parse_if(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        self.push_tok(cur, i);
        let open = find_body_open(self.toks, i + 1, end);
        let cond_end_block = self.append_expr(cur, i + 1, open);
        if punct(self.toks, open) != Some("{") {
            // Malformed header — nothing more to branch on.
            return (open + 1, cond_end_block);
        }
        let close = brace_match(self.toks, open, end);
        let then_entry = self.new_block();
        self.edge(cond_end_block, then_entry, EdgeKind::Seq);
        self.branches.push(Branch {
            cond: (i + 1, open),
            then_entry,
            then_range: (open + 1, close),
        });
        let then_exit = self.seq(open + 1, close, then_entry);
        let j = close + 1;
        if ident(self.toks, j) == Some("else") {
            if ident(self.toks, j + 1) == Some("if") {
                let else_entry = self.new_block();
                self.edge(cond_end_block, else_entry, EdgeKind::Seq);
                self.push_tok(else_entry, j);
                let (j2, else_exit) = self.parse_if(j + 1, end, else_entry);
                let join = self.new_block();
                self.edge(then_exit, join, EdgeKind::Seq);
                self.edge(else_exit, join, EdgeKind::Seq);
                return (j2, join);
            }
            if punct(self.toks, j + 1) == Some("{") {
                let close2 = brace_match(self.toks, j + 1, end);
                let else_entry = self.new_block();
                self.edge(cond_end_block, else_entry, EdgeKind::Seq);
                self.push_tok(else_entry, j);
                let else_exit = self.seq(j + 2, close2, else_entry);
                let join = self.new_block();
                self.edge(then_exit, join, EdgeKind::Seq);
                self.edge(else_exit, join, EdgeKind::Seq);
                return (close2 + 1, join);
            }
        }
        let join = self.new_block();
        self.edge(cond_end_block, join, EdgeKind::Seq);
        self.edge(then_exit, join, EdgeKind::Seq);
        (j, join)
    }

    fn parse_match(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        self.push_tok(cur, i);
        let open = find_body_open(self.toks, i + 1, end);
        let scrut_block = self.append_expr(cur, i + 1, open);
        if punct(self.toks, open) != Some("{") {
            return (open + 1, scrut_block);
        }
        let close = brace_match(self.toks, open, end);
        let join = self.new_block();
        let mut j = open + 1;
        let mut any_arm = false;
        while j < close {
            // Find the `=>` (lexed as `=` then `>`) at bracket depth 0.
            let mut d = 0i32;
            let mut k = j;
            let arrow = loop {
                if k >= close {
                    break None;
                }
                match punct(self.toks, k) {
                    Some("(") | Some("[") | Some("{") => d += 1,
                    Some(")") | Some("]") | Some("}") => d -= 1,
                    Some("=") if d == 0 && punct(self.toks, k + 1) == Some(">") => break Some(k),
                    _ => {}
                }
                k += 1;
            };
            let Some(arrow) = arrow else {
                break;
            };
            any_arm = true;
            let arm_entry = self.new_block();
            self.edge(scrut_block, arm_entry, EdgeKind::Seq);
            // Pattern (and guard) tokens, raw — no lifting: `|` here is
            // alternation, not a closure.
            for t in j..arrow + 2 {
                self.push_tok(arm_entry, t);
            }
            let b = arrow + 2;
            let (arm_exit, next_j) = if punct(self.toks, b) == Some("{") {
                let bc = brace_match(self.toks, b, close);
                let ex = self.seq(b + 1, bc, arm_entry);
                let mut nj = bc + 1;
                if punct(self.toks, nj) == Some(",") {
                    nj += 1;
                }
                (ex, nj)
            } else {
                let e = stmt_end(self.toks, b, close);
                let ex = self.seq(b, e, arm_entry);
                let mut nj = e;
                if punct(self.toks, nj) == Some(",") {
                    nj += 1;
                }
                (ex, nj)
            };
            self.edge(arm_exit, join, EdgeKind::Seq);
            j = next_j;
        }
        if !any_arm {
            self.edge(scrut_block, join, EdgeKind::Seq);
        }
        (close + 1, join)
    }

    fn parse_loop(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        self.push_tok(cur, i);
        let open = find_body_open(self.toks, i + 1, end);
        if punct(self.toks, open) != Some("{") {
            return (open + 1, cur);
        }
        let close = brace_match(self.toks, open, end);
        let head = self.new_block();
        self.edge(cur, head, EdgeKind::Seq);
        let after = self.new_block();
        // dsj-lint: allow(unbounded-growth) — Builder lives for one build(); the list is bounded by the body's loop count, not a runtime queue
        self.loop_bodies.push((open + 1, close));
        self.loop_stack.push(LoopCtx { head, after });
        let body_exit = self.seq(open + 1, close, head);
        self.edge(body_exit, head, EdgeKind::Seq);
        self.loop_stack.pop();
        (close + 1, after)
    }

    /// `while`/`while let`/`for`: condition in the head block, an edge
    /// into the body and one past it, body exit looping back.
    fn parse_while_for(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        let head = self.new_block();
        self.edge(cur, head, EdgeKind::Seq);
        self.push_tok(head, i);
        let open = find_body_open(self.toks, i + 1, end);
        let cond_block = self.append_expr(head, i + 1, open);
        if punct(self.toks, open) != Some("{") {
            return (open + 1, cond_block);
        }
        let close = brace_match(self.toks, open, end);
        let after = self.new_block();
        let body_entry = self.new_block();
        self.edge(cond_block, body_entry, EdgeKind::Seq);
        self.edge(cond_block, after, EdgeKind::Seq);
        if ident(self.toks, i) == Some("while") {
            self.branches.push(Branch {
                cond: (i + 1, open),
                then_entry: body_entry,
                then_range: (open + 1, close),
            });
        }
        self.loop_bodies.push((open + 1, close));
        self.loop_stack.push(LoopCtx { head, after });
        let body_exit = self.seq(open + 1, close, body_entry);
        self.edge(body_exit, head, EdgeKind::Seq);
        self.loop_stack.pop();
        (close + 1, after)
    }
}

/// Builds the CFG of a body token range (exclusive of its braces).
pub fn build(toks: &[Token], body: (usize, usize)) -> Cfg {
    let end = body.1.min(toks.len());
    let body = (body.0.min(end), end);
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        exit: 1,
        lifted: Vec::new(),
        branches: Vec::new(),
        loop_bodies: Vec::new(),
        loop_stack: Vec::new(),
    };
    let last = b.seq(body.0, body.1, 0);
    b.edge(last, 1, EdgeKind::Seq);
    let mut owner = vec![NO_BLOCK; body.1 - body.0];
    for (bi, blk) in b.blocks.iter().enumerate() {
        for &(s, e) in &blk.spans {
            for t in s..e {
                if t >= body.0 && t < body.1 {
                    owner[t - body.0] = bi as u32;
                }
            }
        }
    }
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
        lifted: b.lifted,
        branches: b.branches,
        loop_bodies: b.loop_bodies,
        body,
        owner,
    }
}

impl Cfg {
    /// The block owning token `t`; `None` for lifted regions and
    /// tokens outside the body.
    pub fn block_of(&self, t: usize) -> Option<usize> {
        if t < self.body.0 || t >= self.body.1 {
            return None;
        }
        match self.owner[t - self.body.0] {
            NO_BLOCK => None,
            b => Some(b as usize),
        }
    }

    /// Whether token `t` sits inside a `loop`/`while`/`for` body.
    pub fn in_loop(&self, t: usize) -> bool {
        self.loop_bodies.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Every token reachable from just after `from` along some path,
    /// stopping at any token in `kills` or at index `bound` — the
    /// branch-aware replacement for "tokens between acquisition and
    /// scope end".
    pub fn reachable_after(&self, from: usize, bound: usize, kills: &[usize]) -> Reach {
        let mut set = vec![false; self.body.1 - self.body.0];
        let Some(b0) = self.block_of(from) else {
            return Reach {
                base: self.body.0,
                set,
            };
        };
        let mut visited = vec![false; self.blocks.len()];
        let mut work: Vec<usize> = Vec::new();
        if self.walk_block(b0, from + 1, bound, kills, &mut set) {
            for &(s, _) in &self.blocks[b0].succs {
                if !visited[s] {
                    visited[s] = true;
                    work.push(s);
                }
            }
        }
        while let Some(b) = work.pop() {
            if self.walk_block(b, 0, bound, kills, &mut set) {
                for &(s, _) in &self.blocks[b].succs {
                    if !visited[s] {
                        visited[s] = true;
                        work.push(s);
                    }
                }
            }
        }
        Reach {
            base: self.body.0,
            set,
        }
    }

    /// Marks the tokens of block `b` from `min_tok` on; returns whether
    /// the walk ran off the end of the block (successors live).
    fn walk_block(
        &self,
        b: usize,
        min_tok: usize,
        bound: usize,
        kills: &[usize],
        set: &mut [bool],
    ) -> bool {
        for &(s, e) in &self.blocks[b].spans {
            for t in s.max(min_tok)..e {
                if t >= bound || kills.contains(&t) {
                    return false;
                }
                set[t - self.body.0] = true;
            }
        }
        true
    }

    /// Searches for a path from just after `from` to an *early* exit
    /// (`return` or `?`) that never passes a token in `credits`. The
    /// fall-through exit is the designated hand-off and never leaks.
    /// Returns the first such path, deterministically, as a witness.
    pub fn uncredited_exit(
        &self,
        toks: &[Token],
        from: usize,
        credits: &BTreeSet<usize>,
    ) -> Option<LeakWitness> {
        let b0 = self.block_of(from)?;
        let mut visited = vec![false; self.blocks.len()];
        let mut path: Vec<u32> = vec![toks[from].line];
        self.leak_dfs(toks, b0, from + 1, credits, &mut visited, &mut path)
    }

    fn leak_dfs(
        &self,
        toks: &[Token],
        b: usize,
        min_tok: usize,
        credits: &BTreeSet<usize>,
        visited: &mut Vec<bool>,
        path: &mut Vec<u32>,
    ) -> Option<LeakWitness> {
        let mut last_line = None;
        for &(s, e) in &self.blocks[b].spans {
            for (t, tok) in toks.iter().enumerate().take(e).skip(s.max(min_tok)) {
                if credits.contains(&t) {
                    return None; // this path is credited
                }
                last_line = Some(tok.line);
            }
        }
        for &(succ, kind) in &self.blocks[b].succs {
            if succ == self.exit {
                let exit_kind = match kind {
                    EdgeKind::Return => "return",
                    EdgeKind::Try => "?",
                    EdgeKind::Seq => continue, // fall-through hand-off
                };
                let mut path_lines = path.clone();
                if let Some(l) = last_line {
                    if path_lines.last() != Some(&l) {
                        path_lines.push(l);
                    }
                }
                path_lines.dedup();
                return Some(LeakWitness {
                    path_lines,
                    exit_line: last_line.unwrap_or(*path.last().unwrap_or(&0)),
                    exit_kind,
                });
            }
            if !visited[succ] {
                visited[succ] = true;
                let entry_line = self.blocks[succ].spans.first().map(|&(s, _)| toks[s].line);
                if let Some(l) = entry_line {
                    path.push(l);
                }
                if let Some(w) = self.leak_dfs(toks, succ, 0, credits, visited, path) {
                    return Some(w);
                }
                if entry_line.is_some() {
                    path.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let body = items.fns[0].body.expect("fn body");
        let cfg = build(&scan.tokens, body);
        (scan.tokens, cfg)
    }

    fn tok_at(toks: &[Token], name: &str, nth: usize) -> usize {
        toks.iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, TokenKind::Ident(s) if s == name))
            .map(|(i, _)| i)
            .nth(nth)
            .unwrap()
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let (_, cfg) = cfg_of("fn f() { a(); b(); }");
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![(cfg.exit, EdgeKind::Seq)]);
        assert!(cfg.lifted.is_empty());
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } t(); }");
        // Entry has two successors (then, else); both reach the tail.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        let a = tok_at(&toks, "a", 0);
        let b = tok_at(&toks, "b", 0);
        let t = tok_at(&toks, "t", 0);
        assert_ne!(cfg.block_of(a), cfg.block_of(b));
        // The tail is reachable from both branches.
        let from_a = cfg.reachable_after(a, usize::MAX, &[]);
        assert!(from_a.contains(t));
        assert!(!from_a.contains(b), "siblings are not on the same path");
        assert_eq!(cfg.branches.len(), 1);
    }

    #[test]
    fn match_arms_are_sibling_blocks() {
        let (toks, cfg) =
            cfg_of("fn f(x: u8) { match x { 0 => a(), 1 => { b(); } _ => c(), } t(); }");
        let a = tok_at(&toks, "a", 0);
        let b = tok_at(&toks, "b", 0);
        let c = tok_at(&toks, "c", 0);
        let t = tok_at(&toks, "t", 0);
        let blocks: Vec<_> = [a, b, c].iter().map(|&i| cfg.block_of(i)).collect();
        assert!(blocks.iter().all(|x| x.is_some()));
        assert_ne!(blocks[0], blocks[1]);
        assert_ne!(blocks[1], blocks[2]);
        let from_a = cfg.reachable_after(a, usize::MAX, &[]);
        assert!(from_a.contains(t));
        assert!(!from_a.contains(b));
        assert!(!from_a.contains(c));
    }

    #[test]
    fn return_and_try_edges_are_early_exits() {
        let (toks, cfg) = cfg_of("fn f(x: R) -> R { if c() { return e(); } g()?; h() }");
        let e = tok_at(&toks, "e", 0);
        let eb = cfg.block_of(e).unwrap();
        assert!(cfg.blocks[eb]
            .succs
            .iter()
            .any(|&(s, k)| s == cfg.exit && k == EdgeKind::Return));
        let g = tok_at(&toks, "g", 0);
        let gb = cfg.block_of(g).unwrap();
        assert!(cfg.blocks[gb]
            .succs
            .iter()
            .any(|&(s, k)| s == cfg.exit && k == EdgeKind::Try));
    }

    #[test]
    fn closures_are_lifted_out_of_blocks() {
        let (toks, cfg) = cfg_of("fn f(v: Vec<u32>) { v.iter().map(|x| inner(x)).count(); t(); }");
        assert_eq!(cfg.lifted.len(), 1);
        let inner = tok_at(&toks, "inner", 0);
        assert!(cfg.block_of(inner).is_none(), "closure body left the CFG");
        let (s, e) = cfg.lifted[0].body;
        assert!(inner >= s && inner < e);
        let t = tok_at(&toks, "t", 0);
        assert!(cfg.block_of(t).is_some());
    }

    #[test]
    fn loops_have_back_edges_and_loop_ranges() {
        let (toks, cfg) = cfg_of("fn f() { loop { a(); if d() { break; } } t(); }");
        let a = tok_at(&toks, "a", 0);
        assert!(cfg.in_loop(a));
        let t = tok_at(&toks, "t", 0);
        assert!(!cfg.in_loop(t));
        // `t` is reachable from inside the loop via the break.
        assert!(cfg.reachable_after(a, usize::MAX, &[]).contains(t));
    }

    #[test]
    fn while_condition_can_skip_the_body() {
        let (toks, cfg) = cfg_of("fn f() { while c() { a(); } t(); }");
        let c = tok_at(&toks, "c", 0);
        let a = tok_at(&toks, "a", 0);
        let t = tok_at(&toks, "t", 0);
        let from_c = cfg.reachable_after(c, usize::MAX, &[]);
        assert!(from_c.contains(a));
        assert!(from_c.contains(t));
        // From inside the body the condition is reachable again (back
        // edge), and so is the tail.
        let from_a = cfg.reachable_after(a, usize::MAX, &[]);
        assert!(from_a.contains(t));
        assert!(from_a.contains(c));
    }

    #[test]
    fn kills_stop_reachability_per_path() {
        // drop(g) in one arm must not kill liveness in the sibling arm.
        let (toks, cfg) = cfg_of(
            "fn f(x: u8) { let g = l(); match x { 0 => { drop(g); a(); } _ => { b(); } } t(); }",
        );
        let l = tok_at(&toks, "l", 0);
        let d = tok_at(&toks, "drop", 0);
        let a = tok_at(&toks, "a", 0);
        let b = tok_at(&toks, "b", 0);
        let t = tok_at(&toks, "t", 0);
        let live = cfg.reachable_after(l, usize::MAX, &[d]);
        assert!(!live.contains(a), "dropped before `a` on its own path");
        assert!(live.contains(b), "sibling arm still holds the guard");
        assert!(live.contains(t), "join reachable through the sibling arm");
    }

    #[test]
    fn uncredited_branch_exit_produces_a_witness() {
        let src = "fn f(x: u8) -> Result<(), ()> {\n\
                   add();\n\
                   match x {\n\
                   0 => { credit(); return Err(()); }\n\
                   _ => return Err(()),\n\
                   }\n\
                   }";
        let (toks, cfg) = cfg_of(src);
        let add = tok_at(&toks, "add", 0);
        let credit = tok_at(&toks, "credit", 0);
        let mut credits = BTreeSet::new();
        credits.insert(credit);
        let w = cfg.uncredited_exit(&toks, add, &credits).expect("leak");
        assert_eq!(w.exit_kind, "return");
        assert_eq!(w.exit_line, 5, "the uncredited arm's return");
        assert!(w.path_lines.contains(&5));
    }

    #[test]
    fn credited_on_every_path_is_clean_and_fallthrough_is_handoff() {
        let src = "fn f(x: u8) -> Result<(), ()> {\n\
                   add();\n\
                   if x == 0 { credit(); return Err(()); }\n\
                   Ok(())\n\
                   }";
        let (toks, cfg) = cfg_of(src);
        let add = tok_at(&toks, "add", 0);
        let credit = tok_at(&toks, "credit", 0);
        let mut credits = BTreeSet::new();
        credits.insert(credit);
        assert!(cfg.uncredited_exit(&toks, add, &credits).is_none());
    }

    #[test]
    fn try_exit_is_a_leak_when_uncredited() {
        let src = "fn f() -> Result<(), ()> { add(); g()?; credit(); Ok(()) }";
        let (toks, cfg) = cfg_of(src);
        let add = tok_at(&toks, "add", 0);
        let credit = tok_at(&toks, "credit", 0);
        let mut credits = BTreeSet::new();
        credits.insert(credit);
        let w = cfg.uncredited_exit(&toks, add, &credits).expect("? leaks");
        assert_eq!(w.exit_kind, "?");
    }

    #[test]
    fn nested_fns_are_lifted() {
        let (toks, cfg) = cfg_of("fn f() { fn helper() { x(); } a(); }");
        assert_eq!(cfg.lifted.len(), 1);
        assert!(!cfg.lifted[0].is_closure);
        let x = tok_at(&toks, "x", 0);
        assert!(cfg.block_of(x).is_none());
        let a = tok_at(&toks, "a", 0);
        assert!(cfg.block_of(a).is_some());
    }
}
