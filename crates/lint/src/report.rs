//! Machine-readable (JSON) and audit renderings of a lint [`Report`].
//!
//! The JSON writer is hand-rolled (the lint crate is dependency-free by
//! design) and **byte-stable**: findings and waivers arrive pre-sorted
//! from [`crate::lint_tree_report`], keys are emitted in a fixed order,
//! and nothing run-dependent (timestamps, absolute paths, hash order)
//! enters the output — two runs over the same tree produce identical
//! bytes, so CI can archive and diff reports.

use crate::rules::Finding;
use crate::{Mode, Report};
use std::fmt::Write as _;

/// A finding's stable identity: `<rule>@<file>:<line>`. Stable across
/// runs and across unrelated edits; changes only when the finding moves.
pub fn finding_id(f: &Finding) -> String {
    format!("{}@{}:{}", f.rule, f.file, f.line)
}

/// Renders the full report as deterministic, pretty-printed JSON.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode.name());
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"id\": \"{}\",", esc(&finding_id(f)));
        let _ = writeln!(out, "      \"rule\": \"{}\",", f.rule);
        let _ = writeln!(out, "      \"file\": \"{}\",", esc(&f.file));
        let _ = writeln!(out, "      \"line\": {},", f.line);
        let _ = writeln!(out, "      \"waived\": {},", !f.is_violation());
        match &f.waiver {
            Some(reason) => {
                let _ = writeln!(out, "      \"waiver\": \"{}\",", esc(reason));
            }
            None => out.push_str("      \"waiver\": null,\n"),
        }
        let _ = writeln!(out, "      \"message\": \"{}\"", esc(&f.message));
        out.push_str("    }");
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"waivers\": [");
    for (i, w) in report.waivers.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"file\": \"{}\",", esc(&w.file));
        let _ = writeln!(out, "      \"line\": {},", w.line);
        let _ = writeln!(out, "      \"rule\": \"{}\",", w.rule);
        let _ = writeln!(out, "      \"hits\": {},", w.hits);
        let _ = writeln!(out, "      \"reason\": \"{}\"", esc(&w.reason));
        out.push_str("    }");
    }
    out.push_str(if report.waivers.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    let violations = report.findings.iter().filter(|f| f.is_violation()).count();
    let waived = report.findings.len() - violations;
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"violations\": {violations},");
    let _ = writeln!(out, "    \"waived_findings\": {waived},");
    let _ = writeln!(out, "    \"waiver_pragmas\": {}", report.waivers.len());
    out.push_str("  }\n}\n");
    out
}

/// Renders the report-only waiver audit: every `allow(..)` pragma in the
/// tree with its rule and hit count (zero hits means the pragma is stale
/// and is separately reported as a `pragma` violation).
pub fn render_waivers(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "waiver audit ({}): {} pragma(s)",
        report.mode.name(),
        report.waivers.len()
    );
    for w in &report.waivers {
        let _ = writeln!(
            out,
            "  {}:{}: [{}] {} hit(s) — {}",
            w.file, w.line, w.rule, w.hits, w.reason
        );
    }
    let stale = report.waivers.iter().filter(|w| w.hits == 0).count();
    if stale > 0 {
        let _ = writeln!(out, "  {stale} stale pragma(s) — these fail the lint");
    }
    out
}

/// Extracts the stable ids of every **unwaived** finding from a JSON
/// report previously written by [`render_json`] — the parsing half of
/// `--baseline` mode. A line scanner is enough because the writer is
/// ours and byte-stable: each finding object carries `"id"` before
/// `"waived"`, one key per line. Input that never matches yields an
/// empty list rather than an error, so a truncated or hand-edited
/// baseline fails closed (everything current looks new).
pub fn baseline_ids(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"id\": \"") {
            if let Some(raw) = rest.strip_suffix("\",") {
                current = Some(unesc(raw));
            }
        } else if line == "\"waived\": false," {
            if let Some(id) = current.take() {
                out.push(id);
            }
        } else if line == "\"waived\": true," {
            current = None;
        }
    }
    out
}

/// Diffs the current report against a baseline id list: `(added,
/// removed)` where *added* are unwaived findings not in the baseline
/// (these fail the lint) and *removed* are baseline ids the tree no
/// longer produces (progress — prune them from the baseline). Both
/// sides keep their source order; duplicates collapse.
pub fn diff_baseline(baseline: &[String], report: &Report) -> (Vec<String>, Vec<String>) {
    let current: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.is_violation())
        .map(finding_id)
        .collect();
    let mut added = Vec::new();
    for id in &current {
        if !baseline.contains(id) && !added.contains(id) {
            added.push(id.clone());
        }
    }
    let mut removed = Vec::new();
    for id in baseline {
        if !current.contains(id) && !removed.contains(id) {
            removed.push(id.clone());
        }
    }
    (added, removed)
}

/// Reverses [`esc`] for the id strings read back out of a baseline.
fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The mode tag used in reports.
impl Mode {
    /// `"workspace"` or `"fixture"`.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Workspace => "workspace",
            Mode::Fixture => "fixture",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use crate::WaiverRecord;

    fn demo_report() -> Report {
        Report {
            mode: Mode::Fixture,
            findings: vec![
                Finding {
                    file: "a.rs".to_string(),
                    line: 3,
                    rule: Rule::HotPathAlloc,
                    message: "say \"hi\"\\".to_string(),
                    waiver: None,
                },
                Finding {
                    file: "a.rs".to_string(),
                    line: 9,
                    rule: Rule::HotPathOpaque,
                    message: "cut".to_string(),
                    waiver: Some("why".to_string()),
                },
            ],
            waivers: vec![WaiverRecord {
                file: "a.rs".to_string(),
                line: 9,
                rule: Rule::HotPathOpaque,
                reason: "why".to_string(),
                hits: 1,
            }],
        }
    }

    #[test]
    fn finding_ids_are_rule_file_line() {
        let r = demo_report();
        assert_eq!(finding_id(&r.findings[0]), "hot-path-alloc@a.rs:3");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = demo_report();
        let a = render_json(&r);
        let b = render_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"id\": \"hot-path-alloc@a.rs:3\""), "{a}");
        assert!(a.contains("say \\\"hi\\\"\\\\"), "{a}");
        assert!(a.contains("\"waived\": true"), "{a}");
        assert!(a.contains("\"violations\": 1"), "{a}");
        assert!(a.ends_with("}\n"), "{a}");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let r = Report {
            mode: Mode::Workspace,
            findings: Vec::new(),
            waivers: Vec::new(),
        };
        let json = render_json(&r);
        assert!(json.contains("\"findings\": [],"), "{json}");
        assert!(json.contains("\"waivers\": [],"), "{json}");
    }

    #[test]
    fn baseline_roundtrips_unwaived_ids_only() {
        let r = demo_report();
        let ids = baseline_ids(&render_json(&r));
        // The waived finding at a.rs:9 must not enter the baseline.
        assert_eq!(ids, vec!["hot-path-alloc@a.rs:3".to_string()]);
    }

    #[test]
    fn baseline_of_garbage_is_empty() {
        assert!(baseline_ids("not json at all").is_empty());
        assert!(baseline_ids("").is_empty());
    }

    #[test]
    fn diff_splits_added_and_removed() {
        let r = demo_report();
        let baseline = vec![
            "hot-path-alloc@a.rs:3".to_string(),
            "panic@gone.rs:1".to_string(),
        ];
        let (added, removed) = diff_baseline(&baseline, &r);
        assert!(added.is_empty(), "{added:?}");
        assert_eq!(removed, vec!["panic@gone.rs:1".to_string()]);

        let (added, removed) = diff_baseline(&[], &r);
        assert_eq!(added, vec!["hot-path-alloc@a.rs:3".to_string()]);
        assert!(removed.is_empty(), "{removed:?}");
    }

    #[test]
    fn waiver_audit_lists_hits() {
        let out = render_waivers(&demo_report());
        assert!(
            out.contains("a.rs:9: [hot-path-opaque-call] 1 hit(s) — why"),
            "{out}"
        );
        assert!(!out.contains("stale"), "{out}");
    }
}
