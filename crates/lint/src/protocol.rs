//! Wire-protocol conformance: the `wire-exhaustive` rule family.
//!
//! Every variant of a configured wire enum must appear in each of its
//! four mandatory homes — the encode arm, the decode arm, the
//! `wire_bytes` accounting arm, and the engine handling arm. A variant
//! that ships without one of them either cannot round-trip, is
//! miscounted by the communication-budget accountant, or is silently
//! dropped by the engine (a `_ =>` wildcard deliberately does *not*
//! count as handling: the silent-drop case is exactly what this rule
//! exists to catch). The check is token-level: a variant is "present" in
//! a role when `Enum::Variant` (or `Self::Variant` inside the enum's own
//! impl) occurs in the body of any function whose name belongs to that
//! role's configured set, with presence unioned across all candidates —
//! so `apply_summary` may be split per strategy, as it is today.
//!
//! In workspace mode a configured enum that no longer exists, or a role
//! with no candidate function at all, is itself a finding: renames must
//! update [`WIRE_CHECKS`] rather than silently disarm the proof. In
//! fixture (single-directory) mode absent enums and roles are skipped so
//! a fixture can seed exactly one missing arm.

use crate::callgraph::FileGraphInput;
use crate::lex::{Token, TokenKind};
use crate::rules::{Finding, Rule};

/// Where the configuration below lives — findings about the config
/// itself (an enum that no longer resolves) point here.
pub const CONFIG_FILE: &str = "crates/lint/src/protocol.rs";

/// One mandatory home for a wire enum's variants.
pub struct WireRole {
    /// Human name used in findings ("encode", "engine handling", ...).
    pub role: &'static str,
    /// Function names whose bodies make up the arm set, unioned.
    pub fns: &'static [&'static str],
}

/// A wire enum and its four mandatory homes.
pub struct WireCheck {
    /// The enum's name as written in source.
    pub enum_name: &'static str,
    /// The four roles every variant must appear in.
    pub roles: [WireRole; 4],
}

/// The wire enums the workspace must keep exhaustively plumbed.
pub const WIRE_CHECKS: [WireCheck; 2] = [
    WireCheck {
        enum_name: "Msg",
        roles: [
            WireRole {
                role: "encode",
                fns: &["encode_into"],
            },
            WireRole {
                role: "decode",
                fns: &["decode_body"],
            },
            WireRole {
                role: "size accounting",
                fns: &["wire_bytes"],
            },
            WireRole {
                role: "engine handling",
                fns: &["handle_message"],
            },
        ],
    },
    WireCheck {
        enum_name: "SummaryPayload",
        roles: [
            WireRole {
                role: "encode",
                fns: &["encode_payload"],
            },
            WireRole {
                role: "decode",
                fns: &["decode_payload"],
            },
            WireRole {
                role: "size accounting",
                fns: &["wire_bytes"],
            },
            WireRole {
                role: "engine handling",
                fns: &["apply_summary"],
            },
        ],
    },
];

/// A variant of a configured enum, with its definition site.
struct Variant {
    name: String,
    file: String,
    line: u32,
}

/// Where a configured enum was defined.
struct EnumDef {
    file: String,
    line: u32,
    variants: Vec<Variant>,
}

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Runs the wire-exhaustiveness pass. `workspace` arms the
/// missing-enum/missing-role config findings.
pub fn analyze(files: &[FileGraphInput<'_>], workspace: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    for check in &WIRE_CHECKS {
        let def = find_enum(files, check.enum_name);
        let Some(def) = def else {
            if workspace {
                findings.push(finding(
                    CONFIG_FILE,
                    1,
                    format!(
                        "configured wire enum `{}` not found in any workspace file — update \
                         WIRE_CHECKS if it was renamed or removed",
                        check.enum_name
                    ),
                ));
            }
            continue;
        };
        for role in &check.roles {
            // Candidate arm-set functions, in (file, line) order.
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for (fi, f) in files.iter().enumerate() {
                if f.exempt {
                    continue;
                }
                for (ii, item) in f.items.fns.iter().enumerate() {
                    if item.gated || item.body.is_none() {
                        continue;
                    }
                    if role.fns.contains(&item.name.as_str()) {
                        candidates.push((fi, ii));
                    }
                }
            }
            if candidates.is_empty() {
                if workspace {
                    findings.push(finding(
                        &def.file,
                        def.line,
                        format!(
                            "no {} arm set found for `{}` — expected at least one workspace fn \
                             named one of [{}]",
                            role.role,
                            check.enum_name,
                            role.fns.join(", ")
                        ),
                    ));
                }
                continue;
            }
            for v in &def.variants {
                let present = candidates
                    .iter()
                    .any(|&(fi, ii)| variant_in_body(files, fi, ii, check.enum_name, &v.name));
                if !present {
                    let (fi, ii) = candidates[0];
                    let item = &files[fi].items.fns[ii];
                    findings.push(finding(
                        files[fi].rel,
                        item.line,
                        format!(
                            "`{}::{}` (defined at {}:{}) never appears in the {} arm set \
                             [{}] — a wildcard match would silently drop or miscount it; \
                             add an explicit arm",
                            check.enum_name,
                            v.name,
                            v.file,
                            v.line,
                            role.role,
                            role.fns.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    findings
}

fn finding(file: &str, line: u32, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: Rule::WireExhaustive,
        message,
        waiver: None,
    }
}

/// Finds `enum <name> { .. }` in the non-exempt files and extracts its
/// variant names. Multiple definitions (there are none today) union
/// their variants; the first definition is the reported site.
fn find_enum(files: &[FileGraphInput<'_>], name: &str) -> Option<EnumDef> {
    let mut def: Option<EnumDef> = None;
    for f in files {
        if f.exempt {
            continue;
        }
        let toks = f.tokens;
        let mut i = 0;
        while i + 1 < toks.len() {
            if ident(toks, i) != Some("enum") || ident(toks, i + 1) != Some(name) {
                i += 1;
                continue;
            }
            // Skip generics between the name and the opening brace.
            let mut j = i + 2;
            if punct(toks, j) == Some("<") {
                let mut depth = 0i32;
                while j < toks.len() {
                    match punct(toks, j) {
                        Some("<") => depth += 1,
                        Some(">") => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if punct(toks, j) != Some("{") {
                i += 1;
                continue;
            }
            let line = toks[i].line;
            let variants = collect_variants(toks, j, f.rel);
            match &mut def {
                Some(d) => d.variants.extend(variants),
                None => {
                    def = Some(EnumDef {
                        file: f.rel.to_string(),
                        line,
                        variants,
                    });
                }
            }
            i = j;
        }
    }
    def
}

/// Collects variant names from the brace group opening at `open`: the
/// first identifier after the `{` and after each depth-1 comma, with
/// `#[..]` attribute runs skipped and payload tokens (depth > 1)
/// ignored.
fn collect_variants(toks: &[Token], open: usize, rel: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect = false;
    let mut j = open;
    while j < toks.len() {
        match punct(toks, j) {
            Some("{") | Some("(") | Some("[") => {
                depth += 1;
                if depth == 1 {
                    expect = true;
                }
                j += 1;
                continue;
            }
            Some("}") | Some(")") | Some("]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                j += 1;
                continue;
            }
            Some(",") if depth == 1 => {
                expect = true;
                j += 1;
                continue;
            }
            Some("#") if depth == 1 && punct(toks, j + 1) == Some("[") => {
                // Skip the attribute's bracket group.
                let mut adepth = 0i32;
                j += 1;
                while j < toks.len() {
                    match punct(toks, j) {
                        Some("[") => adepth += 1,
                        Some("]") => {
                            adepth -= 1;
                            if adepth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            _ => {}
        }
        if depth == 1 && expect {
            if let Some(n) = ident(toks, j) {
                variants.push(Variant {
                    name: n.to_string(),
                    file: rel.to_string(),
                    line: toks[j].line,
                });
                expect = false;
            }
        }
        j += 1;
    }
    variants
}

/// `true` when `Enum::Variant` — or `Self::Variant` inside the enum's
/// own impl — occurs in the body of function `(fi, ii)`.
fn variant_in_body(
    files: &[FileGraphInput<'_>],
    fi: usize,
    ii: usize,
    enum_name: &str,
    variant: &str,
) -> bool {
    let f = &files[fi];
    let item = &f.items.fns[ii];
    let Some((start, end)) = item.body else {
        return false;
    };
    let toks = f.tokens;
    let own_impl = item.owner.as_deref() == Some(enum_name);
    let mut i = start;
    let end = end.min(toks.len());
    while i + 2 < end {
        if punct(toks, i + 1) == Some("::") && ident(toks, i + 2) == Some(variant) {
            match ident(toks, i) {
                Some(q) if q == enum_name => return true,
                Some("Self") if own_impl => return true,
                _ => {}
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str, workspace: bool) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        analyze(&[input], workspace)
    }

    const COMPLETE: &str = "pub enum Msg { Tuple { seq: u64 }, Leave(u16) }\n\
         fn encode_into(m: &Msg) { match m { Msg::Tuple { .. } => {}, Msg::Leave(_) => {} } }\n\
         fn decode_body(k: u8) -> Msg { if k == 0 { Msg::Tuple { seq: 0 } } else { \
         Msg::Leave(0) } }\n\
         impl Msg { pub fn wire_bytes(&self) -> usize { match self { Self::Tuple { .. } => 9, \
         Self::Leave(_) => 3 } } }\n\
         fn handle_message(m: Msg) { match m { Msg::Tuple { .. } => {}, Msg::Leave(_) => {} } }";

    #[test]
    fn fully_plumbed_enum_is_clean() {
        assert!(analyze_src(COMPLETE, false).is_empty());
    }

    #[test]
    fn missing_engine_arm_is_flagged_with_wildcards_not_counting() {
        let src = "pub enum Msg { Tuple { seq: u64 }, Leave(u16) }\n\
             fn encode_into(m: &Msg) { match m { Msg::Tuple { .. } => {}, Msg::Leave(_) => {} } }\n\
             fn decode_body(k: u8) -> Msg { if k == 0 { Msg::Tuple { seq: 0 } } else { \
             Msg::Leave(0) } }\n\
             impl Msg { pub fn wire_bytes(&self) -> usize { match self { Self::Tuple { .. } => 9, \
             Self::Leave(_) => 3 } } }\n\
             fn handle_message(m: Msg) { match m { Msg::Tuple { .. } => {}, _ => {} } }";
        let f = analyze_src(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::WireExhaustive);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("`Msg::Leave`"), "{f:?}");
        assert!(f[0].message.contains("engine handling"), "{f:?}");
    }

    #[test]
    fn self_qualified_arms_count_only_inside_the_enums_impl() {
        // `Self::Leave` in an unrelated impl must not satisfy the check.
        let src = "pub enum Msg { Leave(u16) }\n\
             struct Other;\n\
             impl Other { fn handle_message(&self) { let _ = Self::Leave; } }\n\
             fn encode_into(m: &Msg) { match m { Msg::Leave(_) => {} } }\n\
             fn decode_body(_k: u8) -> Msg { Msg::Leave(0) }\n\
             impl Msg { pub fn wire_bytes(&self) -> usize { match self { Self::Leave(_) => 3 } } }";
        let f = analyze_src(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("engine handling"), "{f:?}");
    }

    #[test]
    fn fixture_mode_skips_absent_roles_and_enums() {
        // Only the engine arm exists — fixture mode checks just that one.
        let src = "pub enum Msg { Tuple(u64), Leave(u16) }\n\
             fn handle_message(m: Msg) { match m { Msg::Tuple(_) => {}, _ => {} } }";
        let f = analyze_src(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Msg::Leave`"), "{f:?}");
        // No Msg/SummaryPayload at all: nothing to check.
        assert!(analyze_src("fn unrelated() {}", false).is_empty());
    }

    #[test]
    fn workspace_mode_reports_missing_enums_and_roles() {
        let f = analyze_src("fn unrelated() {}", true);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.file == CONFIG_FILE), "{f:?}");
        assert!(f[0].message.contains("`Msg`"), "{f:?}");
        assert!(f[1].message.contains("`SummaryPayload`"), "{f:?}");

        let src = "pub enum Msg { Tuple(u64) }";
        let f = analyze_src(src, true);
        // Four missing role sets for Msg plus the missing SummaryPayload.
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(
            f.iter().any(|x| x.message.contains("no encode arm set")),
            "{f:?}"
        );
    }

    #[test]
    fn attributes_and_payload_fields_are_not_variants() {
        let src = "pub enum Msg {\n\
             #[allow(dead_code)]\n\
             Tuple { seq: u64, extra: Vec<u8> },\n\
             Leave(u16),\n\
             }\n\
             fn handle_message(m: Msg) { match m { Msg::Tuple { .. } => {}, \
             Msg::Leave(_) => {} } }";
        let f = analyze_src(src, false);
        // seq/extra/allow must not be treated as variants needing arms.
        assert!(f.is_empty(), "{f:?}");
    }
}
