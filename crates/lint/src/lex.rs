//! A minimal, dependency-free token scanner for Rust source.
//!
//! `dsj-lint` needs far less than a real parser: it must see identifiers,
//! punctuation and literals with line numbers, while *never* mistaking the
//! inside of a string, character literal or comment for code. This module
//! does exactly that — comments are captured separately so waiver pragmas
//! can be recognized, and everything else is reduced to a flat token
//! stream the rule passes scan.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `mod`, `HashMap`, ...).
    Ident(String),
    /// Punctuation; multi-character operators the rules care about
    /// (`==`, `!=`, `::`) are joined, everything else is one character.
    Punct(String),
    /// An integer literal.
    Int,
    /// A floating-point literal (has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// A string, byte-string, raw-string or character literal.
    Text,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token's classification.
    pub kind: TokenKind,
}

/// One comment with its 1-based source line (`//`, `///`, `/* */`, ...).
/// The text excludes the comment markers of line comments but keeps block
/// comment interiors verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body (without the leading `//` for line comments).
    pub text: String,
}

/// The output of [`scan`]: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens outside comments and literals.
    pub tokens: Vec<Token>,
    /// All comments, including doc comments.
    pub comments: Vec<Comment>,
}

/// Scans `source` into tokens and comments. The scanner is total: any
/// input produces a best-effort token stream (unterminated literals run to
/// end of input rather than failing).
pub fn scan(source: &str) -> Scan {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Scan,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: Scan::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn run(mut self) -> Scan {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` and falls back
    /// to identifier scanning when the `r`/`b` starts a plain name.
    /// Returns `true` when it consumed anything.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut ahead = 1;
        if self.peek(0) == b'b' && self.peek(1) == b'r' {
            ahead = 2;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != b'"' {
            return false; // a normal identifier like `result`
        }
        let line = self.line;
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Consume until `"` followed by `hashes` hashes.
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Text,
        });
        true
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump();
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Text,
        });
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` / `'static`
    /// (lifetimes).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1) == b'\\' {
            // Escape sequence: definitely a char literal.
            self.bump(); // '
            self.bump(); // \
            self.bump(); // escaped byte
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump(); // \u{...} bodies
            }
            self.bump(); // closing '
            self.out.tokens.push(Token {
                line,
                kind: TokenKind::Text,
            });
        } else if self.peek(2) == b'\'' && self.peek(1) != b'\'' {
            // 'x' — a one-character literal.
            self.bump();
            self.bump();
            self.bump();
            self.out.tokens.push(Token {
                line,
                kind: TokenKind::Text,
            });
        } else {
            // A lifetime: consume the quote; the name lexes as an ident.
            self.bump();
            self.out.tokens.push(Token {
                line,
                kind: TokenKind::Punct("'".to_string()),
            });
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            // Non-decimal: digits and `_` only; suffixes fold into the
            // trailing ident chars (e.g. `0xFFu32`).
            self.bump();
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // A fractional part only when a digit follows the dot — `1..4`
            // is a range and `1.max(2)` is a method call.
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            // Type suffix (`f64` makes it a float, `u32` keeps it an int).
            let suffix_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
        });
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Ident(text),
        });
    }

    fn punct(&mut self) {
        let line = self.line;
        let a = self.bump();
        let joined = match (a, self.peek(0)) {
            (b'=', b'=') | (b'!', b'=') | (b':', b':') => {
                let b = self.bump();
                let mut s = String::with_capacity(2);
                s.push(a as char);
                s.push(b as char);
                s
            }
            _ => (a as char).to_string(),
        };
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Punct(joined),
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in a block
               comment */
            let s = "panic!() inside a string";
            let r = r#"raw unwrap()"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert_eq!(scan(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"static".to_string()));
        // And a real char literal does not swallow the rest of the line.
        let src2 = "let c = 'x'; let y = unwrap;";
        assert!(idents(src2).contains(&"unwrap".to_string()));
    }

    #[test]
    fn float_versus_int_literals() {
        let kinds = |src: &str| -> Vec<TokenKind> {
            scan(src)
                .tokens
                .into_iter()
                .map(|t| t.kind)
                .filter(|k| matches!(k, TokenKind::Float | TokenKind::Int))
                .collect()
        };
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("1e9"), vec![TokenKind::Float]);
        assert_eq!(kinds("3f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("42"), vec![TokenKind::Int]);
        assert_eq!(kinds("42u64"), vec![TokenKind::Int]);
        assert_eq!(kinds("0xff"), vec![TokenKind::Int]);
        // Ranges keep both ends integral.
        assert_eq!(kinds("0..31"), vec![TokenKind::Int, TokenKind::Int]);
    }

    #[test]
    fn multi_char_operators_join() {
        let puncts: Vec<String> = scan("a == b != c::d")
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n  c";
        let lines: Vec<u32> = scan(src).tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ ident";
        let s = scan(src);
        assert_eq!(s.comments.len(), 1);
        assert_eq!(idents(src), vec!["ident"]);
    }
}
