//! Item-structure recovery from the token stream.
//!
//! The call-graph pass needs to know *which function* a token belongs to,
//! which `impl` block owns that function, and whether the whole thing is
//! compiled out of release builds. A full parser would be overkill — this
//! module recovers exactly that skeleton with a single linear walk over
//! the [`crate::lex`] token stream: a brace-frame stack tracks `impl`,
//! `trait` and `mod` nesting, `#[cfg(test)]`/`#[cfg(.. feature ..)]`
//! attributes mark items as gated, and `// dsj-lint: hot-path` marker
//! comments attach to the next `fn` below them.
//!
//! Known (deliberate) approximations, all conservative for our use:
//!
//! - `fn` items nested inside another `fn` body stay part of the outer
//!   body's token range, so their calls are attributed to the outer
//!   function (over-approximates reachability).
//! - Any `cfg` attribute mentioning `test` or `feature` counts as gated —
//!   gated functions are excluded from the call graph, so calls *into*
//!   them surface as opaque-call findings rather than silently resolving
//!   to code that may not exist in a release build.

use crate::lex::{Scan, Token, TokenKind};

/// The marker comment body (after `dsj-lint:`) that turns the next `fn`
/// into a hot-path analysis root.
pub const HOT_MARKER: &str = "hot-path";

/// One `fn` item recovered from a file's token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (`Window` in `impl Window` or
    /// `impl Probe for Window`); `None` for free functions.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, exclusive of its braces; `None` for
    /// bodyless signatures (trait methods, extern decls).
    pub body: Option<(usize, usize)>,
    /// Compiled out of release builds (`#[cfg(test)]`, feature gates, or
    /// inside a gated `mod`/`impl`) — excluded from the call graph.
    pub gated: bool,
    /// Carries a `// dsj-lint: hot-path` marker: a hot-path analysis root.
    pub hot_marker: bool,
}

impl FnItem {
    /// `Owner::name` for methods, bare `name` for free functions — the
    /// form used in findings and in the configured root list.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Items recovered from one file, plus marker diagnostics.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Lines of `dsj-lint: hot-path` markers with no `fn` below them.
    pub dangling_markers: Vec<u32>,
}

/// A brace-delimited region and what it means for the items inside it.
struct Frame {
    owner: Option<String>,
    gated: bool,
    fn_idx: Option<usize>,
}

/// Item header seen but its `{` (or terminating `;`) not reached yet.
enum Pending {
    None,
    Impl { owner: Option<String>, gated: bool },
    Mod { gated: bool },
    Fn { idx: usize },
}

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

/// Recovers the `fn`/`impl`/`mod` skeleton of one scanned file and
/// attaches hot-path markers.
pub fn parse_items(scan: &Scan) -> FileItems {
    let toks = &scan.tokens;
    let mut items = FileItems::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending = Pending::None;
    let mut attr_gated = false;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct(p) => match p.as_str() {
                "#" if punct(toks, i + 1) == Some("[") => {
                    let (gated, next) = scan_attr(toks, i + 1);
                    attr_gated |= gated;
                    i = next;
                    continue;
                }
                "{" => {
                    let frame = match std::mem::replace(&mut pending, Pending::None) {
                        Pending::Impl { owner, gated } => Frame {
                            owner,
                            gated,
                            fn_idx: None,
                        },
                        Pending::Mod { gated } => Frame {
                            owner: None,
                            gated,
                            fn_idx: None,
                        },
                        Pending::Fn { idx } => {
                            items.fns[idx].body = Some((i + 1, toks.len()));
                            Frame {
                                owner: None,
                                gated: false,
                                fn_idx: Some(idx),
                            }
                        }
                        Pending::None => Frame {
                            owner: None,
                            gated: false,
                            fn_idx: None,
                        },
                    };
                    stack.push(frame);
                }
                "}" => {
                    if let Some(f) = stack.pop() {
                        if let Some(idx) = f.fn_idx {
                            if let Some((s, _)) = items.fns[idx].body {
                                items.fns[idx].body = Some((s, i));
                            }
                        }
                    }
                }
                ";" => pending = Pending::None,
                _ => {}
            },
            TokenKind::Ident(kw) => {
                let in_fn_body = stack.iter().any(|f| f.fn_idx.is_some());
                match kw.as_str() {
                    "fn" if matches!(pending, Pending::None) => {
                        if let Some(TokenKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                            let gated = attr_gated || stack.iter().any(|f| f.gated);
                            let owner = stack.iter().rev().find_map(|f| f.owner.clone());
                            items.fns.push(FnItem {
                                name: name.clone(),
                                owner,
                                line: toks[i].line,
                                body: None,
                                gated,
                                hot_marker: false,
                            });
                            pending = Pending::Fn {
                                idx: items.fns.len() - 1,
                            };
                            attr_gated = false;
                            i += 2;
                            continue;
                        }
                        // `fn(..)` pointer type, not an item.
                        attr_gated = false;
                    }
                    "impl"
                        if matches!(pending, Pending::None)
                            && !in_fn_body
                            && at_item_position(toks, i) =>
                    {
                        pending = Pending::Impl {
                            owner: impl_owner(toks, i + 1),
                            gated: attr_gated,
                        };
                        attr_gated = false;
                    }
                    "trait"
                        if matches!(pending, Pending::None)
                            && !in_fn_body
                            && at_item_position(toks, i) =>
                    {
                        // Default methods in a trait body get the trait as
                        // their owner.
                        let owner = match toks.get(i + 1).map(|t| &t.kind) {
                            Some(TokenKind::Ident(n)) => Some(n.clone()),
                            _ => None,
                        };
                        pending = Pending::Impl {
                            owner,
                            gated: attr_gated,
                        };
                        attr_gated = false;
                    }
                    "mod" if matches!(pending, Pending::None) && !in_fn_body => {
                        pending = Pending::Mod { gated: attr_gated };
                        attr_gated = false;
                    }
                    "struct" | "enum" | "union" | "use" | "static" | "type" | "macro_rules" => {
                        // The pending attribute belonged to an item kind we
                        // don't analyze.
                        attr_gated = false;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Close bodies left open by unbalanced input (best-effort lexing).
    for f in &mut items.fns {
        if let Some((s, e)) = f.body {
            if e > toks.len() {
                f.body = Some((s, toks.len()));
            }
        }
    }
    attach_markers(scan, &mut items);
    items
}

/// Scans an outer attribute starting at its `[` token. Returns whether it
/// is a `cfg` gate mentioning `test` or `feature`, plus the index just
/// past the closing `]`.
fn scan_attr(toks: &[Token], open: usize) -> (bool, usize) {
    let mut depth = 0i32;
    let mut has_cfg = false;
    let mut has_gate = false;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct(p) if p == "[" => depth += 1,
            TokenKind::Punct(p) if p == "]" => {
                depth -= 1;
                if depth == 0 {
                    return (has_cfg && has_gate, i + 1);
                }
            }
            TokenKind::Ident(s) if s == "cfg" => has_cfg = true,
            TokenKind::Ident(s) if s == "test" || s == "feature" => has_gate = true,
            _ => {}
        }
        i += 1;
    }
    (has_cfg && has_gate, i)
}

/// `impl`/`trait` only start an item at item position — this rules out
/// `-> impl Trait` return types and `x: impl Trait` argument positions.
fn at_item_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &toks[i - 1].kind {
        TokenKind::Punct(p) => matches!(p.as_str(), "{" | "}" | ";" | "]" | ")"),
        TokenKind::Ident(s) => matches!(s.as_str(), "pub" | "unsafe" | "default"),
        _ => false,
    }
}

/// The `Self` type name of an `impl` header: the last path segment at
/// angle-bracket depth zero before the body opens, taking the side after
/// `for` when present (`impl Probe for Window` → `Window`).
fn impl_owner(toks: &[Token], mut i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct(p) => match p.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" => break,
                _ => {}
            },
            TokenKind::Ident(s) if angle == 0 => match s.as_str() {
                "where" => break,
                "for" => last = None,
                _ => last = Some(s.clone()),
            },
            _ => {}
        }
        i += 1;
    }
    last
}

/// Attaches each `// dsj-lint: hot-path` marker to the first `fn` at or
/// below it; markers with no `fn` below become dangling diagnostics.
fn attach_markers(scan: &Scan, items: &mut FileItems) {
    for c in &scan.comments {
        let Some(rest) = c.text.trim_start().strip_prefix("dsj-lint:") else {
            continue;
        };
        if rest.trim() != HOT_MARKER {
            continue;
        }
        match items.fns.iter_mut().find(|f| f.line >= c.line) {
            Some(f) => f.hot_marker = true,
            None => items.dangling_markers.push(c.line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> FileItems {
        parse_items(&lex::scan(src))
    }

    #[test]
    fn recovers_free_and_impl_fns() {
        let src = "fn free() { a(); }\nstruct W;\nimpl W { fn m(&self) {} }\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "free");
        assert_eq!(items.fns[0].owner, None);
        assert!(items.fns[0].body.is_some());
        assert_eq!(items.fns[1].display(), "W::m");
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let src = "impl Probe for Window { fn probe(&self) {} }";
        let items = parse(src);
        assert_eq!(items.fns[0].display(), "Window::probe");
    }

    #[test]
    fn generic_impl_headers_resolve_the_base_name() {
        let src = "impl<'a, T: Ord> Holder<'a, T> where T: Copy { fn get(&self) {} }";
        let items = parse(src);
        assert_eq!(items.fns[0].display(), "Holder::get");
    }

    #[test]
    fn cfg_gates_mark_fns_gated() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\
                   #[cfg(any(test, feature = \"reference\"))]\nfn gated() {}\nfn live() {}";
        let items = parse(src);
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("t").gated);
        assert!(by_name("gated").gated);
        assert!(!by_name("live").gated);
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let src = "fn f() -> impl Iterator<Item = u32> { (0..3) }\nfn g(x: impl Copy) {}";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns.iter().all(|f| f.owner.is_none()));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { self.sig() } }";
        let items = parse(src);
        assert_eq!(items.fns[0].name, "sig");
        assert!(items.fns[0].body.is_none());
        assert_eq!(items.fns[1].name, "with_default");
        assert!(items.fns[1].body.is_some());
    }

    #[test]
    fn body_ranges_cover_exactly_the_braced_tokens() {
        let src = "fn f() { inner() }\nfn g() {}";
        let items = parse(src);
        let toks = lex::scan(src).tokens;
        let (s, e) = items.fns[0].body.unwrap();
        let names: Vec<_> = toks[s..e]
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["inner"]);
        let (s2, e2) = items.fns[1].body.unwrap();
        assert_eq!(s2, e2);
    }

    #[test]
    fn hot_markers_attach_to_the_next_fn() {
        let src = "// dsj-lint: hot-path\npub fn hot() {}\nfn cold() {}";
        let items = parse(src);
        assert!(items.fns[0].hot_marker);
        assert!(!items.fns[1].hot_marker);
        assert!(items.dangling_markers.is_empty());
    }

    #[test]
    fn dangling_markers_are_reported() {
        let items = parse("fn f() {}\n// dsj-lint: hot-path\nstruct S;");
        assert!(!items.fns[0].hot_marker);
        assert_eq!(items.dangling_markers, vec![2]);
    }
}
