//! The `dsj-lint` binary: lints the workspace (or a fixture directory)
//! and exits nonzero on any unwaived violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsj_lint::{is_workspace_root, lint_tree_report, render_json, render_waivers, Mode, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dsj-lint [PATH] [--format human|json] [--waivers]

Lints every .rs file under PATH (default: the enclosing workspace root).
A PATH whose Cargo.toml declares [workspace] gets the workspace path rules
(including the configured hot-path roots); any other directory is linted
in fixture mode (every rule armed, marker-derived hot-path roots only).

  --format human|json   output format (default: human). JSON output is
                        byte-stable across runs and carries stable finding
                        ids of the form <rule>@<file>:<line>.
  --waivers             report-only waiver audit: list every
                        `dsj-lint: allow(..)` pragma with its hit count,
                        then exit 0.

exit codes: 0 clean, 1 unwaived violations, 2 usage/IO error";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

struct Args {
    path: Option<PathBuf>,
    format: Format,
    waivers_only: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        path: None,
        format: Format::Human,
        waivers_only: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--format" => {
                parsed.format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `human` or `json`, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--waivers" => parsed.waivers_only = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path if parsed.path.is_none() => parsed.path = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra argument `{extra}`")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dsj-lint: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args.path {
        Some(p) => p,
        None => match find_workspace_root() {
            Some(p) => p,
            None => {
                eprintln!("dsj-lint: no enclosing workspace root found");
                return ExitCode::from(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("dsj-lint: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mode = if is_workspace_root(&root) {
        Mode::Workspace
    } else {
        Mode::Fixture
    };
    let report = match lint_tree_report(&root, mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dsj-lint: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if args.waivers_only {
        print!("{}", render_waivers(&report));
        return ExitCode::SUCCESS;
    }
    match args.format {
        Format::Json => print!("{}", render_json(&report)),
        Format::Human => print_human(&report),
    }
    let violations = report.findings.iter().filter(|f| f.is_violation()).count();
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_human(report: &Report) {
    let violations: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.is_violation())
        .collect();
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.is_violation())
        .collect();
    for f in &violations {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !waived.is_empty() {
        println!("waivers ({}):", waived.len());
        for f in &waived {
            println!(
                "  {}:{}: [{}] waived — {}",
                f.file,
                f.line,
                f.rule,
                f.waiver.as_deref().unwrap_or("")
            );
        }
    }
    println!(
        "dsj-lint ({}): {} violation(s), {} waiver(s)",
        report.mode.name(),
        violations.len(),
        waived.len()
    );
}

/// Walks up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
