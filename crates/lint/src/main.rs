//! The `dsj-lint` binary: lints the workspace (or a fixture directory)
//! and exits nonzero on any unwaived violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsj_lint::{
    baseline_ids, diff_baseline, is_workspace_root, lint_tree_report, render_json, render_waivers,
    Mode, Report, Rule,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dsj-lint [PATH] [--format human|json] [--waivers]
                [--baseline FILE] [--only RULE[,RULE..]]

Lints every .rs file under PATH (default: the enclosing workspace root).
A PATH whose Cargo.toml declares [workspace] gets the workspace path rules
(including the configured hot-path roots); any other directory is linted
in fixture mode (every rule armed, marker-derived hot-path roots only).

  --format human|json   output format (default: human). JSON output is
                        byte-stable across runs and carries stable finding
                        ids of the form <rule>@<file>:<line>.
  --waivers             report-only waiver audit: list every
                        `dsj-lint: allow(..)` pragma with its hit count,
                        then exit 0.
  --baseline FILE       diff mode: FILE is a previous `--format json`
                        report; fail (exit 1) only on findings NOT in it,
                        printing `+ id` for each new finding and `- id`
                        for each baseline entry the tree no longer
                        produces (prune those from the baseline).
  --only RULE[,RULE..]  restrict the run to the named rule ids; findings
                        and waivers for every other rule are dropped.

exit codes: 0 clean, 1 unwaived violations, 2 usage/IO error";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

struct Args {
    path: Option<PathBuf>,
    format: Format,
    waivers_only: bool,
    baseline: Option<PathBuf>,
    only: Option<Vec<Rule>>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        path: None,
        format: Format::Human,
        waivers_only: false,
        baseline: None,
        only: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--format" => {
                parsed.format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `human` or `json`, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--waivers" => parsed.waivers_only = true,
            "--baseline" => {
                parsed.baseline = match it.next() {
                    Some(p) => Some(PathBuf::from(p)),
                    None => return Err("--baseline expects a report file path".to_string()),
                };
            }
            "--only" => {
                let list = match it.next() {
                    Some(l) => l,
                    None => return Err("--only expects a comma-separated rule list".to_string()),
                };
                let mut rules = Vec::new();
                for id in list.split(',').filter(|s| !s.is_empty()) {
                    match Rule::parse(id) {
                        Some(r) => rules.push(r),
                        None => return Err(format!("--only: unknown rule id `{id}`")),
                    }
                }
                if rules.is_empty() {
                    return Err("--only expects at least one rule id".to_string());
                }
                parsed.only = Some(rules);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path if parsed.path.is_none() => parsed.path = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra argument `{extra}`")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dsj-lint: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args.path {
        Some(p) => p,
        None => match find_workspace_root() {
            Some(p) => p,
            None => {
                eprintln!("dsj-lint: no enclosing workspace root found");
                return ExitCode::from(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("dsj-lint: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mode = if is_workspace_root(&root) {
        Mode::Workspace
    } else {
        Mode::Fixture
    };
    let mut report = match lint_tree_report(&root, mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dsj-lint: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(only) = &args.only {
        report.findings.retain(|f| only.contains(&f.rule));
        report.waivers.retain(|w| only.contains(&w.rule));
    }

    if args.waivers_only {
        print!("{}", render_waivers(&report));
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => baseline_ids(&s),
            Err(e) => {
                eprintln!("dsj-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (added, removed) = diff_baseline(&baseline, &report);
        for id in &added {
            println!("+ {id}");
        }
        for id in &removed {
            println!("- {id}");
        }
        println!(
            "dsj-lint ({}): {} new finding(s), {} resolved since baseline",
            report.mode.name(),
            added.len(),
            removed.len()
        );
        return if added.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    match args.format {
        Format::Json => print!("{}", render_json(&report)),
        Format::Human => print_human(&report),
    }
    let violations = report.findings.iter().filter(|f| f.is_violation()).count();
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_human(report: &Report) {
    let violations: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.is_violation())
        .collect();
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.is_violation())
        .collect();
    for f in &violations {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !waived.is_empty() {
        println!("waivers ({}):", waived.len());
        for f in &waived {
            println!(
                "  {}:{}: [{}] waived — {}",
                f.file,
                f.line,
                f.rule,
                f.waiver.as_deref().unwrap_or("")
            );
        }
    }
    println!(
        "dsj-lint ({}): {} violation(s), {} waiver(s)",
        report.mode.name(),
        violations.len(),
        waived.len()
    );
}

/// Walks up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
