//! The `dsj-lint` binary: lints the workspace (or a fixture directory)
//! and exits nonzero on any unwaived violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsj_lint::{is_workspace_root, lint_tree, Mode};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dsj-lint [PATH]

Lints every .rs file under PATH (default: the enclosing workspace root).
A PATH whose Cargo.toml declares [workspace] gets the workspace path rules;
any other directory is linted in fixture mode (every rule armed).

exit codes: 0 clean, 1 unwaived violations, 2 usage/IO error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => match find_workspace_root() {
            Some(p) => p,
            None => {
                eprintln!("dsj-lint: no enclosing workspace root found");
                return ExitCode::from(2);
            }
        },
        [p] if p != "-h" && p != "--help" => PathBuf::from(p),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !root.is_dir() {
        eprintln!("dsj-lint: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mode = if is_workspace_root(&root) {
        Mode::Workspace
    } else {
        Mode::Fixture
    };
    let findings = match lint_tree(&root, mode) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dsj-lint: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let violations: Vec<_> = findings.iter().filter(|f| f.is_violation()).collect();
    let waived: Vec<_> = findings.iter().filter(|f| !f.is_violation()).collect();

    for f in &violations {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !waived.is_empty() {
        println!("waivers ({}):", waived.len());
        for f in &waived {
            println!(
                "  {}:{}: [{}] waived — {}",
                f.file,
                f.line,
                f.rule,
                f.waiver.as_deref().unwrap_or("")
            );
        }
    }
    let mode_name = match mode {
        Mode::Workspace => "workspace",
        Mode::Fixture => "fixture",
    };
    println!(
        "dsj-lint ({mode_name}): {} violation(s), {} waiver(s)",
        violations.len(),
        waived.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
