//! The repo-specific rule passes and the waiver-pragma machinery.

use crate::lex::{self, Comment, Token, TokenKind};
use std::fmt;

/// Every rule `dsj-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` / `.expect(..)` / `panic!` / `todo!` / `unimplemented!`
    /// in library code (tests, benches and examples are exempt).
    Panic,
    /// `HashMap`/`HashSet` in a deterministic path — their iteration order
    /// varies run to run, which breaks byte-identical reproduction.
    HashIter,
    /// `Instant::now` / `SystemTime` outside the allowlisted timing
    /// modules — wall clocks must never leak into simulated results.
    WallClock,
    /// Unseeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`).
    UnseededRng,
    /// `==`/`!=` against a floating-point literal; use an epsilon
    /// comparison helper instead.
    FloatEq,
    /// A crate root missing `#![forbid(unsafe_code)]` or
    /// `#![warn(missing_docs)]`.
    CrateAttrs,
    /// A heap allocation reachable from a hot-path root (call-graph pass).
    HotPathAlloc,
    /// A panic construct reachable from a hot-path root, transitively.
    HotPathPanic,
    /// A nondeterminism source (unseeded RNG, `HashMap` iteration, wall
    /// clock) reachable from a hot-path root.
    HotPathNondet,
    /// A call the hot-path resolver cannot follow (trait object, closure,
    /// unknown std method) — or a resolvable call deliberately cut from
    /// traversal by a waiver pragma.
    HotPathOpaque,
    /// A cycle in the may-hold-while-acquiring lock graph — two code paths
    /// that take the same named locks in opposite orders can deadlock
    /// (concurrency pass, [`crate::concurrency`]).
    LockOrder,
    /// A lock guard held across a blocking call (`send`/`recv`/`read`/
    /// `write`/`join`/`accept`, see [`crate::concurrency::BLOCKING_CALLS`]).
    GuardBlocking,
    /// An `in_flight.fetch_add` whose increment can escape without a
    /// matching `fetch_sub` (early-return leak, increment-after-visibility,
    /// or a counter with no decrement side at all) — breaks the quiescence
    /// invariant the live harness rests on.
    InFlightBalance,
    /// A wire enum variant (`Msg`/`SummaryPayload`) missing from one of
    /// its four mandatory homes: encode arm, decode arm, `wire_bytes`
    /// accounting arm, engine handling arm ([`crate::protocol`]).
    WireExhaustive,
    /// An `Ordering::Relaxed` load used as the sole gate before a side
    /// effect without an Acquire-or-stronger RMW confirming it on every
    /// path, or a thread kick (`unpark`) not preceded by a strong flag
    /// write ([`crate::atomics`]).
    AtomicProtocol,
    /// A long-lived `self` field pushed/extended on a loop-reachable
    /// path with no drain/clear/truncate/bound for it anywhere in the
    /// tree ([`crate::growth`]).
    UnboundedGrowth,
    /// A malformed or unused `dsj-lint: allow(..)` pragma. Cannot itself
    /// be waived.
    Pragma,
}

/// All waivable rules, in reporting order.
pub const RULES: [Rule; 16] = [
    Rule::Panic,
    Rule::HashIter,
    Rule::WallClock,
    Rule::UnseededRng,
    Rule::FloatEq,
    Rule::CrateAttrs,
    Rule::HotPathAlloc,
    Rule::HotPathPanic,
    Rule::HotPathNondet,
    Rule::HotPathOpaque,
    Rule::LockOrder,
    Rule::GuardBlocking,
    Rule::InFlightBalance,
    Rule::WireExhaustive,
    Rule::AtomicProtocol,
    Rule::UnboundedGrowth,
];

impl Rule {
    /// The rule's stable identifier, as used in waiver pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::FloatEq => "float-eq",
            Rule::CrateAttrs => "crate-attrs",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::HotPathNondet => "hot-path-nondet",
            Rule::HotPathOpaque => "hot-path-opaque-call",
            Rule::LockOrder => "lock-order",
            Rule::GuardBlocking => "guard-across-blocking",
            Rule::InFlightBalance => "in-flight-balance",
            Rule::WireExhaustive => "wire-exhaustive",
            Rule::AtomicProtocol => "atomic-protocol",
            Rule::UnboundedGrowth => "unbounded-growth",
            Rule::Pragma => "pragma",
        }
    }

    /// Parses a rule id (the name inside `allow(..)`).
    pub fn parse(id: &str) -> Option<Rule> {
        RULES.iter().copied().find(|r| r.id() == id)
    }

    /// `true` for the transitive hot-path rule family, which only the
    /// whole-tree pass ([`crate::lint_tree`]) can produce — single-file
    /// linting never treats their pragmas as stale.
    pub fn is_hot_path(self) -> bool {
        matches!(
            self,
            Rule::HotPathAlloc | Rule::HotPathPanic | Rule::HotPathNondet | Rule::HotPathOpaque
        )
    }

    /// `true` for every rule only the whole-tree pass can produce — the
    /// hot-path family plus the v3 concurrency/protocol families. Their
    /// pragmas are never reported stale by single-file linting.
    pub fn is_tree_level(self) -> bool {
        self.is_hot_path()
            || matches!(
                self,
                Rule::LockOrder
                    | Rule::GuardBlocking
                    | Rule::InFlightBalance
                    | Rule::WireExhaustive
                    | Rule::AtomicProtocol
                    | Rule::UnboundedGrowth
            )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation (or waived violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// `Some(reason)` when a pragma waived this finding.
    pub waiver: Option<String>,
}

impl Finding {
    /// `true` when this finding still fails the build.
    pub fn is_violation(&self) -> bool {
        self.waiver.is_none()
    }
}

/// How a file is treated by the path-sensitive rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Test/bench/example code: exempt from `panic`, `wall-clock`,
    /// `float-eq` and `hash-iter` (but not `unseeded-rng`).
    pub exempt_code: bool,
    /// Inside a deterministic path: `hash-iter` applies.
    pub deterministic: bool,
    /// Allowlisted timing module: `wall-clock` does not apply.
    pub wall_clock_allowed: bool,
    /// A crate root (`src/lib.rs`): `crate-attrs` applies.
    pub crate_root: bool,
}

/// Paths (workspace-relative, `/`-separated prefixes) whose iteration
/// order feeds reproduced results: the simulator, the streaming substrate,
/// and the routing/flow layers of the core algorithms.
pub const DETERMINISTIC_PATHS: [&str; 4] = [
    "crates/simnet/src",
    "crates/stream/src",
    "crates/core/src/strategy",
    "crates/core/src/flow.rs",
];

/// Modules allowed to read wall clocks: observability timers and
/// benchmark/live-runtime measurement code.
pub const WALL_CLOCK_ALLOWLIST: [&str; 7] = [
    "crates/core/src/obs.rs",
    "crates/runtime/src/cluster.rs",
    "crates/runtime/src/harness.rs",
    "crates/runtime/src/tcp.rs",
    "crates/bench/src/table1.rs",
    "crates/bench/src/suite.rs",
    "crates/bench/src/hotpath.rs",
];

/// Classifies a workspace-relative path for the path-sensitive rules.
pub fn classify_workspace(relpath: &str) -> FileClass {
    let exempt_code = relpath
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    FileClass {
        exempt_code,
        deterministic: DETERMINISTIC_PATHS.iter().any(|p| relpath.starts_with(p)),
        wall_clock_allowed: WALL_CLOCK_ALLOWLIST.contains(&relpath),
        crate_root: relpath == "src/lib.rs"
            || (relpath.starts_with("crates/") && relpath.ends_with("/src/lib.rs")),
    }
}

/// Fixture classification: every rule is live (used by the self-test
/// fixtures and when pointing `dsj-lint` at an arbitrary directory).
pub fn classify_fixture(relpath: &str) -> FileClass {
    FileClass {
        exempt_code: false,
        deterministic: true,
        wall_clock_allowed: false,
        crate_root: relpath.ends_with("src/lib.rs"),
    }
}

/// A parsed `// dsj-lint: allow(<rule>) — <reason>` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma sits on (it also covers the next line).
    pub line: u32,
    /// The rule this pragma waives.
    pub rule: Rule,
    /// The mandatory justification after the `)`.
    pub reason: String,
}

/// Lints one file's source. `relpath` is used for reporting and for the
/// path-sensitive rules via `class`.
///
/// This is the single-file view: the transitive hot-path rules need the
/// whole tree and only fire from [`crate::lint_tree`], so hot-path
/// pragmas are never reported stale here.
pub fn lint_source(relpath: &str, source: &str, class: FileClass) -> Vec<Finding> {
    let scan = lex::scan(source);
    let mut findings = token_findings(relpath, &scan, class);
    let (pragmas, mut pragma_findings) = parse_pragmas(relpath, &scan.comments);
    let mut hits = vec![0usize; pragmas.len()];
    apply_waivers(&mut findings, &pragmas, &mut hits);
    for (k, p) in pragmas.iter().enumerate() {
        if hits[k] == 0 && !p.rule.is_tree_level() {
            pragma_findings.push(stale_pragma_finding(relpath, p));
        }
    }
    findings.append(&mut pragma_findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// The token-level rule passes over one scanned file — no pragma handling,
/// no waiver application.
pub fn token_findings(relpath: &str, scan: &lex::Scan, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    let test_regions = test_regions(&scan.tokens);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let toks = &scan.tokens;
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) => Some(p.as_str()),
            _ => None,
        }
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        let exempt = class.exempt_code || in_test(line);
        match &toks[i].kind {
            TokenKind::Ident(name) => match name.as_str() {
                "unwrap" | "expect"
                    if !exempt
                        && punct(i + 1) == Some("(")
                        && matches!(punct(i.wrapping_sub(1)), Some(".") | Some("::")) =>
                {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::Panic,
                        message: format!(
                            "`.{name}(..)` in library code — return the crate's typed error \
                             (or restructure so the invariant is unreachable)"
                        ),
                        waiver: None,
                    });
                }
                "panic" | "todo" | "unimplemented" if !exempt && punct(i + 1) == Some("!") => {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::Panic,
                        message: format!(
                            "`{name}!` in library code — errors must flow through typed error \
                             values, not node-thread panics"
                        ),
                        waiver: None,
                    });
                }
                "HashMap" | "HashSet" if class.deterministic && !exempt => {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::HashIter,
                        message: format!(
                            "`{name}` in a deterministic path — iteration order varies per \
                             process; use `BTreeMap`/`BTreeSet` or explicitly sorted iteration"
                        ),
                        waiver: None,
                    });
                }
                "SystemTime" if !class.wall_clock_allowed && !exempt => {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::WallClock,
                        message: "`SystemTime` outside the timing allowlist — results must \
                                  depend only on virtual time"
                            .to_string(),
                        waiver: None,
                    });
                }
                "Instant"
                    if !class.wall_clock_allowed
                        && !exempt
                        && punct(i + 1) == Some("::")
                        && ident(i + 2) == Some("now") =>
                {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::WallClock,
                        message: "`Instant::now` outside the timing allowlist — wall clocks \
                                  must not leak into reproduced results"
                            .to_string(),
                        waiver: None,
                    });
                }
                "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" => {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::UnseededRng,
                        message: format!(
                            "`{name}` constructs an unseeded RNG — every stream must derive \
                             from an explicit seed (`StdRng::seed_from_u64`, `derive_seed`)"
                        ),
                        waiver: None,
                    });
                }
                _ => {}
            },
            TokenKind::Punct(op) if (op == "==" || op == "!=") && !exempt => {
                let float_neighbor =
                    matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.kind),
                        Some(TokenKind::Float)
                    ) || matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::Float));
                if float_neighbor {
                    findings.push(Finding {
                        file: relpath.to_string(),
                        line,
                        rule: Rule::FloatEq,
                        message: format!(
                            "float `{op}` comparison — use an epsilon helper \
                             (e.g. `dsj_dft::approx_eq`) instead of exact equality"
                        ),
                        waiver: None,
                    });
                }
            }
            _ => {}
        }
    }

    if class.crate_root {
        for (attr, inner) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
            if !has_crate_attr(toks, attr, inner) {
                findings.push(Finding {
                    file: relpath.to_string(),
                    line: 1,
                    rule: Rule::CrateAttrs,
                    message: format!("crate root missing `#![{attr}({inner})]`"),
                    waiver: None,
                });
            }
        }
    }

    findings
}

/// Applies waivers in place: a pragma covers findings of its rule on its
/// own line and on the next line (so it can sit at the end of the
/// offending line or on its own line just above). `hits[k]` counts how
/// many findings pragma `k` waived — zero means the pragma is stale.
pub fn apply_waivers(findings: &mut [Finding], pragmas: &[Pragma], hits: &mut [usize]) {
    for f in findings {
        if let Some((k, p)) = pragmas
            .iter()
            .enumerate()
            .find(|(_, p)| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        {
            f.waiver = Some(p.reason.clone());
            hits[k] += 1;
        }
    }
}

/// The finding reported for a pragma that waived nothing.
pub fn stale_pragma_finding(relpath: &str, p: &Pragma) -> Finding {
    Finding {
        file: relpath.to_string(),
        line: p.line,
        rule: Rule::Pragma,
        message: format!(
            "stale pragma: `allow({})` waives nothing on this or the next line",
            p.rule
        ),
        waiver: None,
    }
}

/// Extracts well-formed pragmas and reports malformed ones as findings.
/// `// dsj-lint: hot-path` markers are a separate mechanism (handled by
/// [`crate::parse`]) and pass through silently.
pub fn parse_pragmas(relpath: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim_start().strip_prefix("dsj-lint:") else {
            continue;
        };
        if rest.trim() == crate::parse::HOT_MARKER {
            continue;
        }
        let bad = |msg: &str| Finding {
            file: relpath.to_string(),
            line: c.line,
            rule: Rule::Pragma,
            message: msg.to_string(),
            waiver: None,
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            findings.push(bad(
                "malformed pragma: expected `dsj-lint: allow(<rule>) — <reason>`",
            ));
            continue;
        };
        let Some((id, reason)) = rest.split_once(')') else {
            findings.push(bad("malformed pragma: unclosed `allow(`"));
            continue;
        };
        let Some(rule) = Rule::parse(id.trim()) else {
            findings.push(bad(&format!(
                "unknown rule `{}` in pragma (known: {})",
                id.trim(),
                RULES.map(Rule::id).join(", ")
            )));
            continue;
        };
        let reason = reason
            .trim_start_matches(|ch: char| ch.is_whitespace() || matches!(ch, '—' | '-' | ':'))
            .trim()
            .to_string();
        if reason.is_empty() {
            findings.push(bad("pragma without a reason: every waiver must say why"));
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            rule,
            reason,
        });
    }
    (pragmas, findings)
}

/// Line ranges covered by `#[cfg(test)]` items (inclusive).
fn test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let punct = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) => Some(p.as_str()),
            _ => None,
        }
    };
    let ident_is = |i: usize, s: &str| -> bool {
        matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(x)) if x == s)
    };
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = punct(i) == Some("#")
            && punct(i + 1) == Some("[")
            && ident_is(i + 2, "cfg")
            && punct(i + 3) == Some("(")
            && ident_is(i + 4, "test")
            && punct(i + 5) == Some(")")
            && punct(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while punct(j) == Some("#") && punct(j + 1) == Some("[") {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match punct(j) {
                    Some("[") => depth += 1,
                    Some("]") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Find the item's body: the first `{` before a top-level `;`.
        let mut depth = 0i32;
        let mut body = None;
        while j < toks.len() {
            match punct(j) {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some(";") if depth == 0 => break,
                Some("{") if depth == 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body {
            let start_line = toks[i].line;
            let mut braces = 0i32;
            let mut k = open;
            let mut end_line = toks[open].line;
            while k < toks.len() {
                match punct(k) {
                    Some("{") => braces += 1,
                    Some("}") => {
                        braces -= 1;
                        if braces == 0 {
                            end_line = toks[k].line;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if braces != 0 {
                end_line = toks.last().map_or(end_line, |t| t.line);
            }
            regions.push((start_line, end_line));
            i = k.max(i + 1);
        } else {
            i = j.max(i + 1);
        }
    }
    regions
}

/// Looks for `#![attr(inner)]` anywhere in the token stream.
fn has_crate_attr(toks: &[Token], attr: &str, inner: &str) -> bool {
    let punct = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) => Some(p.as_str()),
            _ => None,
        }
    };
    let ident_is = |i: usize, s: &str| -> bool {
        matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(x)) if x == s)
    };
    (0..toks.len().saturating_sub(7)).any(|i| {
        punct(i) == Some("#")
            && punct(i + 1) == Some("!")
            && punct(i + 2) == Some("[")
            && ident_is(i + 3, attr)
            && punct(i + 4) == Some("(")
            && ident_is(i + 5, inner)
            && punct(i + 6) == Some(")")
            && punct(i + 7) == Some("]")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Finding> {
        lint_source(
            "crates/x/src/a.rs",
            src,
            classify_workspace("crates/x/src/a.rs"),
        )
    }

    fn det(src: &str) -> Vec<Finding> {
        lint_source(
            "crates/simnet/src/a.rs",
            src,
            classify_workspace("crates/simnet/src/a.rs"),
        )
    }

    #[test]
    fn unwrap_flagged_in_library_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_lib(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Panic);
        // The same code inside #[cfg(test)] passes.
        let test_src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}";
        assert!(lint_lib(test_src).is_empty());
        // unwrap_or_else is not unwrap.
        assert!(lint_lib("fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }").is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        for m in ["panic!(\"boom\")", "todo!()", "unimplemented!()"] {
            let src = format!("fn f() {{ {m} }}");
            let f = lint_lib(&src);
            assert_eq!(f.len(), 1, "{m}");
            assert_eq!(f[0].rule, Rule::Panic);
        }
        // assert! remains allowed: it documents a contract.
        assert!(lint_lib("fn f(x: u32) { assert!(x > 0); }").is_empty());
    }

    #[test]
    fn hash_iter_only_in_deterministic_paths() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32,u32> = HashMap::new(); }";
        assert!(det(src).iter().all(|f| f.rule == Rule::HashIter));
        assert_eq!(det(src).len(), 3);
        // Outside the deterministic paths HashMap is fine.
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn wall_clock_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(lint_lib(src).len(), 1);
        assert_eq!(lint_lib(src)[0].rule, Rule::WallClock);
        let allowed = lint_source(
            "crates/core/src/obs.rs",
            src,
            classify_workspace("crates/core/src/obs.rs"),
        );
        assert!(allowed.is_empty());
        // Storing an Instant handed in from outside is fine; only ::now is
        // construction.
        assert!(lint_lib("struct S { t: Instant }").is_empty());
    }

    #[test]
    fn unseeded_rng_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let r = rand::thread_rng(); }\n}";
        let f = lint_lib(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnseededRng);
    }

    #[test]
    fn float_eq_flagged() {
        let f = lint_lib("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatEq);
        assert!(lint_lib("fn f(x: u64) -> bool { x == 0 }").is_empty());
        let g = lint_lib("fn f(x: f64) -> bool { 1.5 != x }");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn crate_attrs_required_at_roots() {
        let bare = "//! Docs.\npub fn f() {}";
        let f = lint_source(
            "crates/x/src/lib.rs",
            bare,
            classify_workspace("crates/x/src/lib.rs"),
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::CrateAttrs));
        let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(lint_source(
            "crates/x/src/lib.rs",
            good,
            classify_workspace("crates/x/src/lib.rs")
        )
        .is_empty());
        // Non-root files are not checked for attrs.
        assert!(lint_lib(bare).is_empty());
    }

    #[test]
    fn pragma_waives_same_or_next_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // dsj-lint: allow(panic) — demo";
        let f = lint_lib(same);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].waiver.as_deref(), Some("demo"));
        assert!(!f[0].is_violation());

        let above = "// dsj-lint: allow(panic) — demo\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_lib(above);
        assert_eq!(f.len(), 1);
        assert!(!f[0].is_violation());
    }

    #[test]
    fn bad_pragmas_are_findings() {
        // No reason.
        let f = lint_lib("fn f(x: Option<u32>) -> u32 { x.unwrap() } // dsj-lint: allow(panic)");
        assert!(f.iter().any(|x| x.rule == Rule::Pragma));
        assert!(f.iter().any(|x| x.rule == Rule::Panic && x.is_violation()));
        // Unknown rule.
        let f = lint_lib("fn f() {} // dsj-lint: allow(nonsense) — why");
        assert!(f.iter().any(|x| x.rule == Rule::Pragma));
        // Stale pragma that waives nothing.
        let f = lint_lib("fn f() {} // dsj-lint: allow(panic) — nothing here");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Pragma);
    }

    #[test]
    fn hot_path_marker_is_not_a_malformed_pragma() {
        assert!(lint_lib("// dsj-lint: hot-path\nfn f() {}").is_empty());
    }

    #[test]
    fn hot_path_pragmas_are_never_stale_in_single_file_mode() {
        // The hot-path rules only fire from the whole-tree pass, so a
        // single-file lint must not flag their pragmas as stale...
        let src = "fn f() {} // dsj-lint: allow(hot-path-opaque-call) — cut is tree-level";
        assert!(lint_lib(src).is_empty());
        // ...while classic-rule pragmas still go stale (pinned above in
        // `bad_pragmas_are_findings`).
    }

    #[test]
    fn fixture_mode_arms_every_rule() {
        let class = classify_fixture("hash_iter.rs");
        let f = lint_source("hash_iter.rs", "fn f() { let m = HashMap::new(); }", class);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::HashIter);
    }

    #[test]
    fn exempt_dirs_skip_panic_rule() {
        for path in [
            "crates/x/tests/t.rs",
            "crates/x/benches/b.rs",
            "examples/e.rs",
            "tests/t.rs",
        ] {
            let f = lint_source(
                path,
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
                classify_workspace(path),
            );
            assert!(f.is_empty(), "{path}");
        }
    }
}
