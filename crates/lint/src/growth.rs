//! `unbounded-growth`: long-lived struct fields that only ever grow.
//!
//! The backpressure-leak shape: a `self.<field>` collection pushed or
//! extended on a path that runs repeatedly — inside a `loop`/`while`/
//! `for` body, or in a function (transitively) called from one — while
//! *nothing in the tree* ever drains, clears, truncates, pops, retains
//! or even measures that field. Such a field is a queue with no
//! consumer: it grows until the process dies, exactly the failure mode
//! the runtime's per-link out-buffers avoid by pairing every `extend`
//! with a drain on flush.
//!
//! The check is name-based on the field (the last identifier of the
//! receiver chain, shared with the lock-attribution rules) and
//! deliberately generous about what counts as a bound: any
//! drain/clear/truncate/pop/remove/retain/take/split_off *or* a
//! `len()`/`is_empty()` observation on the same field name anywhere in
//! the scanned tree kills the finding — a measured queue is assumed to
//! be bounded by whoever measures it. What survives is the
//! pushed-everywhere-drained-nowhere residue.

use crate::callgraph::FileGraphInput;
use crate::concurrency::{self, receiver_ident, Model};
use crate::lex::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::BTreeSet;

/// Methods that grow a collection in place. Sorted for binary search.
/// `insert` is deliberately absent: keyed maps overwrite in place and
/// are bounded by their key space far more often than queues are.
const GROW_METHODS: [&str; 6] = [
    "append",
    "extend",
    "extend_from_slice",
    "push",
    "push_back",
    "push_front",
];

/// Methods (and observations) that bound a collection. Sorted.
const BOUND_METHODS: [&str; 12] = [
    "clear",
    "dedup",
    "drain",
    "is_empty",
    "len",
    "pop",
    "pop_front",
    "remove",
    "retain",
    "split_off",
    "take",
    "truncate",
];

fn punct(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(p.as_str()),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Chain adapters that return (a borrow of) an interior value of the
/// collection they were called on — skipped when resolving which field
/// actually grows or is drained, so `self.counts.entry(k).or_default()
/// .push_back(v)` attributes to `counts`, not `or_default`. Sorted.
const CHAIN_ADAPTERS: [&str; 13] = [
    "as_deref_mut",
    "as_mut",
    "back_mut",
    "entry",
    "expect",
    "front_mut",
    "get_mut",
    "last_mut",
    "or_default",
    "or_insert",
    "or_insert_with",
    "unwrap",
    "unwrap_or_else",
];

/// The struct field a grow/bound method ultimately addresses: walks the
/// receiver chain, skipping [`CHAIN_ADAPTERS`].
fn resolve_field(toks: &[Token], i: usize) -> Option<String> {
    let mut m = i;
    // Chains are finite; the cap only guards against pathological input.
    for _ in 0..16 {
        let j = receiver_ident(toks, m)?;
        let name = ident(toks, j)?;
        if CHAIN_ADAPTERS.binary_search(&name).is_ok() && j >= 1 && punct(toks, j - 1) == Some(".")
        {
            m = j;
            continue;
        }
        return Some(name.to_string());
    }
    None
}

/// Whether the receiver chain ending at the `.` before method token `i`
/// starts from `self` — the long-lived-struct-field test.
fn chain_starts_at_self(toks: &[Token], i: usize) -> bool {
    if i < 2 {
        return false;
    }
    let mut j = i - 2;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if s == "self" => return true,
            // A chain continues only through a further `.`.
            Some(TokenKind::Ident(_)) if j >= 2 && punct(toks, j - 1) == Some(".") => j -= 2,
            Some(TokenKind::Ident(_)) => return false,
            Some(TokenKind::Punct(p)) if p == "?" => {
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            Some(TokenKind::Punct(p)) if p == ")" || p == "]" => {
                let (open, close) = if p == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0i32;
                loop {
                    match punct(toks, j) {
                        Some(x) if x == close => depth += 1,
                        Some(x) if x == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            _ => return false,
        }
    }
}

/// Runs the unbounded-growth pass standalone (tests); production shares
/// the model via `analyze_model`.
pub fn analyze(files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    let model = concurrency::build_model(files);
    analyze_model(&model, files)
}

pub(crate) fn analyze_model(model: &Model, files: &[FileGraphInput<'_>]) -> Vec<Finding> {
    // Tree-wide bound evidence, by field name. Scanned over the *full*
    // token stream of every file (gated and exempt code included): a
    // drain that exists anywhere disarms the rule in the safe direction.
    let mut bounded: BTreeSet<String> = BTreeSet::new();
    for file in files {
        let toks = file.tokens;
        for i in 0..toks.len() {
            if let Some(name) = ident(toks, i) {
                if BOUND_METHODS.binary_search(&name).is_ok()
                    && punct(toks, i.wrapping_sub(1)) == Some(".")
                    && punct(toks, i + 1) == Some("(")
                {
                    if let Some(field) = resolve_field(toks, i) {
                        bounded.insert(field);
                    }
                }
            }
        }
    }

    // Functions whose bodies re-run: reachable from a call site that
    // sits inside some caller's loop body.
    let loop_called = loop_called_fixpoint(model);

    let mut findings = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for f in &model.fns {
        let toks = files[f.file].tokens;
        let rel = files[f.file].rel;
        let fn_loops = loop_called.contains(&f.key);
        let (start, end) = f.body;
        let mut i = start;
        while i < end.min(toks.len()) {
            let Some(name) = ident(toks, i) else {
                i += 1;
                continue;
            };
            if GROW_METHODS.binary_search(&name).is_err()
                || punct(toks, i.wrapping_sub(1)) != Some(".")
                || punct(toks, i + 1) != Some("(")
                || f.cfg.block_of(i).is_none()
                || !chain_starts_at_self(toks, i)
            {
                i += 1;
                continue;
            }
            if !fn_loops && !f.cfg.in_loop(i) {
                i += 1;
                continue;
            }
            let Some(field) = resolve_field(toks, i) else {
                i += 1;
                continue;
            };
            if bounded.contains(&field) {
                i += 1;
                continue;
            }
            if seen.insert((f.file, field.clone())) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: toks[i].line,
                    rule: Rule::UnboundedGrowth,
                    message: format!(
                        "`self.{field}.{name}(..)` runs on a loop-reachable path in `{}` but \
                         nothing in the tree ever drains, clears, truncates or measures \
                         `{field}` — the field grows without bound; pair the producer with a \
                         drain or an explicit cap",
                        f.display
                    ),
                    waiver: None,
                });
            }
            i += 1;
        }
    }
    findings
}

/// Fixpoint of "may execute repeatedly": seeded by callees of call
/// sites inside a loop body, closed over the call graph (a closure
/// defined in a loop re-runs too — its synthetic call site is its
/// definition token).
fn loop_called_fixpoint(model: &Model) -> BTreeSet<concurrency::Key> {
    let mut set: BTreeSet<concurrency::Key> = BTreeSet::new();
    loop {
        let mut changed = false;
        for f in &model.fns {
            let caller_loops = set.contains(&f.key);
            for c in &f.calls {
                if !caller_loops && !f.cfg.in_loop(c.tok()) {
                    continue;
                }
                for k in c.callees() {
                    if set.insert(*k) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use crate::parse::parse_items;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let scan = lex::scan(src);
        let items = parse_items(&scan);
        let input = FileGraphInput {
            rel: "a.rs",
            tokens: &scan.tokens,
            items: &items,
            exempt: false,
            cut_lines: Vec::new(),
        };
        analyze(&[input])
    }

    #[test]
    fn method_tables_are_sorted_for_binary_search() {
        assert!(GROW_METHODS.windows(2).all(|w| w[0] < w[1]));
        assert!(BOUND_METHODS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn push_in_a_loop_with_no_drain_anywhere_is_flagged() {
        let src = "impl Node {\n\
             fn run(&mut self) {\n\
             loop {\n\
             self.backlog.push(poll());\n\
             }\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnboundedGrowth);
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("backlog"), "{f:?}");
    }

    #[test]
    fn a_drained_sibling_field_is_bounded() {
        let src = "impl Node {\n\
             fn run(&mut self) {\n\
             loop {\n\
             self.backlog.push(poll());\n\
             self.flush();\n\
             }\n\
             }\n\
             fn flush(&mut self) {\n\
             for item in self.backlog.drain(..) { deliver(item); }\n\
             }\n\
             }";
        assert!(analyze_src(src).is_empty(), "{:?}", analyze_src(src));
    }

    #[test]
    fn a_measured_field_counts_as_bounded() {
        let src = "impl Node {\n\
             fn run(&mut self) {\n\
             loop {\n\
             if self.backlog.len() < CAP { self.backlog.push(poll()); }\n\
             }\n\
             }\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn push_in_a_fn_called_from_a_loop_is_loop_reachable() {
        let src = "impl Node {\n\
             fn run(&mut self) {\n\
             loop { self.enqueue(); }\n\
             }\n\
             fn enqueue(&mut self) {\n\
             self.backlog.push(poll());\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn a_one_shot_push_outside_any_loop_is_fine() {
        let src = "impl Node {\n\
             fn seed(&mut self) {\n\
             self.backlog.push(init());\n\
             }\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn local_collections_are_not_long_lived() {
        let src = "fn collect() -> Vec<u32> {\n\
             let mut out = Vec::new();\n\
             loop {\n\
             out.push(poll());\n\
             if done() { break; }\n\
             }\n\
             out\n\
             }";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn nested_field_chains_attribute_to_the_leaf_field() {
        let src = "impl Node {\n\
             fn run(&mut self, i: usize) {\n\
             loop {\n\
             self.links[i].queue.push(poll());\n\
             }\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`self.queue.push"), "{f:?}");
    }

    #[test]
    fn entry_chains_resolve_to_the_underlying_field() {
        // Growth through `.entry(k).or_default()` must attribute to
        // `counts`, which the eviction path's `remove` then bounds.
        let drained = "impl W {\n\
             fn insert(&mut self, k: u64, v: u64) {\n\
             loop {\n\
             self.counts.entry(k).or_default().push_back(v);\n\
             evict(&mut self.counts, k);\n\
             }\n\
             }\n\
             fn evict_one(&mut self, k: u64) { self.counts.remove(&k); }\n\
             }";
        assert!(
            analyze_src(drained).is_empty(),
            "{:?}",
            analyze_src(drained)
        );

        let leaky = "impl W {\n\
             fn insert(&mut self, k: u64, v: u64) {\n\
             loop {\n\
             self.counts.entry(k).or_default().push_back(v);\n\
             }\n\
             }\n\
             }";
        let f = analyze_src(leaky);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`counts`"), "{f:?}");
    }

    #[test]
    fn extend_in_a_closure_defined_in_a_loop_is_loop_reachable() {
        let src = "impl Node {\n\
             fn run(&mut self, xs: &[u32]) {\n\
             loop {\n\
             xs.iter().for_each(|x| { self.backlog.extend_from_slice(&[*x]); });\n\
             }\n\
             }\n\
             }";
        let f = analyze_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("closure"), "{f:?}");
    }
}
