//! Self-tests for the v3 concurrency & protocol rule families: each
//! seeded fixture under `fixtures/concurrency/` must fire its rule (via
//! the lib API and via the binary's exit code), the workspace must pin
//! at zero unwaived findings for all four families, and the `--baseline`
//! / `--only` binary modes must honor their contracts.

use dsj_lint::{lint_tree, lint_tree_report, Mode, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn concurrency_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/concurrency")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_concurrency_rule_fires_on_its_fixture() {
    let findings = lint_tree(&concurrency_fixtures(), Mode::Fixture).expect("walk fixtures");
    let fired = |rule: Rule, file: &str| {
        findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.is_violation())
    };
    assert!(fired(Rule::LockOrder, "lock_cycle.rs"), "{findings:?}");
    assert!(
        fired(Rule::GuardBlocking, "guard_across_send.rs"),
        "{findings:?}"
    );
    assert!(
        fired(Rule::InFlightBalance, "unbalanced_add.rs"),
        "{findings:?}"
    );
    assert!(
        fired(Rule::WireExhaustive, "missing_arm.rs"),
        "{findings:?}"
    );
}

#[test]
fn clean_variants_in_the_fixtures_stay_clean() {
    let findings = lint_tree(&concurrency_fixtures(), Mode::Fixture).expect("walk fixtures");
    // Dropping the guard before `send` releases it: `record_released`
    // sits past line 21 of guard_across_send.rs and must not be flagged.
    assert!(
        !findings
            .iter()
            .any(|f| f.file == "guard_across_send.rs" && f.line > 21),
        "{findings:?}"
    );
    // The balanced exit of `inject` pairs its add with a sub — exactly
    // one in-flight finding (the early return), not two.
    let inflight = findings
        .iter()
        .filter(|f| f.file == "unbalanced_add.rs" && f.rule == Rule::InFlightBalance)
        .count();
    assert_eq!(inflight, 1, "{findings:?}");
    // Only `Msg::Leave` is missing an engine arm.
    let wire: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::WireExhaustive)
        .collect();
    assert_eq!(wire.len(), 1, "{wire:?}");
    assert!(wire[0].message.contains("Msg::Leave"), "{wire:?}");
}

#[test]
fn lock_order_witness_names_both_orders() {
    let findings = lint_tree(&concurrency_fixtures(), Mode::Fixture).expect("walk fixtures");
    let cycle = findings
        .iter()
        .find(|f| f.rule == Rule::LockOrder)
        .expect("lock-order finding");
    assert!(cycle.message.contains("lock-order cycle"), "{cycle:?}");
    assert!(cycle.message.contains("opposite order"), "{cycle:?}");
    assert!(cycle.message.contains("alpha"), "{cycle:?}");
    assert!(cycle.message.contains("beta"), "{cycle:?}");
}

#[test]
fn binary_flags_the_concurrency_fixtures() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let out = Command::new(bin)
        .arg(concurrency_fixtures())
        .output()
        .expect("run dsj-lint on concurrency fixtures");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "lock-order",
        "guard-across-blocking",
        "in-flight-balance",
        "wire-exhaustive",
    ] {
        assert!(
            report.contains(&format!("[{rule}]")),
            "missing {rule} in:\n{report}"
        );
    }
}

#[test]
fn workspace_has_zero_unwaived_concurrency_findings() {
    let report = lint_tree_report(&workspace_root(), Mode::Workspace).expect("walk workspace");
    let bad: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::LockOrder
                    | Rule::GuardBlocking
                    | Rule::InFlightBalance
                    | Rule::WireExhaustive
            ) && f.is_violation()
        })
        .collect();
    assert!(bad.is_empty(), "{bad:#?}");
}

#[test]
fn only_flag_restricts_rules_and_baseline_diffs() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");

    // --only with a rule the fixtures never violate: clean exit.
    let out = Command::new(bin)
        .arg(concurrency_fixtures())
        .args(["--only", "hash-iter"])
        .output()
        .expect("run dsj-lint --only");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // --only with an unknown rule id is a usage error.
    let out = Command::new(bin)
        .args(["--only", "no-such-rule"])
        .output()
        .expect("run dsj-lint --only bad");
    assert_eq!(out.status.code(), Some(2));

    // An empty baseline makes every fixture finding new (exit 1, `+` lines);
    // a baseline captured from the same tree is clean (exit 0).
    let dir = workspace_root().join("target/lint-test-baselines");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "{}\n").expect("write empty baseline");
    let out = Command::new(bin)
        .arg(concurrency_fixtures())
        .arg("--baseline")
        .arg(&empty)
        .output()
        .expect("run dsj-lint --baseline empty");
    assert_eq!(out.status.code(), Some(1));
    let diff = String::from_utf8_lossy(&out.stdout);
    assert!(diff.contains("+ lock-order@lock_cycle.rs:"), "{diff}");

    let json = Command::new(bin)
        .arg(concurrency_fixtures())
        .args(["--format", "json"])
        .output()
        .expect("run dsj-lint --format json");
    let full = dir.join("full.json");
    std::fs::write(&full, &json.stdout).expect("write full baseline");
    let out = Command::new(bin)
        .arg(concurrency_fixtures())
        .arg("--baseline")
        .arg(&full)
        .output()
        .expect("run dsj-lint --baseline full");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A missing baseline file is an IO/usage error.
    let out = Command::new(bin)
        .arg(concurrency_fixtures())
        .arg("--baseline")
        .arg(dir.join("does-not-exist.json"))
        .output()
        .expect("run dsj-lint --baseline missing");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn checked_in_baseline_matches_the_workspace() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let out = Command::new(bin)
        .arg(workspace_root())
        .arg("--baseline")
        .arg(workspace_root().join("crates/lint/baseline.json"))
        .output()
        .expect("run dsj-lint --baseline on workspace");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
