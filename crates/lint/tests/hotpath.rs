//! Self-tests for the call-graph hot-path pass: every seeded fixture
//! violation must be detected (library API and binary exit codes), the
//! JSON report must be byte-stable, the workspace must self-lint clean,
//! and the PR-2 waivers must stay alive and audited.

use dsj_lint::{lint_tree_report, Mode, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn hotpath_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/hotpath")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_hot_path_rule_fires_on_its_fixture() {
    let report = lint_tree_report(&hotpath_fixtures(), Mode::Fixture).expect("walk fixtures");
    let fired = |rule: Rule, file: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.is_violation())
    };
    assert!(
        fired(Rule::HotPathAlloc, "direct_alloc.rs"),
        "{:?}",
        report.findings
    );
    assert!(fired(Rule::HotPathAlloc, "transitive_alloc.rs"));
    assert!(fired(Rule::HotPathPanic, "transitive_unwrap.rs"));
    assert!(fired(Rule::HotPathNondet, "transitive_nondet.rs"));
    assert!(fired(Rule::HotPathOpaque, "opaque_unwaived.rs"));
}

#[test]
fn transitive_alloc_is_reported_in_the_deep_helper_with_root_context() {
    let report = lint_tree_report(&hotpath_fixtures(), Mode::Fixture).expect("walk fixtures");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::HotPathAlloc && f.file == "transitive_alloc.rs")
        .expect("transitive alloc finding");
    // The finding lands on `String::from` inside `helper_two`, two call
    // edges below the marked root, and names the root it is reachable from.
    assert_eq!(f.line, 14, "{f:?}");
    assert!(f.message.contains("helper_two"), "{}", f.message);
    assert!(
        f.message
            .contains("reachable from hot-path root `root_transitive`"),
        "{}",
        f.message
    );
}

#[test]
fn waived_opaque_call_is_not_a_violation_and_the_pragma_is_not_stale() {
    let report = lint_tree_report(&hotpath_fixtures(), Mode::Fixture).expect("walk fixtures");
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "opaque_waived.rs")
        .collect();
    assert_eq!(waived.len(), 1, "{waived:?}");
    assert_eq!(waived[0].rule, Rule::HotPathOpaque);
    assert!(!waived[0].is_violation(), "{:?}", waived[0]);
    let audit = report
        .waivers
        .iter()
        .find(|w| w.file == "opaque_waived.rs")
        .expect("waiver audited");
    assert_eq!(audit.hits, 1, "{audit:?}");
}

#[test]
fn binary_exits_one_on_hotpath_fixtures() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let out = Command::new(bin)
        .arg(hotpath_fixtures())
        .output()
        .expect("run dsj-lint on hotpath fixtures");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hot-path-alloc",
        "hot-path-panic",
        "hot-path-nondet",
        "hot-path-opaque-call",
    ] {
        assert!(
            report.contains(&format!("[{rule}]")),
            "missing {rule} in:\n{report}"
        );
    }
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let run = || {
        Command::new(bin)
            .arg(hotpath_fixtures())
            .args(["--format", "json"])
            .output()
            .expect("run dsj-lint --format json")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.status.code(), Some(1));
    assert_eq!(a.stdout, b.stdout, "JSON report must be byte-stable");
    let json = String::from_utf8(a.stdout).expect("utf8 json");
    assert!(
        json.contains("\"id\": \"hot-path-alloc@direct_alloc.rs:5\""),
        "{json}"
    );
    assert!(json.contains("\"mode\": \"fixture\""), "{json}");
    assert!(json.ends_with("}\n"), "{json}");
}

#[test]
fn workspace_self_lint_has_zero_unwaived_hot_path_findings() {
    let report = lint_tree_report(&workspace_root(), Mode::Workspace).expect("lint workspace");
    let unwaived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule.is_hot_path() && f.is_violation())
        .collect();
    assert!(unwaived.is_empty(), "{unwaived:#?}");
}

#[test]
fn the_original_waivers_are_still_alive_and_audited() {
    // The three waivers shipped with the first lint pass must stay both
    // present and *live* (hits > 0) — a stale one means the code moved
    // out from under its pragma.
    let report = lint_tree_report(&workspace_root(), Mode::Workspace).expect("lint workspace");
    for (file, rule) in [
        ("crates/bench/src/bin/repro.rs", Rule::WallClock),
        ("crates/bench/src/suite.rs", Rule::Panic),
        ("crates/dft/src/sliding.rs", Rule::FloatEq),
    ] {
        let w = report
            .waivers
            .iter()
            .find(|w| w.file == file && w.rule == rule)
            .unwrap_or_else(|| panic!("waiver [{rule}] missing from {file}"));
        assert!(w.hits > 0, "stale waiver in {file}: {w:?}");
    }
    // Pin the total pragma count so waiver drift is a conscious edit here,
    // not an accident: 6 token-rule waivers (the original 3 plus the TCP
    // macro bench's abort-on-failed-cluster and the frame-decode bench's
    // two self-encoded-stream expects) + 14 hot-path cold-path escapes
    // (the transport layer added the engine's send fan-out and the two
    // live transports' wall-clock reads; the batched frame loop added the
    // summary-application boundary in `NodeEngine::on_frame`; the
    // open-loop load harness added the stamped-arrival latency record —
    // a branch closed-loop feeders never reach) + the
    // reactor's 2 guard-across-blocking escapes (nonblocking sockets:
    // `write_vectored` returns `WouldBlock` instead of blocking, and the
    // guard is what serializes writer-vs-reactor access to the queue;
    // re-audited against the CFG-based v4 pass, which now attributes the
    // block through `WriteQueue::write_coalesced` transitively) + the
    // CFG builder's 1 unbounded-growth escape (`Builder::loop_bodies`
    // is per-build() metadata, not a runtime queue — the long-lived
    // heuristic cannot see the builder's lifetime).
    assert_eq!(report.waivers.len(), 23, "{:#?}", report.waivers);
    assert!(
        report.waivers.iter().all(|w| w.hits > 0),
        "{:#?}",
        report.waivers
    );
}

#[test]
fn waivers_flag_reports_and_exits_zero_even_with_violations() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let out = Command::new(bin)
        .arg(hotpath_fixtures())
        .arg("--waivers")
        .output()
        .expect("run dsj-lint --waivers");
    assert_eq!(out.status.code(), Some(0));
    let audit = String::from_utf8_lossy(&out.stdout);
    assert!(audit.contains("waiver audit (fixture)"), "{audit}");
    assert!(
        audit.contains("opaque_waived.rs") && audit.contains("1 hit(s)"),
        "{audit}"
    );
}

#[test]
fn stale_waiver_is_a_pragma_violation_in_tree_mode() {
    // A hot-path waiver that stops matching anything must fail the lint:
    // pin the behavior with a throwaway tree holding one stale pragma.
    let dir = std::env::temp_dir().join(format!("dsj-lint-stale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("stale.rs"),
        "// dsj-lint: allow(hot-path-opaque-call) — waives nothing\npub fn quiet() -> u32 {\n    7\n}\n",
    )
    .expect("write fixture");
    let report = lint_tree_report(&dir, Mode::Fixture).expect("lint stale tree");
    std::fs::remove_dir_all(&dir).ok();
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Pragma && f.is_violation())
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.findings);
    assert!(
        stale[0].message.contains("waives nothing"),
        "{:?}",
        stale[0]
    );
}
