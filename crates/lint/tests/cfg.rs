//! Self-tests for the v4 CFG-based families: the seeded fixtures under
//! `fixtures/cfg/` must fire (and their clean siblings stay clean)
//! through both the library API and the binary's exit codes, the v3
//! textual suite's findings must remain a subset of v4's, and the whole
//! workspace must lint inside the CI runtime budget.

use dsj_lint::{finding_id, lint_tree_report, Mode, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn cfg_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/cfg")
}

fn concurrency_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/concurrency")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn branch_dependent_leak_is_reported_with_a_witness_path() {
    // The `fetch_sub` in the `Retry` arm sits textually before the
    // `Backoff` arm's return, so a linear scan sees a balanced counter;
    // only the path-sensitive proof reports the uncredited exit.
    let report = lint_tree_report(&cfg_fixtures(), Mode::Fixture).expect("walk fixtures");
    let leaks: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "branch_leak.rs")
        .collect();
    assert_eq!(leaks.len(), 1, "{leaks:#?}");
    let f = leaks[0];
    assert_eq!(f.rule, Rule::InFlightBalance);
    assert_eq!(f.line, 25, "{f:?}");
    assert!(f.is_violation(), "{f:?}");
    assert!(
        f.message.contains("witness path: lines 19 → 25"),
        "{}",
        f.message
    );
    assert!(f.message.contains("`return` early exit"), "{}", f.message);
}

#[test]
fn a_fetch_sub_hidden_in_a_closure_is_credited() {
    // v3 could not see through the closure boundary; v4 lifts the
    // closure as a sub-function and credits its definition site.
    let report = lint_tree_report(&cfg_fixtures(), Mode::Fixture).expect("walk fixtures");
    let noise: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "closure_credit.rs")
        .collect();
    assert!(noise.is_empty(), "{noise:#?}");
}

#[test]
fn a_relaxed_gate_without_a_confirming_rmw_is_flagged_once() {
    let report = lint_tree_report(&cfg_fixtures(), Mode::Fixture).expect("walk fixtures");
    let gates: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "relaxed_gate.rs")
        .collect();
    // `pump_stale` fires; `pump_confirmed` (the reactor's pre-check/swap
    // idiom) stays clean.
    assert_eq!(gates.len(), 1, "{gates:#?}");
    assert_eq!(gates[0].rule, Rule::AtomicProtocol);
    assert_eq!(gates[0].line, 14, "{:?}", gates[0]);
    assert!(
        gates[0].message.contains("Acquire-or-stronger RMW"),
        "{}",
        gates[0].message
    );
}

#[test]
fn an_unbounded_push_is_flagged_and_the_drained_sibling_is_clean() {
    let report = lint_tree_report(&cfg_fixtures(), Mode::Fixture).expect("walk fixtures");
    let growth: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "unbounded_queue.rs")
        .collect();
    assert_eq!(growth.len(), 1, "{growth:#?}");
    assert_eq!(growth[0].rule, Rule::UnboundedGrowth);
    assert!(
        growth[0].message.contains("`backlog`"),
        "{}",
        growth[0].message
    );
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.message.contains("`ledger`")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn binary_exit_codes_and_only_filter_cover_the_new_families() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");
    let out = Command::new(bin)
        .arg(cfg_fixtures())
        .output()
        .expect("run dsj-lint on cfg fixtures");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in ["in-flight-balance", "atomic-protocol", "unbounded-growth"] {
        assert!(
            text.contains(&format!("[{rule}]")),
            "missing {rule}:\n{text}"
        );
    }

    // `--only` restricted to the two new families drops the counter leak
    // but still exits 1 on the atomics and growth findings.
    let out = Command::new(bin)
        .arg(cfg_fixtures())
        .args(["--only", "atomic-protocol,unbounded-growth"])
        .output()
        .expect("run dsj-lint --only");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("[in-flight-balance]"), "{text}");
    assert!(text.contains("[atomic-protocol]"), "{text}");
    assert!(text.contains("[unbounded-growth]"), "{text}");

    // A rule the fixtures never violate exits clean.
    let out = Command::new(bin)
        .arg(cfg_fixtures())
        .args(["--only", "wire-exhaustive"])
        .output()
        .expect("run dsj-lint --only wire-exhaustive");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn the_v3_textual_findings_are_a_subset_of_v4() {
    // Every finding the v3 textual pass reported on its own fixture
    // suite must still be reported by the CFG-based pass — v4 widens
    // coverage, it must not lose it.
    let report = lint_tree_report(&concurrency_fixtures(), Mode::Fixture).expect("walk fixtures");
    let ids: BTreeSet<String> = report.findings.iter().map(finding_id).collect();
    for v3 in [
        "lock-order@lock_cycle.rs:17",
        "lock-order@lock_cycle.rs:28",
        "guard-across-blocking@guard_across_send.rs:18",
        "in-flight-balance@unbalanced_add.rs:15",
        "wire-exhaustive@missing_arm.rs:16",
    ] {
        assert!(ids.contains(v3), "v3 finding {v3} lost; have {ids:#?}");
    }
}

#[test]
fn whole_workspace_lint_fits_the_ci_runtime_budget() {
    // CI gates on dsj-lint staying interactive: the full-workspace run,
    // CFG construction and all sixteen rules included, must finish well
    // under ten seconds.
    let start = std::time::Instant::now();
    let report = lint_tree_report(&workspace_root(), Mode::Workspace).expect("lint workspace");
    let elapsed = start.elapsed();
    assert!(
        !report.findings.is_empty(),
        "workspace lint returned nothing — wrong root?"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "workspace dsj-lint took {elapsed:?}, over the 10 s budget"
    );
}
