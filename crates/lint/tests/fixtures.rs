//! Self-tests over the seeded-violation fixtures: every rule must fire on
//! its fixture, waivers must count without failing, and the binary's exit
//! codes must match the contract (0 clean, 1 violations, 2 usage).

use dsj_lint::{lint_tree, Mode, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_rule_fires_on_its_fixture() {
    let findings = lint_tree(&fixtures_dir(), Mode::Fixture).expect("walk fixtures");
    let fired = |rule: Rule, file: &str| {
        findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.is_violation())
    };
    assert!(fired(Rule::Panic, "panics.rs"), "{findings:?}");
    assert!(fired(Rule::HashIter, "hash_iter.rs"));
    assert!(fired(Rule::WallClock, "wall_clock.rs"));
    assert!(fired(Rule::UnseededRng, "unseeded_rng.rs"));
    assert!(fired(Rule::FloatEq, "float_eq.rs"));
    assert!(fired(Rule::CrateAttrs, "badcrate/src/lib.rs"));
    assert!(fired(Rule::Pragma, "bad_pragma.rs"));
}

#[test]
fn waived_fixture_counts_as_waiver_not_violation() {
    let findings = lint_tree(&fixtures_dir(), Mode::Fixture).expect("walk fixtures");
    let waived: Vec<_> = findings.iter().filter(|f| f.file == "waived.rs").collect();
    assert_eq!(waived.len(), 1, "{waived:?}");
    assert_eq!(waived[0].rule, Rule::Panic);
    assert!(!waived[0].is_violation());
    assert_eq!(
        waived[0].waiver.as_deref(),
        Some("fixture demonstrating a well-formed waiver")
    );
}

#[test]
fn binary_fails_on_fixtures_and_passes_on_workspace() {
    let bin = env!("CARGO_BIN_EXE_dsj-lint");

    let on_fixtures = Command::new(bin)
        .arg(fixtures_dir())
        .output()
        .expect("run dsj-lint on fixtures");
    assert_eq!(
        on_fixtures.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&on_fixtures.stdout)
    );
    let report = String::from_utf8_lossy(&on_fixtures.stdout);
    assert!(report.contains("(fixture)"), "{report}");
    for rule in [
        "panic",
        "hash-iter",
        "wall-clock",
        "unseeded-rng",
        "float-eq",
        "crate-attrs",
    ] {
        assert!(
            report.contains(&format!("[{rule}]")),
            "missing {rule} in:\n{report}"
        );
    }

    let on_workspace = Command::new(bin)
        .arg(workspace_root())
        .output()
        .expect("run dsj-lint on workspace");
    assert_eq!(
        on_workspace.status.code(),
        Some(0),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&on_workspace.stdout)
    );

    let usage = Command::new(bin)
        .arg("--help")
        .output()
        .expect("run dsj-lint --help");
    assert_eq!(usage.status.code(), Some(2));
}
