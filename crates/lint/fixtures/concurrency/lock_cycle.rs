// Fixture: seeded `lock-order` cycle, two functions deep. `forward`
// holds `alpha` while (via `nested_beta`) acquiring `beta`; `backward`
// holds `beta` while (via `nested_alpha`) acquiring `alpha`. Two threads
// running the two entry points in opposite orders deadlock.

use parking_lot::Mutex;

pub struct Pair {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Pair {
    pub fn forward(&self, v: u64) {
        let mut a = self.alpha.lock();
        a.push(v);
        self.nested_beta(v);
    }

    fn nested_beta(&self, v: u64) {
        let mut b = self.beta.lock();
        b.push(v);
    }

    pub fn backward(&self, v: u64) {
        let mut b = self.beta.lock();
        b.push(v);
        self.nested_alpha(v);
    }

    fn nested_alpha(&self, v: u64) {
        let mut a = self.alpha.lock();
        a.push(v);
    }
}
