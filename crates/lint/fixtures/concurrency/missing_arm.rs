// Fixture: seeded `wire-exhaustive` violation. `Msg::Leave` exists on
// the wire but the engine's `handle_message` only matches `Tuple` and
// `Summary` — the wildcard arm silently drops every leave announcement.

pub enum Msg {
    Tuple { seq: u64 },
    Summary { bytes: u64 },
    Leave { node: u16 },
}

pub struct Engine {
    handled: u64,
}

impl Engine {
    pub fn handle_message(&mut self, msg: &Msg) -> u64 {
        match msg {
            Msg::Tuple { seq } => {
                self.handled += 1;
                *seq
            }
            Msg::Summary { bytes } => *bytes,
            _ => 0,
        }
    }
}
