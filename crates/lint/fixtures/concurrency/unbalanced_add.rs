// Fixture: seeded `in-flight-balance` violation. The early return on
// the not-ready path escapes after `fetch_add` without giving the
// increment back, so a quiescence loop waiting for zero spins forever.

use std::sync::atomic::{AtomicI64, Ordering};

pub struct Feeder {
    in_flight: AtomicI64,
}

impl Feeder {
    pub fn inject(&self, ready: bool) -> Result<(), ()> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if !ready {
            return Err(());
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        Ok(())
    }
}
