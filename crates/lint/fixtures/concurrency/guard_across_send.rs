// Fixture: seeded `guard-across-blocking` violation. The `log` guard is
// still live when `send` blocks on a full channel, so every other thread
// trying to log stalls behind a channel consumer. The `released` variant
// drops the guard first and must stay clean.

use crossbeam::channel::Sender;
use parking_lot::Mutex;

pub struct Audited {
    log: Mutex<Vec<u64>>,
    tx: Sender<u64>,
}

impl Audited {
    pub fn record(&self, value: u64) {
        let mut held = self.log.lock();
        held.push(value);
        let _ = self.tx.send(value);
    }

    pub fn record_released(&self, value: u64) {
        let mut held = self.log.lock();
        held.push(value);
        drop(held);
        let _ = self.tx.send(value);
    }
}
