// Fixture: seeded `atomic-protocol` violation — a Relaxed load is the
// sole gate before the drain side effect, with nothing confirming the
// hint. `pump_confirmed` uses the reactor's pre-check/swap idiom and
// must stay clean.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Link {
    dirty: AtomicBool,
}

impl Link {
    pub fn pump_stale(&self) {
        if self.dirty.load(Ordering::Relaxed) {
            self.drain();
        }
    }

    pub fn pump_confirmed(&self) {
        if self.dirty.load(Ordering::Relaxed) && self.dirty.swap(false, Ordering::SeqCst) {
            self.drain();
        }
    }

    fn drain(&self) {}
}
