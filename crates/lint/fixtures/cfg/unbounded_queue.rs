// Fixture: seeded `unbounded-growth` violation — `backlog` is pushed on
// a loop path and nothing in the tree ever drains it. The `ledger`
// sibling is drained on flush and must stay clean.

pub struct Spool {
    backlog: Vec<u64>,
    ledger: Vec<u64>,
}

impl Spool {
    pub fn run(&mut self, feed: &[u64]) {
        for v in feed {
            self.backlog.push(*v);
            self.ledger.push(*v);
        }
        self.flush();
    }

    pub fn flush(&mut self) {
        for v in self.ledger.drain(..) {
            let _ = v;
        }
    }
}
