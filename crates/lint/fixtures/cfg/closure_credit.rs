// Fixture: the decrement hides behind a closure boundary. The v3
// textual scan could not credit it; v4 lifts the closure as a
// sub-function wired to its definition site, so this file stays clean.

use std::sync::atomic::{AtomicI64, Ordering};

pub struct Feeder {
    in_flight: AtomicI64,
}

impl Feeder {
    pub fn inject(&self, ready: bool) -> Result<(), ()> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if !ready {
            let undo = || {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
            };
            undo();
            return Err(());
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        Ok(())
    }
}
