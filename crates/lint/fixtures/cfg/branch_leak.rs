// Fixture: seeded `in-flight-balance` violation only a path-sensitive
// pass can see. A `fetch_sub` token appears textually before the second
// `return`, so the v3 linear scan judged the add balanced; the CFG
// proof sees that the `Backoff` arm's exit path carries no credit.

use std::sync::atomic::{AtomicI64, Ordering};

pub enum Verdict {
    Retry,
    Backoff,
}

pub struct Feeder {
    in_flight: AtomicI64,
}

impl Feeder {
    pub fn inject(&self, verdict: Verdict) -> Result<(), ()> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match verdict {
            Verdict::Retry => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(());
            }
            Verdict::Backoff => return Err(()),
        }
    }
}
