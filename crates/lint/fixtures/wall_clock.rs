//! Seeded `wall-clock` violations: `Instant::now` and `SystemTime` outside
//! the timing allowlist.

use std::time::{Instant, SystemTime};

fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
