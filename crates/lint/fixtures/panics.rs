//! Seeded `panic` violations: `.unwrap()` and `panic!` in library code.

fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

fn boom() {
    panic!("library code must not panic");
}
