//! A correctly waived violation: counts as a waiver, not a violation.

fn must(x: Option<u32>) -> u32 {
    // dsj-lint: allow(panic) — fixture demonstrating a well-formed waiver
    x.unwrap()
}
