//! Seeded `float-eq` violation: exact equality against a float literal.

fn is_half(x: f64) -> bool {
    x == 0.5
}
