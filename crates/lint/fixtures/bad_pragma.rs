//! Seeded `pragma` violations: an unknown rule and a stale waiver.

// dsj-lint: allow(nonsense) — no such rule
fn noop() {}

// dsj-lint: allow(panic) — nothing on this or the next line panics
fn also_noop() {}
