//! Seeded `unseeded-rng` violation: an entropy-seeded generator.

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
