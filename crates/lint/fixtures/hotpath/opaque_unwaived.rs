// Fixture: a hot-path root calling a function the resolver cannot see —
// without a waiver the conservative `hot-path-opaque-call` finding is a
// violation.

// dsj-lint: hot-path
pub fn root_opaque(x: u32) -> u32 {
    mystery_scramble(x)
}
