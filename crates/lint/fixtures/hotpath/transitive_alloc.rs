// Fixture: a hot-path root that allocates only transitively, through a
// helper two calls deep — the call-graph pass must follow both edges.

// dsj-lint: hot-path
pub fn root_transitive(n: usize) -> usize {
    helper_one(n)
}

fn helper_one(n: usize) -> usize {
    helper_two(n)
}

fn helper_two(n: usize) -> usize {
    let s = String::from("deep allocation");
    s.len() + n
}
