// Fixture: the sanctioned escape hatch — an unresolvable call inside a
// hot-path root, waived (and thereby documented) in place.

// dsj-lint: hot-path
pub fn root_waived(x: u32) -> u32 {
    // dsj-lint: allow(hot-path-opaque-call) — fixture demonstrating a documented opaque call
    mystery_scramble_waived(x)
}
