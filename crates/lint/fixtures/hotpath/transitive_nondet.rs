// Fixture: a hot-path root that reads a wall clock transitively — the
// nondeterminism sits in a callee.

// dsj-lint: hot-path
pub fn root_nondet(key: u64) -> u64 {
    jitter(key)
}

fn jitter(key: u64) -> u64 {
    let _t = Instant::now();
    key
}
