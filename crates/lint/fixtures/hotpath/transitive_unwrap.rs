// Fixture: a hot-path root that can panic only transitively — the
// `unwrap()` sits in a callee, not in the root itself.

// dsj-lint: hot-path
pub fn root_panicky(x: Option<u32>) -> u32 {
    step(x)
}

fn step(x: Option<u32>) -> u32 {
    x.unwrap()
}
