// Fixture: a hot-path root that allocates directly.

// dsj-lint: hot-path
pub fn root_direct(n: usize) -> usize {
    let mut xs = Vec::new();
    for i in 0..n {
        xs.push(i);
    }
    xs.len()
}
