//! Seeded `hash-iter` violation: `HashMap` in a deterministic path.

use std::collections::HashMap;

fn histogram(keys: &[u32]) -> HashMap<u32, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
