//! Seeded `crate-attrs` violation: a crate root missing both
//! `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.

pub fn answer() -> u32 {
    42
}
