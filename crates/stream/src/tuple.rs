//! Stream tuples and stream identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the two joined streams a tuple belongs to.
///
/// The window join is `R ⋈ S`: an `R` tuple matches `S` tuples with the
/// same join-attribute value and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StreamId {
    /// The left stream.
    R,
    /// The right stream.
    S,
}

impl StreamId {
    /// The stream this one joins against.
    #[inline]
    pub fn opposite(self) -> StreamId {
        match self {
            StreamId::R => StreamId::S,
            StreamId::S => StreamId::R,
        }
    }

    /// Both stream identities, in `[R, S]` order.
    pub const BOTH: [StreamId; 2] = [StreamId::R, StreamId::S];

    /// Dense index (`R → 0`, `S → 1`) for array-backed per-stream state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StreamId::R => 0,
            StreamId::S => 1,
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamId::R => write!(f, "R"),
            StreamId::S => write!(f, "S"),
        }
    }
}

/// A stream tuple: the join attribute plus provenance.
///
/// The join attribute (`key`) is an integer in a configured domain
/// `[0, D)` — the paper's synthetic workloads draw from `[1, 2¹⁹]`.
/// `seq` is the global arrival sequence number and doubles as the
/// deduplication tiebreak for distributed match counting: a match between
/// two tuples is attributed to the *later* (higher-`seq`) tuple probing the
/// earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Stream this tuple belongs to.
    pub stream: StreamId,
    /// Join attribute value in `[0, domain)`.
    pub key: u32,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Index of the node where the tuple originally arrived.
    pub origin: u16,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(stream: StreamId, key: u32, seq: u64, origin: u16) -> Self {
        Tuple {
            stream,
            key,
            seq,
            origin,
        }
    }

    /// Wire size of a tuple in bytes: stream tag (1) + key (4) + seq (8) +
    /// origin (2) + framing (5: the `u32` length prefix and version/kind
    /// byte of `dsj-core`'s wire codec) — 20 bytes, the unit of the
    /// bandwidth model and exactly what a bare tuple frame occupies on a
    /// real socket.
    pub const WIRE_BYTES: usize = 20;
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}[key={} @node{}]",
            self.stream, self.seq, self.key, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        assert_eq!(StreamId::R.opposite(), StreamId::S);
        assert_eq!(StreamId::S.opposite(), StreamId::R);
        for s in StreamId::BOTH {
            assert_eq!(s.opposite().opposite(), s);
        }
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(StreamId::R.index(), 0);
        assert_eq!(StreamId::S.index(), 1);
    }

    #[test]
    fn display_formats() {
        let t = Tuple::new(StreamId::R, 17, 42, 3);
        assert_eq!(t.to_string(), "R#42[key=17 @node3]");
    }

    #[test]
    fn tuple_ordering_by_seq_is_available() {
        let a = Tuple::new(StreamId::R, 1, 1, 0);
        let b = Tuple::new(StreamId::S, 1, 2, 0);
        assert!(a.seq < b.seq);
    }
}
