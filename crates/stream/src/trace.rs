//! Recording and replaying arrival traces.
//!
//! The paper's FIN and NWRK workloads are *recorded* traces replayed into
//! the system. This module gives the same capability: capture any
//! generator's output to a compact binary file and replay it later —
//! byte-identical across machines, so experiments on "real" data are
//! reproducible without shipping the generator's parameters around.
//!
//! Format: a 16-byte header (`magic`, `version`, arrival count) followed
//! by fixed 11-byte little-endian records
//! `(stream: u8, key: u32, seq_delta: implicit, node: u16, pad: u32 -> key)`.

use crate::gen::Arrival;
use crate::tuple::StreamId;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DSJTRACE";
const VERSION: u32 = 1;
/// Bytes per record: stream (1) + key (4) + node (2).
const RECORD_BYTES: usize = 7;

/// A recorded sequence of arrivals.
///
/// ```no_run
/// use dsj_stream::gen::{ArrivalGen, WorkloadKind};
/// use dsj_stream::partition::Partitioner;
/// use dsj_stream::trace::Trace;
///
/// let mut gen = ArrivalGen::new(
///     WorkloadKind::Financial,
///     Partitioner::geographic(4, 0.8),
///     1 << 12,
///     7,
/// );
/// let trace = Trace::record(&mut gen, 10_000);
/// trace.save("fin.trace")?;
/// let replayed = Trace::load("fin.trace")?;
/// assert_eq!(trace, replayed);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    arrivals: Vec<Arrival>,
}

impl Trace {
    /// Records `n` arrivals from any arrival iterator.
    pub fn record<I: Iterator<Item = Arrival>>(source: &mut I, n: usize) -> Self {
        Trace {
            arrivals: source.take(n).collect(),
        }
    }

    /// Wraps an existing arrival list.
    ///
    /// # Panics
    ///
    /// Panics if sequence numbers are not consecutive from zero — replay
    /// semantics depend on them.
    pub fn from_arrivals(arrivals: Vec<Arrival>) -> Self {
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.seq, i as u64, "trace sequence numbers must be dense");
        }
        Trace { arrivals }
    }

    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The recorded arrivals, in order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Iterates over the recorded arrivals (replay).
    pub fn iter(&self) -> impl Iterator<Item = Arrival> + '_ {
        self.arrivals.iter().copied()
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.arrivals.len() as u64).to_le_bytes())?;
        for a in &self.arrivals {
            w.write_all(&[match a.stream {
                StreamId::R => 0u8,
                StreamId::S => 1u8,
            }])?;
            w.write_all(&a.key.to_le_bytes())?;
            w.write_all(&a.node.to_le_bytes())?;
        }
        w.flush()
    }

    /// Reads a trace from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] when the header or a
    /// record is malformed.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a dsjoin trace file",
            ));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8) as usize;
        let mut arrivals = Vec::with_capacity(count.min(1 << 24));
        let mut rec = [0u8; RECORD_BYTES];
        for seq in 0..count as u64 {
            r.read_exact(&mut rec)?;
            let stream = match rec[0] {
                0 => StreamId::R,
                1 => StreamId::S,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad stream tag {other}"),
                    ))
                }
            };
            let key = u32::from_le_bytes([rec[1], rec[2], rec[3], rec[4]]);
            let node = u16::from_le_bytes([rec[5], rec[6]]);
            arrivals.push(Arrival {
                stream,
                key,
                seq,
                node,
            });
        }
        Ok(Trace { arrivals })
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = Arrival;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Arrival>>;

    fn into_iter(self) -> Self::IntoIter {
        self.arrivals.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ArrivalGen, WorkloadKind};
    use crate::partition::Partitioner;

    fn sample_gen(seed: u64) -> ArrivalGen {
        ArrivalGen::new(
            WorkloadKind::Network,
            Partitioner::geographic(4, 0.8),
            1 << 12,
            seed,
        )
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dsjoin-trace-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn record_and_replay_round_trip() {
        let mut gen = sample_gen(1);
        let trace = Trace::record(&mut gen, 1_000);
        assert_eq!(trace.len(), 1_000);
        let path = temp_path("roundtrip");
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace, loaded);
        // Replay order and contents.
        for (a, b) in trace.iter().zip(loaded.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_rejects_garbage() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"definitely not a trace").unwrap();
        let err = Trace::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::default();
        let path = temp_path("empty");
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_empty());
    }

    #[test]
    fn from_arrivals_validates_sequences() {
        let mut gen = sample_gen(2);
        let good = gen.take_vec(50);
        let trace = Trace::from_arrivals(good);
        assert_eq!(trace.len(), 50);
    }

    #[test]
    #[should_panic(expected = "trace sequence numbers must be dense")]
    fn sparse_sequences_rejected() {
        let mut gen = sample_gen(3);
        let mut arrivals = gen.take_vec(10);
        arrivals.remove(4);
        Trace::from_arrivals(arrivals);
    }
}
