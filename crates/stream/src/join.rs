//! The exact symmetric hash window join — both the per-node local join
//! operator and the global ground truth (`|Ψ|`) that the approximation
//! error `ε = (|Ψ| − |Ψ̂|)/|Ψ|` (Eqn. 1) is measured against.

use crate::tuple::{StreamId, Tuple};
use crate::window::{SlidingWindow, WindowSpec};
use serde::{Deserialize, Serialize};

/// A symmetric hash join over one `R` window and one `S` window.
///
/// Every inserted tuple first probes the opposite stream's window (emitting
/// one match per equal-key tuple already present) and is then inserted into
/// its own stream's window. This "probe then insert" order means a pair is
/// counted exactly once — at the arrival of its later tuple.
///
/// ```
/// use dsj_stream::{SymmetricHashJoin, WindowSpec, Tuple, StreamId};
///
/// let mut j = SymmetricHashJoin::new(WindowSpec::count(4));
/// assert_eq!(j.push(Tuple::new(StreamId::R, 1, 0, 0), 0), 0);
/// assert_eq!(j.push(Tuple::new(StreamId::S, 1, 1, 0), 1), 1);
/// assert_eq!(j.results(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricHashJoin {
    r: SlidingWindow,
    s: SlidingWindow,
    results: u64,
}

impl SymmetricHashJoin {
    /// Creates a join whose two windows share one bounding policy.
    pub fn new(spec: WindowSpec) -> Self {
        SymmetricHashJoin {
            r: SlidingWindow::new(spec),
            s: SlidingWindow::new(spec),
            results: 0,
        }
    }

    /// Creates a join with distinct policies per stream.
    pub fn with_specs(r_spec: WindowSpec, s_spec: WindowSpec) -> Self {
        SymmetricHashJoin {
            r: SlidingWindow::new(r_spec),
            s: SlidingWindow::new(s_spec),
            results: 0,
        }
    }

    /// The `R` window.
    #[inline]
    pub fn r_window(&self) -> &SlidingWindow {
        &self.r
    }

    /// The `S` window.
    #[inline]
    pub fn s_window(&self) -> &SlidingWindow {
        &self.s
    }

    /// Window of the given stream.
    #[inline]
    pub fn window(&self, stream: StreamId) -> &SlidingWindow {
        match stream {
            StreamId::R => &self.r,
            StreamId::S => &self.s,
        }
    }

    /// Cumulative number of matches emitted.
    #[inline]
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Probes the opposite window without inserting (used for tuples
    /// forwarded from remote nodes, which are matched but not stored).
    #[inline]
    pub fn probe(&self, tuple: &Tuple) -> u32 {
        self.window(tuple.stream.opposite()).probe(tuple.key)
    }

    /// Deduplicating probe: matches only against tuples with a smaller
    /// sequence number (see [`SlidingWindow::probe_before`]).
    #[inline]
    pub fn probe_before(&self, tuple: &Tuple) -> u32 {
        self.window(tuple.stream.opposite())
            .probe_before(tuple.key, tuple.seq)
    }

    /// Inserts a tuple at timestamp `now`, returning the number of matches
    /// it produced against the opposite window.
    pub fn push(&mut self, tuple: Tuple, now: u64) -> u32 {
        let matches = self.probe(&tuple);
        self.results += u64::from(matches);
        match tuple.stream {
            StreamId::R => self.r.insert(tuple, now),
            StreamId::S => self.s.insert(tuple, now),
        };
        matches
    }
}

/// Ground-truth accounting for the *distributed* window join: a logically
/// centralized observer that sees every node's windows instantaneously.
///
/// Node `i` holds segments `R_i`/`S_i` of window size `W` each; the
/// effective global window is `N·W` (Section 2). A pair `(a, b)` with
/// `a.seq < b.seq` is counted exactly once, at `b`'s arrival, if `a` is
/// still held in its origin node's window — the same dedup convention the
/// distributed runtime uses, so `ε` compares like with like.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    per_node: Vec<SymmetricHashJoin>,
    total: u64,
}

/// Per-arrival ground-truth outcome, split by where the matches were.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TruthMatches {
    /// Matches against the arrival node's own windows.
    pub local: u64,
    /// Matches against every other node's windows.
    pub remote: u64,
}

impl TruthMatches {
    /// Local plus remote matches.
    #[inline]
    pub fn total(&self) -> u64 {
        self.local + self.remote
    }
}

impl GroundTruth {
    /// Creates ground truth for `n` nodes with per-node window policy `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, spec: WindowSpec) -> Self {
        assert!(n > 0, "need at least one node");
        GroundTruth {
            per_node: (0..n).map(|_| SymmetricHashJoin::new(spec)).collect(),
            total: 0,
        }
    }

    /// Number of nodes tracked.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Total matches in the complete (exact) result set `|Ψ|` so far.
    #[inline]
    pub fn total_matches(&self) -> u64 {
        self.total
    }

    /// Records the arrival of `tuple` at its origin node, returning how
    /// many exact-join matches the arrival produces and where they were.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.origin` is out of range.
    pub fn observe(&mut self, tuple: Tuple, now: u64) -> TruthMatches {
        let home = tuple.origin as usize;
        assert!(home < self.per_node.len(), "origin node out of range");
        let mut m = TruthMatches::default();
        for (i, join) in self.per_node.iter().enumerate() {
            if i != home {
                m.remote += u64::from(join.probe(&tuple));
            }
        }
        // Home probe + insert; probe-then-insert counts each co-located
        // pair once.
        m.local = u64::from(self.per_node[home].push(tuple, now));
        self.total += m.remote + m.local;
        m
    }

    /// A view of node `i`'s current windows.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &SymmetricHashJoin {
        &self.per_node[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(stream: StreamId, key: u32, seq: u64, origin: u16) -> Tuple {
        Tuple::new(stream, key, seq, origin)
    }

    #[test]
    fn simple_match_counting() {
        let mut j = SymmetricHashJoin::new(WindowSpec::count(10));
        j.push(t(StreamId::R, 1, 0, 0), 0);
        j.push(t(StreamId::R, 1, 1, 0), 1);
        let m = j.push(t(StreamId::S, 1, 2, 0), 2);
        assert_eq!(m, 2, "S tuple joins both R tuples");
        assert_eq!(j.results(), 2);
    }

    #[test]
    fn same_stream_never_joins() {
        let mut j = SymmetricHashJoin::new(WindowSpec::count(10));
        j.push(t(StreamId::R, 1, 0, 0), 0);
        let m = j.push(t(StreamId::R, 1, 1, 0), 1);
        assert_eq!(m, 0);
    }

    #[test]
    fn eviction_removes_match_candidates() {
        let mut j = SymmetricHashJoin::new(WindowSpec::count(1));
        j.push(t(StreamId::R, 1, 0, 0), 0);
        j.push(t(StreamId::R, 2, 1, 0), 1); // evicts key 1
        let m = j.push(t(StreamId::S, 1, 2, 0), 2);
        assert_eq!(m, 0, "evicted tuple must not match");
    }

    #[test]
    fn matches_symmetric_in_arrival_order() {
        // R-then-S and S-then-R produce the same total.
        let mut a = SymmetricHashJoin::new(WindowSpec::count(10));
        a.push(t(StreamId::R, 5, 0, 0), 0);
        a.push(t(StreamId::S, 5, 1, 0), 1);
        let mut b = SymmetricHashJoin::new(WindowSpec::count(10));
        b.push(t(StreamId::S, 5, 0, 0), 0);
        b.push(t(StreamId::R, 5, 1, 0), 1);
        assert_eq!(a.results(), b.results());
    }

    #[test]
    fn cross_product_cardinality() {
        // 3 R-tuples and 4 S-tuples with one shared key ⇒ 12 matches.
        let mut j = SymmetricHashJoin::new(WindowSpec::count(100));
        let mut seq = 0;
        for _ in 0..3 {
            j.push(t(StreamId::R, 9, seq, 0), seq);
            seq += 1;
        }
        for _ in 0..4 {
            j.push(t(StreamId::S, 9, seq, 0), seq);
            seq += 1;
        }
        assert_eq!(j.results(), 12);
    }

    #[test]
    fn ground_truth_counts_cross_node_pairs() {
        let mut gt = GroundTruth::new(2, WindowSpec::count(10));
        gt.observe(t(StreamId::R, 1, 0, 0), 0);
        let m = gt.observe(t(StreamId::S, 1, 1, 1), 1);
        assert_eq!(m.local, 0);
        assert_eq!(m.remote, 1);
        assert_eq!(gt.total_matches(), 1);
    }

    #[test]
    fn ground_truth_counts_local_pairs_once() {
        let mut gt = GroundTruth::new(3, WindowSpec::count(10));
        gt.observe(t(StreamId::R, 1, 0, 2), 0);
        let m = gt.observe(t(StreamId::S, 1, 1, 2), 1);
        assert_eq!(m.local, 1);
        assert_eq!(m.remote, 0);
        assert_eq!(gt.total_matches(), 1);
    }

    #[test]
    fn ground_truth_equals_centralized_when_single_node() {
        let mut gt = GroundTruth::new(1, WindowSpec::count(50));
        let mut central = SymmetricHashJoin::new(WindowSpec::count(50));
        let mut total = 0u64;
        for seq in 0..500u64 {
            let stream = if seq % 2 == 0 {
                StreamId::R
            } else {
                StreamId::S
            };
            let key = (seq % 17) as u32;
            let tup = t(stream, key, seq, 0);
            total += u64::from(central.push(tup, seq));
            gt.observe(tup, seq);
        }
        assert_eq!(gt.total_matches(), total);
    }

    #[test]
    fn ground_truth_window_eviction_respected() {
        let mut gt = GroundTruth::new(2, WindowSpec::count(1));
        gt.observe(t(StreamId::R, 1, 0, 0), 0);
        gt.observe(t(StreamId::R, 2, 1, 0), 1); // evicts key 1 at node 0
        let m = gt.observe(t(StreamId::S, 1, 2, 1), 2);
        assert_eq!(m.total(), 0);
    }

    #[test]
    #[should_panic(expected = "origin node out of range")]
    fn ground_truth_bounds_checked() {
        let mut gt = GroundTruth::new(2, WindowSpec::count(1));
        gt.observe(t(StreamId::R, 1, 0, 9), 0);
    }
}
