//! Sliding windows over tuple streams.
//!
//! The paper defines windows by tuple count, time duration, or landmark and
//! notes the algorithms are agnostic to the choice (Section 1). All three
//! are implemented; the experiments use count windows like the paper's.

use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// How a window bounds the tuples it retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Keep the most recent `n` tuples.
    Count(usize),
    /// Keep tuples whose timestamp is within `span` of the newest arrival's
    /// timestamp. Timestamps are supplied at insertion.
    Time(u64),
    /// Keep every tuple since the landmark was (last) set.
    Landmark,
}

impl WindowSpec {
    /// A count window of `n` tuples.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn count(n: usize) -> Self {
        assert!(n > 0, "count window must hold at least one tuple");
        WindowSpec::Count(n)
    }
}

/// A sliding window holding tuples of a single stream, with O(1) key-count
/// probing for join evaluation.
///
/// ```
/// use dsj_stream::{SlidingWindow, WindowSpec, Tuple, StreamId};
///
/// let mut w = SlidingWindow::new(WindowSpec::count(2));
/// w.insert(Tuple::new(StreamId::R, 5, 0, 0), 0);
/// w.insert(Tuple::new(StreamId::R, 5, 1, 0), 1);
/// assert_eq!(w.probe(5), 2);
/// // Third insert evicts the first.
/// let evicted = w.insert(Tuple::new(StreamId::R, 9, 2, 0), 2);
/// assert_eq!(evicted.len(), 1);
/// assert_eq!(w.probe(5), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    spec: WindowSpec,
    buf: VecDeque<(Tuple, u64)>,
    /// Per-key ascending sequence numbers of held tuples (tuples are
    /// inserted in seq order, so each deque stays sorted). A `BTreeMap`
    /// keeps iteration order independent of hasher seeding.
    counts: BTreeMap<u32, VecDeque<u64>>,
    inserted: u64,
    evicted: u64,
    /// Tuples evicted by the most recent `insert`, reused across calls so
    /// the steady-state insert path allocates nothing.
    evict_buf: Vec<Tuple>,
    /// Join keys of `evict_buf`, in the same (oldest-first) order — what
    /// the routing layer's summary maintenance consumes.
    evict_keys: Vec<u32>,
}

impl SlidingWindow {
    /// Creates an empty window with the given bounding policy.
    pub fn new(spec: WindowSpec) -> Self {
        SlidingWindow {
            spec,
            buf: VecDeque::new(),
            counts: BTreeMap::new(),
            inserted: 0,
            evicted: 0,
            evict_buf: Vec::new(),
            evict_keys: Vec::new(),
        }
    }

    /// The window's bounding policy.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of tuples currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no tuples are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total tuples ever inserted.
    #[inline]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Total tuples ever evicted.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of held tuples whose join attribute equals `key` — the probe
    /// operation of the symmetric hash join.
    #[inline]
    pub fn probe(&self, key: u32) -> u32 {
        self.counts.get(&key).map_or(0, |seqs| seqs.len() as u32)
    }

    /// Number of held tuples with attribute `key` and sequence number
    /// strictly below `seq` — the deduplicating probe for distributed match
    /// counting (only pairs where the prober is the *later* tuple count).
    /// `O(log m)` in the number of key-matching tuples.
    pub fn probe_before(&self, key: u32, seq: u64) -> u32 {
        let Some(seqs) = self.counts.get(&key) else {
            return 0;
        };
        // The deque is sorted ascending; count entries < seq.
        let (a, b) = seqs.as_slices();
        if let Some(&first_b) = b.first() {
            if first_b < seq {
                return (a.len() + b.partition_point(|&s| s < seq)) as u32;
            }
        }
        a.partition_point(|&s| s < seq) as u32
    }

    /// Iterates over held tuples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.buf.iter().map(|(t, _)| t)
    }

    /// Inserts a tuple observed at `now` (a timestamp for time windows;
    /// ignored by count and landmark windows) and returns any evicted
    /// tuples, oldest first.
    ///
    /// The returned slice borrows an internal buffer that is overwritten
    /// by the next `insert`; [`SlidingWindow::evicted_keys`] exposes the
    /// same eviction batch as bare join keys.
    // dsj-lint: hot-path
    pub fn insert(&mut self, tuple: Tuple, now: u64) -> &[Tuple] {
        if let Some(last) = self.buf.back() {
            debug_assert!(
                last.0.seq < tuple.seq,
                "tuples must be inserted in ascending seq order"
            );
        }
        self.buf.push_back((tuple, now));
        self.counts
            .entry(tuple.key)
            .or_default()
            .push_back(tuple.seq);
        self.inserted += 1;
        self.evict_buf.clear();
        self.evict_keys.clear();
        match self.spec {
            WindowSpec::Count(n) => {
                while self.buf.len() > n {
                    let Some(t) = self.pop_oldest() else { break };
                    self.evict_buf.push(t);
                    self.evict_keys.push(t.key);
                }
            }
            WindowSpec::Time(span) => {
                while self
                    .buf
                    .front()
                    .is_some_and(|&(_, ts)| now.saturating_sub(ts) > span)
                {
                    let Some(t) = self.pop_oldest() else { break };
                    self.evict_buf.push(t);
                    self.evict_keys.push(t.key);
                }
            }
            WindowSpec::Landmark => {}
        }
        &self.evict_buf
    }

    /// Join keys of the tuples evicted by the most recent
    /// [`SlidingWindow::insert`], oldest first.
    #[inline]
    pub fn evicted_keys(&self) -> &[u32] {
        &self.evict_keys
    }

    /// Clears the window (landmark reset). Returns the evicted tuples.
    pub fn reset_landmark(&mut self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.buf.len());
        while let Some(t) = self.pop_oldest() {
            out.push(t);
        }
        out
    }

    /// Evicts the oldest held tuple, if any, keeping the per-key counts in
    /// sync with the buffer.
    fn pop_oldest(&mut self) -> Option<Tuple> {
        let (t, _) = self.buf.pop_front()?;
        if let Some(seqs) = self.counts.get_mut(&t.key) {
            // The globally oldest tuple is also the oldest for its key.
            let popped = seqs.pop_front();
            debug_assert_eq!(popped, Some(t.seq));
            if seqs.is_empty() {
                self.counts.remove(&t.key);
            }
        }
        self.evicted += 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::StreamId;

    fn t(key: u32, seq: u64) -> Tuple {
        Tuple::new(StreamId::R, key, seq, 0)
    }

    #[test]
    fn count_window_evicts_fifo() {
        let mut w = SlidingWindow::new(WindowSpec::count(3));
        for i in 0..5 {
            let ev = w.insert(t(i, i as u64), i as u64);
            if i < 3 {
                assert!(ev.is_empty());
            } else {
                assert_eq!(ev.len(), 1);
                assert_eq!(ev[0].key, i - 3);
            }
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.inserted(), 5);
        assert_eq!(w.evicted(), 2);
    }

    #[test]
    fn probe_counts_duplicates() {
        let mut w = SlidingWindow::new(WindowSpec::count(10));
        for seq in 0..4 {
            w.insert(t(7, seq), seq);
        }
        w.insert(t(9, 4), 4);
        assert_eq!(w.probe(7), 4);
        assert_eq!(w.probe(9), 1);
        assert_eq!(w.probe(1), 0);
    }

    #[test]
    fn probe_before_filters_by_seq() {
        let mut w = SlidingWindow::new(WindowSpec::count(10));
        for seq in [2u64, 5, 9] {
            w.insert(t(7, seq), seq);
        }
        assert_eq!(w.probe_before(7, 6), 2);
        assert_eq!(w.probe_before(7, 2), 0);
        assert_eq!(w.probe_before(7, 100), 3);
    }

    #[test]
    fn counts_stay_consistent_under_eviction() {
        let mut w = SlidingWindow::new(WindowSpec::count(2));
        w.insert(t(1, 0), 0);
        w.insert(t(1, 1), 1);
        w.insert(t(1, 2), 2); // evicts seq 0
        assert_eq!(w.probe(1), 2);
        w.insert(t(2, 3), 3); // evicts seq 1
        assert_eq!(w.probe(1), 1);
        w.insert(t(2, 4), 4); // evicts seq 2
        assert_eq!(w.probe(1), 0);
    }

    #[test]
    fn time_window_evicts_by_span() {
        let mut w = SlidingWindow::new(WindowSpec::Time(10));
        w.insert(t(1, 0), 100);
        w.insert(t(2, 1), 105);
        let ev = w.insert(t(3, 2), 115);
        assert_eq!(ev.len(), 1, "tuple at ts=100 falls out of span 10");
        assert_eq!(ev[0].key, 1);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn landmark_window_grows_until_reset() {
        let mut w = SlidingWindow::new(WindowSpec::Landmark);
        for i in 0..100 {
            assert!(w.insert(t(i, i as u64), i as u64).is_empty());
        }
        assert_eq!(w.len(), 100);
        let cleared = w.reset_landmark();
        assert_eq!(cleared.len(), 100);
        assert!(w.is_empty());
        assert_eq!(w.probe(5), 0);
    }

    #[test]
    fn iter_is_chronological() {
        let mut w = SlidingWindow::new(WindowSpec::count(3));
        for i in 0..5u64 {
            w.insert(t(i as u32, i), i);
        }
        let seqs: Vec<u64> = w.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "count window must hold at least one tuple")]
    fn zero_count_rejected() {
        WindowSpec::count(0);
    }
}
