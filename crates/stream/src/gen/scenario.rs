//! Stress scenarios for the load generator.
//!
//! The paper's workloads (UNI / ZIPF / FIN / NWRK) are *stationary*: their
//! key distribution and node assignment do not change over a run. Capacity
//! and latency under load are mostly determined by what happens when that
//! assumption breaks — a flash crowd concentrates traffic onto one key's
//! owner, a migrating skew invalidates every node's learned summaries, an
//! adversarial uniform phase flips the router's correlation detector into
//! its round-robin fallback. [`Scenario`] generates those non-stationary
//! schedules with the same contract as [`ArrivalGen`](super::ArrivalGen):
//! alternating `R`/`S` streams, dense sequence numbers, keys in
//! `[0, domain)` — so a scenario can be replayed through any backend as a
//! [`Trace`](crate::trace::Trace).

use super::{Arrival, KeySource, UniformSource, ZipfSource};
use crate::partition::Partitioner;
use crate::tuple::StreamId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's mild skew; scenarios use it as their baseline traffic.
const BASE_ALPHA: f64 = 0.4;

/// A non-stationary load scenario: how keys and node assignments evolve
/// over one run of `tuples` arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Stationary Zipf(0.4) over geographically partitioned nodes — the
    /// control row every other scenario is compared against.
    Steady,
    /// A flash crowd: during the middle third of the run, most arrivals
    /// collapse onto one hot key, concentrating both streams' traffic on
    /// that key's range owner.
    FlashCrowd,
    /// Skew that migrates between nodes: the Zipf head shifts through the
    /// key domain over the run, so the hot range — and the node that owns
    /// it — keeps moving. Every node's learned frequency summaries go
    /// stale in turn.
    MigratingSkew,
    /// Correlated bursts: runs of consecutive arrivals (both streams)
    /// repeat one key, an exaggerated form of the NWRK packet-train
    /// behavior. High self-join locality, bursty per-node load.
    CorrelatedBursts,
    /// An adversarial uniform phase: Zipf traffic, then a middle third of
    /// pure uniform keys (no correlation signal — the regime that flips
    /// the router's CV detector into its round-robin fallback), then Zipf
    /// again.
    AdversarialUniform,
    /// A straggler node: node 0 receives a large extra share of every
    /// key's traffic on top of its own range — the arrival-schedule model
    /// of one overloaded/slow node dragging cluster capacity down.
    Straggler,
}

impl Scenario {
    /// Every scenario, in report order.
    pub const ALL: [Scenario; 6] = [
        Scenario::Steady,
        Scenario::FlashCrowd,
        Scenario::MigratingSkew,
        Scenario::CorrelatedBursts,
        Scenario::AdversarialUniform,
        Scenario::Straggler,
    ];

    /// Short label used in load reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Steady => "STEADY",
            Scenario::FlashCrowd => "FLASH",
            Scenario::MigratingSkew => "MIGRATE",
            Scenario::CorrelatedBursts => "BURSTS",
            Scenario::AdversarialUniform => "ADV-UNI",
            Scenario::Straggler => "STRAGGLER",
        }
    }

    /// Generates the scenario's deterministic schedule: `tuples` arrivals
    /// over `n` nodes with keys in `[0, domain)`, alternating streams and
    /// dense sequence numbers, geographically partitioned with
    /// `locality` (except where the scenario itself dictates placement).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `domain == 0`, or `locality` is outside
    /// `[0, 1]`.
    pub fn arrivals(
        &self,
        n: u16,
        domain: u32,
        tuples: usize,
        locality: f64,
        seed: u64,
    ) -> Vec<Arrival> {
        // Scenario-tagged seeding: the same base seed gives each scenario
        // an unrelated draw sequence.
        let tag = match self {
            Scenario::Steady => 0x51EAD1u64,
            Scenario::FlashCrowd => 0xF1A54Cu64,
            Scenario::MigratingSkew => 0x316A7Eu64,
            Scenario::CorrelatedBursts => 0xB0A575u64,
            Scenario::AdversarialUniform => 0xADF1A7u64,
            Scenario::Straggler => 0x57A661u64,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ tag);
        let mut partitioner = Partitioner::geographic(n, locality);
        let mut zipf = ZipfSource::new(domain, BASE_ALPHA);
        let mut uniform = UniformSource::new(domain);
        // Correlated-burst state: the key being repeated and how many
        // repetitions remain.
        let mut burst_key = 0u32;
        let mut burst_left = 0usize;
        // The flash crowd's hot key sits mid-domain so its range owner is
        // an interior node.
        let hot_key = domain / 2;

        let mut out = Vec::with_capacity(tuples);
        for t in 0..tuples {
            let stream = if t % 2 == 0 { StreamId::R } else { StreamId::S };
            let in_middle_third = t >= tuples / 3 && t < 2 * tuples / 3;
            let key = match self {
                Scenario::Steady | Scenario::Straggler => zipf.next_key(stream, &mut rng),
                Scenario::FlashCrowd => {
                    if in_middle_third && rng.gen_bool(0.6) {
                        hot_key
                    } else {
                        zipf.next_key(stream, &mut rng)
                    }
                }
                Scenario::MigratingSkew => {
                    // Shift the Zipf head once per 1/n of the run: the hot
                    // range walks through every node's territory.
                    let phase = ((t as u64 * u64::from(n)) / tuples.max(1) as u64) as u32;
                    let offset =
                        (u64::from(phase) * u64::from(domain) / u64::from(n).max(1)) as u32;
                    let rank = zipf.next_key(stream, &mut rng);
                    (rank.wrapping_add(offset)) % domain
                }
                Scenario::CorrelatedBursts => {
                    if burst_left > 0 {
                        burst_left -= 1;
                        burst_key
                    } else {
                        let key = zipf.next_key(stream, &mut rng);
                        if rng.gen_bool(1.0 / 8.0) {
                            // Start a burst: repeat this key for a random
                            // train of both streams' arrivals.
                            burst_key = key;
                            burst_left = rng.gen_range(8..32);
                        }
                        key
                    }
                }
                Scenario::AdversarialUniform => {
                    if in_middle_third {
                        uniform.next_key(stream, &mut rng)
                    } else {
                        zipf.next_key(stream, &mut rng)
                    }
                }
            };
            let node = match self {
                // Node 0 absorbs a large extra share of all traffic on
                // top of its own range.
                Scenario::Straggler if rng.gen_bool(0.35) => 0,
                _ => partitioner.assign(key, domain, &mut rng),
            };
            out.push(Arrival {
                stream,
                key,
                seq: t as u64,
                node,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u16 = 4;
    const DOMAIN: u32 = 1 << 10;
    const TUPLES: usize = 6_000;

    fn arrivals(s: Scenario) -> Vec<Arrival> {
        s.arrivals(N, DOMAIN, TUPLES, 0.8, 7)
    }

    #[test]
    fn every_scenario_meets_the_schedule_contract() {
        for s in Scenario::ALL {
            let v = arrivals(s);
            assert_eq!(v.len(), TUPLES, "{s:?}");
            for (i, a) in v.iter().enumerate() {
                assert_eq!(a.seq, i as u64, "{s:?}: sequence numbers must be dense");
                assert!(a.key < DOMAIN, "{s:?}: key out of domain");
                assert!(a.node < N, "{s:?}: node out of range");
                let expect = if i % 2 == 0 { StreamId::R } else { StreamId::S };
                assert_eq!(a.stream, expect, "{s:?}: streams must alternate");
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        for s in Scenario::ALL {
            let a = s.arrivals(N, DOMAIN, TUPLES, 0.8, 7);
            let b = s.arrivals(N, DOMAIN, TUPLES, 0.8, 7);
            let c = s.arrivals(N, DOMAIN, TUPLES, 0.8, 8);
            assert_eq!(a, b, "{s:?}: same seed must reproduce");
            assert_ne!(a, c, "{s:?}: different seed must differ");
        }
    }

    #[test]
    fn flash_crowd_concentrates_the_middle_third() {
        let v = arrivals(Scenario::FlashCrowd);
        let hot = DOMAIN / 2;
        let middle = &v[TUPLES / 3..2 * TUPLES / 3];
        let hot_middle = middle.iter().filter(|a| a.key == hot).count();
        let frac = hot_middle as f64 / middle.len() as f64;
        assert!((0.5..0.7).contains(&frac), "hot share {frac}");
        // Outside the surge the hot key is just another Zipf tail value.
        let hot_early = v[..TUPLES / 3].iter().filter(|a| a.key == hot).count();
        assert!(hot_early < TUPLES / 60, "{hot_early} early hot keys");
    }

    #[test]
    fn migrating_skew_moves_the_hot_range() {
        let v = arrivals(Scenario::MigratingSkew);
        // The modal key range of the first phase and the last phase must
        // differ: the skew walked away.
        let range_of = |a: &Arrival| (u64::from(a.key) * u64::from(N) / u64::from(DOMAIN)) as u16;
        let mode = |slice: &[Arrival]| -> u16 {
            let mut counts = [0usize; N as usize];
            for a in slice {
                counts[range_of(a) as usize] += 1;
            }
            (0..N as usize).max_by_key(|&i| counts[i]).unwrap() as u16
        };
        let first = mode(&v[..TUPLES / (N as usize)]);
        let last = mode(&v[TUPLES - TUPLES / (N as usize)..]);
        assert_ne!(first, last, "hot range never migrated");
    }

    #[test]
    fn correlated_bursts_repeat_keys() {
        let v = arrivals(Scenario::CorrelatedBursts);
        let repeats = v.windows(2).filter(|w| w[0].key == w[1].key).count();
        let frac = repeats as f64 / (v.len() - 1) as f64;
        // Bursts of 8–32 started ~1/8 of the time dominate transitions;
        // plain Zipf(0.4) over a 2^10 domain repeats almost never.
        assert!(frac > 0.4, "repeat fraction {frac}");
        let steady = arrivals(Scenario::Steady);
        let steady_repeats = steady.windows(2).filter(|w| w[0].key == w[1].key).count();
        assert!(repeats > 10 * steady_repeats.max(1));
    }

    #[test]
    fn adversarial_middle_third_is_uniform() {
        let v = arrivals(Scenario::AdversarialUniform);
        // Zipf(0.4) concentrates mass on low ranks; uniform doesn't. Use
        // the share of keys in the top eighth of the domain as a cheap
        // distribution probe.
        let high_share = |slice: &[Arrival]| {
            slice
                .iter()
                .filter(|a| a.key >= DOMAIN - DOMAIN / 8)
                .count() as f64
                / slice.len() as f64
        };
        let early = high_share(&v[..TUPLES / 3]);
        let middle = high_share(&v[TUPLES / 3..2 * TUPLES / 3]);
        assert!(
            middle > 0.10 && middle < 0.15,
            "uniform middle share {middle}"
        );
        assert!(early < middle, "zipf phase should avoid the high tail");
    }

    #[test]
    fn straggler_overloads_node_zero() {
        let v = arrivals(Scenario::Straggler);
        let to_zero = v.iter().filter(|a| a.node == 0).count() as f64 / v.len() as f64;
        // 35% redirected plus node 0's own range share.
        assert!(to_zero > 0.40, "node-0 share {to_zero}");
        let steady = arrivals(Scenario::Steady);
        let steady_zero =
            steady.iter().filter(|a| a.node == 0).count() as f64 / steady.len() as f64;
        assert!(to_zero > 1.5 * steady_zero);
    }
}
