//! The ZIPF workload: keys with Zipfian popularity.
//!
//! `P(key = i) ∝ 1/(i+1)^α`. The paper's experiments use `α = 0.4` over a
//! domain of `2¹⁹` values. Sampling uses a precomputed cumulative table and
//! binary search — exact and `O(log D)` per draw.

use super::KeySource;
use crate::tuple::StreamId;
use rand::rngs::StdRng;
use rand::Rng;

/// Zipf-distributed keys over `[0, domain)`.
#[derive(Debug, Clone)]
pub struct ZipfSource {
    cdf: Vec<f64>,
    /// `cdf.last()`, cached so sampling never touches an `Option`.
    total: f64,
    domain: u32,
    alpha: f64,
}

impl ZipfSource {
    /// Creates a source with skew `alpha` over `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0` or `alpha` is negative or non-finite.
    pub fn new(domain: u32, alpha: f64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "skew must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for i in 0..domain as u64 {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        ZipfSource {
            cdf,
            total: acc,
            domain,
            alpha,
        }
    }

    /// The skew parameter.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one Zipf-distributed rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let r = rng.gen::<f64>() * self.total;
        self.cdf.partition_point(|&c| c < r) as u32
    }
}

impl KeySource for ZipfSource {
    fn next_key(&mut self, _stream: StreamId, rng: &mut StdRng) -> u32 {
        self.sample(rng)
    }

    fn domain(&self) -> u32 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rank_frequencies_follow_power_law() {
        let src = ZipfSource::new(1 << 10, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0usize; 1 << 10];
        for _ in 0..200_000 {
            counts[src.sample(&mut rng) as usize] += 1;
        }
        // With α = 1, rank 0 should appear ~8x as often as rank 7.
        let ratio = counts[0] as f64 / counts[7].max(1) as f64;
        assert!((5.0..12.0).contains(&ratio), "ratio {ratio} off from 8");
        // Monotone head.
        assert!(counts[0] > counts[3]);
        assert!(counts[3] > counts[30]);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let src = ZipfSource::new(64, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 64];
        for _ in 0..64_000 {
            counts[src.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "α=0 should be uniform: {c}");
        }
    }

    #[test]
    fn mild_skew_spreads_mass() {
        // The paper's α = 0.4 is a mild skew: the head is popular but the
        // tail still receives a large share.
        let src = ZipfSource::new(1 << 12, 0.4);
        let mut rng = StdRng::seed_from_u64(13);
        let mut head = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if src.sample(&mut rng) < (1 << 8) {
                head += 1;
            }
        }
        let frac = head as f64 / n as f64;
        assert!(
            (0.1..0.6).contains(&frac),
            "head mass {frac} implausible for α=0.4"
        );
    }

    #[test]
    fn samples_stay_in_domain() {
        let src = ZipfSource::new(100, 0.4);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10_000 {
            assert!(src.sample(&mut rng) < 100);
        }
    }

    #[test]
    #[should_panic(expected = "skew must be a non-negative finite number")]
    fn negative_alpha_rejected() {
        ZipfSource::new(10, -1.0);
    }
}
