//! The UNI workload: keys uniform over the domain.
//!
//! Uniform data is the analytic worst case for correlation-driven tuple
//! routing (Theorems 1 and 2): every node's window looks statistically like
//! every other's, so the filter probabilities carry no signal.

use super::KeySource;
use crate::tuple::StreamId;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly distributed keys.
#[derive(Debug, Clone)]
pub struct UniformSource {
    domain: u32,
}

impl UniformSource {
    /// Creates a source over `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        UniformSource { domain }
    }
}

impl KeySource for UniformSource {
    fn next_key(&mut self, _stream: StreamId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.domain)
    }

    fn domain(&self) -> u32 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_domain_roughly_evenly() {
        let mut src = UniformSource::new(16);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 16];
        for i in 0..16_000 {
            let stream = if i % 2 == 0 { StreamId::R } else { StreamId::S };
            counts[src.next_key(stream, &mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_rejected() {
        UniformSource::new(0);
    }
}
