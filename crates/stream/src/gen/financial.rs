//! The FIN workload: synthetic financial trades.
//!
//! Substitute for the paper's 1.8 M-trade real data set (see DESIGN.md §2):
//! a set of symbols with Zipf-distributed trade popularity, each following
//! an integer random-walk mid price. `R` tuples are bids (at or just below
//! mid), `S` tuples are asks (at or just above mid), so matching bids and
//! asks collide on the price attribute — the arbitrage join of the paper's
//! introduction.
//!
//! [`price_series`] additionally exposes a single symbol's tick-by-tick
//! price path — the "sample stock data stream" (`W ≈ 80 000`) whose DFT
//! compressibility Figures 5 and 6 measure.

use super::KeySource;
use crate::tuple::StreamId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic bid/ask trade stream over Zipf-popular symbols.
#[derive(Debug, Clone)]
pub struct FinancialSource {
    domain: u32,
    /// Mid price per symbol (random walk state).
    mids: Vec<f64>,
    /// Cumulative Zipf weights over symbols.
    popularity_cdf: Vec<f64>,
    /// `popularity_cdf.last()`, cached at construction.
    popularity_total: f64,
    /// Per-tick probability that a symbol's mid price moves.
    move_prob: f64,
}

impl FinancialSource {
    /// Number of traded symbols.
    pub const SYMBOLS: usize = 64;

    /// Creates a source over `[0, domain)`; initial mid prices are spread
    /// across the middle half of the domain.
    ///
    /// # Panics
    ///
    /// Panics if `domain < 8`.
    pub fn new(domain: u32, rng: &mut StdRng) -> Self {
        assert!(domain >= 8, "domain too small for a price walk");
        let lo = domain as f64 * 0.25;
        let hi = domain as f64 * 0.75;
        let mids = (0..Self::SYMBOLS).map(|_| rng.gen_range(lo..hi)).collect();
        let mut acc = 0.0;
        let popularity_cdf = (0..Self::SYMBOLS)
            .map(|i| {
                acc += 1.0 / ((i + 1) as f64);
                acc
            })
            .collect();
        FinancialSource {
            domain,
            mids,
            popularity_cdf,
            popularity_total: acc,
            move_prob: 0.2,
        }
    }

    fn pick_symbol(&self, rng: &mut StdRng) -> usize {
        let r = rng.gen::<f64>() * self.popularity_total;
        self.popularity_cdf.partition_point(|&c| c < r)
    }

    fn clamp(&self, price: f64) -> u32 {
        price.round().clamp(0.0, (self.domain - 1) as f64) as u32
    }
}

impl KeySource for FinancialSource {
    fn next_key(&mut self, stream: StreamId, rng: &mut StdRng) -> u32 {
        let sym = self.pick_symbol(rng);
        // Advance the symbol's mid price occasionally.
        if rng.gen_bool(self.move_prob) {
            let step = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let lo = self.domain as f64 * 0.05;
            let hi = self.domain as f64 * 0.95;
            self.mids[sym] = (self.mids[sym] + step).clamp(lo, hi);
        }
        let mid = self.mids[sym];
        // Bids sit at or below mid, asks at or above; half-unit offsets
        // round to colliding integers often enough for a lively join.
        let offset: f64 = rng.gen_range(0.0..1.5);
        let price = match stream {
            StreamId::R => mid - offset, // bid
            StreamId::S => mid + offset, // ask
        };
        self.clamp(price)
    }

    fn domain(&self) -> u32 {
        self.domain
    }
}

/// A single symbol's tick-by-tick integer price path: a clamped ±1 random
/// walk that moves with probability `move_prob` per tick.
///
/// With the default `move_prob = 0.02` the series has the strong
/// low-frequency energy compaction that lets Figures 5/6 compress `W ≈
/// 80 000` ticks to `W/256` DFT coefficients with `E[MSE] < 0.25`.
///
/// # Panics
///
/// Panics if `n == 0` or `move_prob` is outside `[0, 1]`.
pub fn price_series(n: usize, seed: u64, start: f64, move_prob: f64) -> Vec<f64> {
    assert!(n > 0, "series must be non-empty");
    assert!(
        (0.0..=1.0).contains(&move_prob),
        "move probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut price = start;
    (0..n)
        .map(|_| {
            if rng.gen_bool(move_prob) {
                price += if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                price = price.max(1.0);
            }
            price
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bids_and_asks_straddle_mid() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = FinancialSource::new(1 << 12, &mut rng);
        src.move_prob = 0.0; // freeze prices to observe the straddle
        let bids: Vec<u32> = (0..200)
            .map(|_| src.next_key(StreamId::R, &mut rng))
            .collect();
        let asks: Vec<u32> = (0..200)
            .map(|_| src.next_key(StreamId::S, &mut rng))
            .collect();
        let avg = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(avg(&asks) > avg(&bids), "asks should price above bids");
    }

    #[test]
    fn bid_ask_streams_actually_join() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = FinancialSource::new(1 << 12, &mut rng);
        let mut bid_keys = std::collections::BTreeSet::new();
        for _ in 0..500 {
            bid_keys.insert(src.next_key(StreamId::R, &mut rng));
        }
        let hits = (0..500)
            .filter(|_| bid_keys.contains(&src.next_key(StreamId::S, &mut rng)))
            .count();
        assert!(hits > 50, "bid/ask collision rate too low: {hits}/500");
    }

    #[test]
    fn price_series_is_a_unit_walk() {
        let s = price_series(10_000, 4, 500.0, 0.5);
        for pair in s.windows(2) {
            assert!((pair[1] - pair[0]).abs() <= 1.0);
        }
        assert!(s.iter().all(|&p| p >= 1.0));
    }

    #[test]
    fn low_move_prob_changes_rarely() {
        let s = price_series(10_000, 5, 500.0, 0.02);
        let moves = s.windows(2).filter(|p| p[0] != p[1]).count();
        assert!(
            (100..400).contains(&moves),
            "expected ~200 moves, saw {moves}"
        );
    }

    #[test]
    fn price_series_deterministic() {
        assert_eq!(
            price_series(100, 6, 500.0, 0.1),
            price_series(100, 6, 500.0, 0.1)
        );
    }

    #[test]
    #[should_panic(expected = "series must be non-empty")]
    fn empty_series_rejected() {
        price_series(0, 1, 10.0, 0.1);
    }
}
