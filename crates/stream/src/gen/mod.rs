//! Workload generators.
//!
//! Four workloads mirror the paper's Section 6:
//!
//! * **UNI** — integers uniform over the domain (the analytic worst case).
//! * **ZIPF** — Zipf-distributed integers with skew `α` (paper: `α = 0.4`).
//! * **FIN** — synthetic financial trades: random-walk integer bid/ask
//!   prices over Zipf-popular symbols (substitute for the paper's 1.8 M
//!   real trades; the paper notes real-data results track ZIPF α = 0.4).
//! * **NWRK** — synthetic packet traces: Zipf-popular flows with bursty
//!   repetition (substitute for the paper's 2.2 M packet trace).
//!
//! [`ArrivalGen`] combines a key source with a [`Partitioner`] to produce
//! the global arrival sequence consumed by the distributed runtime.

mod financial;
mod network;
mod scenario;
mod uniform;
mod zipf;

pub use financial::{price_series, FinancialSource};
pub use network::NetworkSource;
pub use scenario::Scenario;
pub use uniform::UniformSource;
pub use zipf::ZipfSource;

use crate::partition::Partitioner;
use crate::tuple::{StreamId, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which synthetic workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Uniform keys — the worst case for correlation-based filtering.
    Uniform,
    /// Zipf-distributed keys with skew `alpha`.
    Zipf {
        /// Skew parameter (the paper uses 0.4).
        alpha: f64,
    },
    /// Synthetic financial bid/ask trades (FIN).
    Financial,
    /// Synthetic network packet flows (NWRK).
    Network,
}

impl WorkloadKind {
    /// Short label used in experiment reports ("UNI", "ZIPF", ...).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "UNI",
            WorkloadKind::Zipf { .. } => "ZIPF",
            WorkloadKind::Financial => "FIN",
            WorkloadKind::Network => "NWRK",
        }
    }
}

/// A source of join-attribute values.
///
/// Implementations may correlate consecutive keys (bursts, random walks)
/// and may differentiate the `R` and `S` streams (bids vs asks).
pub trait KeySource {
    /// Draws the next key for a tuple of `stream`, in `[0, domain)`.
    fn next_key(&mut self, stream: StreamId, rng: &mut StdRng) -> u32;

    /// The attribute domain size `D`.
    fn domain(&self) -> u32;
}

enum Source {
    Uniform(UniformSource),
    Zipf(ZipfSource),
    Financial(FinancialSource),
    Network(NetworkSource),
}

impl Source {
    fn next_key(&mut self, stream: StreamId, rng: &mut StdRng) -> u32 {
        match self {
            Source::Uniform(s) => s.next_key(stream, rng),
            Source::Zipf(s) => s.next_key(stream, rng),
            Source::Financial(s) => s.next_key(stream, rng),
            Source::Network(s) => s.next_key(stream, rng),
        }
    }
}

/// One global arrival: a tuple plus the node it arrives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Stream the tuple belongs to.
    pub stream: StreamId,
    /// Join attribute value.
    pub key: u32,
    /// Global sequence number.
    pub seq: u64,
    /// Node the tuple arrives at.
    pub node: u16,
}

impl Arrival {
    /// The tuple carried by this arrival.
    pub fn tuple(&self) -> Tuple {
        Tuple::new(self.stream, self.key, self.seq, self.node)
    }
}

/// Deterministic generator of the global arrival sequence.
///
/// Streams `R` and `S` alternate tuple-by-tuple, matching the paper's model
/// where both streams flow into every node at comparable rates.
pub struct ArrivalGen {
    source: Source,
    partitioner: Partitioner,
    domain: u32,
    rng: StdRng,
    seq: u64,
    next_stream: StreamId,
}

impl ArrivalGen {
    /// Creates a generator for `kind` over `[0, domain)`, spreading tuples
    /// with `partitioner`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(kind: WorkloadKind, partitioner: Partitioner, domain: u32, seed: u64) -> Self {
        assert!(domain > 0, "attribute domain must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let source = match kind {
            WorkloadKind::Uniform => Source::Uniform(UniformSource::new(domain)),
            WorkloadKind::Zipf { alpha } => Source::Zipf(ZipfSource::new(domain, alpha)),
            WorkloadKind::Financial => Source::Financial(FinancialSource::new(domain, &mut rng)),
            WorkloadKind::Network => Source::Network(NetworkSource::new(domain, &mut rng)),
        };
        ArrivalGen {
            source,
            partitioner,
            domain,
            rng,
            seq: 0,
            next_stream: StreamId::R,
        }
    }

    /// The attribute domain size.
    #[inline]
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Number of nodes tuples are spread over.
    #[inline]
    pub fn nodes(&self) -> u16 {
        self.partitioner.nodes()
    }

    /// Produces the next arrival.
    pub fn next_arrival(&mut self) -> Arrival {
        let stream = self.next_stream;
        self.next_stream = stream.opposite();
        let key = self.source.next_key(stream, &mut self.rng);
        debug_assert!(key < self.domain);
        let node = self.partitioner.assign(key, self.domain, &mut self.rng);
        let seq = self.seq;
        self.seq += 1;
        Arrival {
            stream,
            key,
            seq,
            node,
        }
    }

    /// Produces the next `n` arrivals as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Arrival> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

impl Iterator for ArrivalGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: WorkloadKind, seed: u64) -> ArrivalGen {
        ArrivalGen::new(kind, Partitioner::uniform(4), 1 << 12, seed)
    }

    #[test]
    fn streams_alternate() {
        let mut g = gen(WorkloadKind::Uniform, 0);
        let a = g.next_arrival();
        let b = g.next_arrival();
        let c = g.next_arrival();
        assert_eq!(a.stream, StreamId::R);
        assert_eq!(b.stream, StreamId::S);
        assert_eq!(c.stream, StreamId::R);
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut g = gen(WorkloadKind::Zipf { alpha: 0.4 }, 1);
        let v = g.take_vec(10);
        for (i, a) in v.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Arrival> = gen(WorkloadKind::Financial, 7).take_vec(100);
        let b: Vec<Arrival> = gen(WorkloadKind::Financial, 7).take_vec(100);
        let c: Vec<Arrival> = gen(WorkloadKind::Financial, 8).take_vec(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_workloads_stay_in_domain() {
        for kind in [
            WorkloadKind::Uniform,
            WorkloadKind::Zipf { alpha: 0.4 },
            WorkloadKind::Financial,
            WorkloadKind::Network,
        ] {
            let mut g = gen(kind, 3);
            for a in g.take_vec(2_000) {
                assert!(a.key < (1 << 12), "{kind:?} overflowed domain");
                assert!(a.node < 4);
            }
        }
    }

    #[test]
    fn labels_match() {
        assert_eq!(WorkloadKind::Uniform.label(), "UNI");
        assert_eq!(WorkloadKind::Zipf { alpha: 0.4 }.label(), "ZIPF");
        assert_eq!(WorkloadKind::Financial.label(), "FIN");
        assert_eq!(WorkloadKind::Network.label(), "NWRK");
    }

    #[test]
    fn arrival_tuple_round_trip() {
        let a = Arrival {
            stream: StreamId::S,
            key: 9,
            seq: 3,
            node: 2,
        };
        let t = a.tuple();
        assert_eq!(t.stream, StreamId::S);
        assert_eq!(t.key, 9);
        assert_eq!(t.seq, 3);
        assert_eq!(t.origin, 2);
    }
}
