//! The NWRK workload: synthetic network packet traces.
//!
//! Substitute for the paper's 2.2 M-packet day-long trace (DESIGN.md §2):
//! packets belong to flows whose popularity is Zipf-distributed (heavy
//! hitters dominate, as in real traffic), and arrivals are bursty — a
//! packet repeats its stream's previous flow with high probability,
//! modeling back-to-back segments of one connection. The join attribute is
//! a flow identifier (think source address), scattered over the domain by
//! a fixed multiplicative permutation so hot flows are not all adjacent.

use super::KeySource;
use crate::tuple::StreamId;
use rand::rngs::StdRng;
use rand::Rng;

/// Bursty, heavy-tailed packet flow identifiers.
#[derive(Debug, Clone)]
pub struct NetworkSource {
    domain: u32,
    /// Number of distinct flows (≤ domain).
    flows: u32,
    /// Cumulative Zipf weights over flow ranks.
    flow_cdf: Vec<f64>,
    /// `flow_cdf.last()`, cached at construction.
    flow_total: f64,
    /// Probability that the next packet continues the previous flow.
    burstiness: f64,
    /// Previous key per stream (R at 0, S at 1).
    last: [Option<u32>; 2],
}

impl NetworkSource {
    /// Flow-popularity skew: real traffic is strongly heavy-tailed.
    const FLOW_ALPHA: f64 = 1.1;

    /// Creates a source over `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32, _rng: &mut StdRng) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        let flows = domain.clamp(1, 4096);
        let mut acc = 0.0;
        let flow_cdf = (0..flows as u64)
            .map(|i| {
                acc += 1.0 / ((i + 1) as f64).powf(Self::FLOW_ALPHA);
                acc
            })
            .collect();
        NetworkSource {
            domain,
            flows,
            flow_cdf,
            flow_total: acc,
            burstiness: 0.7,
            last: [None, None],
        }
    }

    /// Scatters flow rank `i` over the domain (fixed odd-multiplier
    /// permutation when the domain is a power of two, otherwise a modular
    /// spread).
    fn scatter(&self, rank: u32) -> u32 {
        ((rank as u64).wrapping_mul(2_654_435_761) % self.domain as u64) as u32
    }

    fn fresh_flow(&self, rng: &mut StdRng) -> u32 {
        let r = rng.gen::<f64>() * self.flow_total;
        let rank = self.flow_cdf.partition_point(|&c| c < r) as u32;
        self.scatter(rank.min(self.flows - 1))
    }
}

impl KeySource for NetworkSource {
    fn next_key(&mut self, stream: StreamId, rng: &mut StdRng) -> u32 {
        let slot = stream.index();
        let key = match self.last[slot] {
            Some(prev) if rng.gen_bool(self.burstiness) => prev,
            _ => self.fresh_flow(rng),
        };
        self.last[slot] = Some(key);
        key
    }

    fn domain(&self) -> u32 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bursts_repeat_previous_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = NetworkSource::new(1 << 16, &mut rng);
        let keys: Vec<u32> = (0..10_000)
            .map(|_| src.next_key(StreamId::R, &mut rng))
            .collect();
        let repeats = keys.windows(2).filter(|p| p[0] == p[1]).count();
        let frac = repeats as f64 / (keys.len() - 1) as f64;
        assert!(
            (0.6..0.85).contains(&frac),
            "burst repetition {frac} off from 0.7"
        );
    }

    #[test]
    fn heavy_hitters_dominate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = NetworkSource::new(1 << 16, &mut rng);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..50_000 {
            *counts
                .entry(src.next_key(StreamId::S, &mut rng))
                .or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / 50_000.0 > 0.4,
            "top-10 flows carry only {top10} of 50k packets"
        );
    }

    #[test]
    fn streams_burst_independently() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = NetworkSource::new(1 << 16, &mut rng);
        let r1 = src.next_key(StreamId::R, &mut rng);
        // A long run of S packets must not disturb R's burst state.
        for _ in 0..50 {
            src.next_key(StreamId::S, &mut rng);
        }
        assert_eq!(src.last[0], Some(r1));
    }

    #[test]
    fn keys_in_domain_small_domains_too() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut src = NetworkSource::new(10, &mut rng);
        for _ in 0..1_000 {
            assert!(src.next_key(StreamId::R, &mut rng) < 10);
        }
    }
}
