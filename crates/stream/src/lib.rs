//! Streaming substrate for `dsjoin`: tuples, sliding windows, the exact
//! symmetric window join (ground truth), workload generators and stream
//! partitioners.
//!
//! The paper evaluates on four workloads (Section 6): synthetic uniform
//! (UNI) and Zipfian α = 0.4 (ZIPF) integers over `[1, 2¹⁹]`, a financial
//! trades trace (FIN) and a network packet trace (NWRK). The real traces
//! are not redistributable, so [`gen`] ships synthetic equivalents whose
//! statistical shape matches what the paper reports (see DESIGN.md §2).
//!
//! ```
//! use dsj_stream::gen::{WorkloadKind, ArrivalGen};
//! use dsj_stream::partition::Partitioner;
//!
//! let mut gen = ArrivalGen::new(
//!     WorkloadKind::Zipf { alpha: 0.4 },
//!     Partitioner::geographic(4, 0.8),
//!     1 << 12,
//!     42,
//! );
//! let a = gen.next_arrival();
//! assert!(a.key < (1 << 12));
//! assert!(a.node < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod join;
pub mod partition;
pub mod trace;
pub mod tuple;
pub mod window;

pub use join::SymmetricHashJoin;
pub use tuple::{StreamId, Tuple};
pub use window::{SlidingWindow, WindowSpec};
