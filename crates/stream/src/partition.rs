//! Stream partitioning: which node a tuple arrives at.
//!
//! The paper's headline result — sub-linear message complexity — holds "in
//! domains that exhibit a geographic skew in the joining attributes"
//! (Abstract). [`Partitioner::geographic`] models exactly that: each node
//! "owns" a contiguous key range and receives mostly (but not only) tuples
//! from its range, so different nodes' windows have correlated-but-distinct
//! attribute distributions. The uniform partitioner reproduces the paper's
//! worst case, where every node looks alike.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Assignment policy of arriving tuples to nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Partitioner {
    /// Every tuple lands on a uniformly random node.
    Uniform {
        /// Number of nodes.
        nodes: u16,
    },
    /// Tuples cycle through nodes in order.
    RoundRobin {
        /// Number of nodes.
        nodes: u16,
        /// Next node to receive a tuple.
        next: u16,
    },
    /// Each node owns the key range `[i·D/N, (i+1)·D/N)`. A tuple lands on
    /// its range owner with probability `locality`, else on a random node.
    Geographic {
        /// Number of nodes.
        nodes: u16,
        /// Probability that a tuple lands on its key-range owner.
        locality: f64,
    },
}

impl Partitioner {
    /// Uniformly random assignment over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn uniform(nodes: u16) -> Self {
        assert!(nodes > 0, "need at least one node");
        Partitioner::Uniform { nodes }
    }

    /// Cyclic assignment over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn round_robin(nodes: u16) -> Self {
        assert!(nodes > 0, "need at least one node");
        Partitioner::RoundRobin { nodes, next: 0 }
    }

    /// Geographically skewed assignment: key-range owner with probability
    /// `locality`, random node otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `locality` is outside `[0, 1]`.
    pub fn geographic(nodes: u16, locality: f64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(
            (0.0..=1.0).contains(&locality),
            "locality must be a probability"
        );
        Partitioner::Geographic { nodes, locality }
    }

    /// Number of nodes this partitioner spreads over.
    pub fn nodes(&self) -> u16 {
        match *self {
            Partitioner::Uniform { nodes }
            | Partitioner::RoundRobin { nodes, .. }
            | Partitioner::Geographic { nodes, .. } => nodes,
        }
    }

    /// The node owning `key`'s range under the geographic layout.
    pub fn range_owner(key: u32, domain: u32, nodes: u16) -> u16 {
        debug_assert!(key < domain);
        ((key as u64 * nodes as u64) / domain as u64) as u16
    }

    /// Assigns the node for a tuple with join attribute `key` drawn from
    /// `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= domain`.
    pub fn assign<R: Rng>(&mut self, key: u32, domain: u32, rng: &mut R) -> u16 {
        assert!(key < domain, "key outside attribute domain");
        match self {
            Partitioner::Uniform { nodes } => rng.gen_range(0..*nodes),
            Partitioner::RoundRobin { nodes, next } => {
                let n = *next;
                *next = (*next + 1) % *nodes;
                n
            }
            Partitioner::Geographic { nodes, locality } => {
                if rng.gen_bool(*locality) {
                    Self::range_owner(key, domain, *nodes)
                } else {
                    rng.gen_range(0..*nodes)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles() {
        let mut p = Partitioner::round_robin(3);
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u16> = (0..7).map(|_| p.assign(0, 10, &mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_covers_all_nodes() {
        let mut p = Partitioner::uniform(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.assign(5, 10, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn range_owner_partitions_domain_evenly() {
        assert_eq!(Partitioner::range_owner(0, 100, 4), 0);
        assert_eq!(Partitioner::range_owner(24, 100, 4), 0);
        assert_eq!(Partitioner::range_owner(25, 100, 4), 1);
        assert_eq!(Partitioner::range_owner(99, 100, 4), 3);
    }

    #[test]
    fn full_locality_is_deterministic_ownership() {
        let mut p = Partitioner::geographic(4, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for key in 0..100u32 {
            assert_eq!(
                p.assign(key, 100, &mut rng),
                Partitioner::range_owner(key, 100, 4)
            );
        }
    }

    #[test]
    fn partial_locality_mostly_owner() {
        let mut p = Partitioner::geographic(4, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let key = 10u32; // owner 0 in domain 100 / 4 nodes
        let owned = (0..1000)
            .filter(|_| p.assign(key, 100, &mut rng) == 0)
            .count();
        // 0.8 direct + 0.2·0.25 random back to owner = 0.85 expected.
        assert!(
            (780..920).contains(&owned),
            "locality off: {owned}/1000 on owner"
        );
    }

    #[test]
    fn zero_locality_equals_uniform() {
        let mut p = Partitioner::geographic(4, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[p.assign(10, 100, &mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "key outside attribute domain")]
    fn out_of_domain_key_rejected() {
        let mut p = Partitioner::uniform(2);
        let mut rng = StdRng::seed_from_u64(0);
        p.assign(10, 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn zero_nodes_rejected() {
        Partitioner::uniform(0);
    }
}
