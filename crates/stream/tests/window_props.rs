//! Property-based invariants of the sliding window's probe index.
//!
//! The window keeps a per-key count index (`counts`) alongside the tuple
//! buffer so `probe` is O(1); the zero-allocation insert path (PR 3) made
//! eviction reuse internal buffers, so these properties pin the index
//! against a naive recount of the buffer under arbitrary mixed operation
//! sequences for every window kind.

use dsj_stream::{SlidingWindow, StreamId, Tuple, WindowSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEY_SPACE: u32 = 12;

/// Recounts keys by walking the buffer — the O(W) ground truth the count
/// index must always agree with.
fn naive_counts(w: &SlidingWindow) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for t in w.iter() {
        *counts.entry(t.key).or_insert(0) += 1;
    }
    counts
}

fn spec_for(kind: u8) -> WindowSpec {
    match kind {
        0 => WindowSpec::count(7),
        1 => WindowSpec::Time(9),
        _ => WindowSpec::Landmark,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every insert (and landmark reset), `probe` over the whole key
    /// space matches a naive recount of the buffer, the eviction batch is
    /// consistent between its tuple and key views, and the
    /// inserted/evicted/held accounting balances.
    #[test]
    fn probe_index_matches_naive_recount(
        kind in 0u8..3,
        ops in prop::collection::vec((0u32..KEY_SPACE, 0u64..5, prop::bool::ANY), 1..80),
    ) {
        let mut w = SlidingWindow::new(spec_for(kind));
        let mut now = 0u64;
        let mut evicted_total = 0u64;
        for (seq, &(key, dt, reset)) in ops.iter().enumerate() {
            now += dt;
            let tuple = Tuple::new(StreamId::R, key, seq as u64, 0);
            let ev_len = w.insert(tuple, now).len();
            prop_assert_eq!(ev_len, w.evicted_keys().len());
            let keys_of_batch: Vec<u32> = w.evicted_keys().to_vec();
            evicted_total += ev_len as u64;

            let naive = naive_counts(&w);
            for k in 0..KEY_SPACE {
                prop_assert_eq!(
                    w.probe(k),
                    naive.get(&k).copied().unwrap_or(0),
                    "probe({}) disagrees with buffer recount", k
                );
            }
            prop_assert_eq!(w.inserted(), seq as u64 + 1);
            prop_assert_eq!(w.len() as u64 + evicted_total, w.inserted());
            // Evicted keys must not exceed what was ever inserted for them.
            for k in keys_of_batch {
                prop_assert!(k < KEY_SPACE);
            }

            if reset && matches!(w.spec(), WindowSpec::Landmark) {
                let cleared = w.reset_landmark();
                evicted_total += cleared.len() as u64;
                prop_assert!(w.is_empty());
                for k in 0..KEY_SPACE {
                    prop_assert_eq!(w.probe(k), 0);
                }
            }
        }
    }

    /// `probe_before` equals a filtered naive recount for every cutoff.
    #[test]
    fn probe_before_matches_filtered_recount(
        kind in 0u8..3,
        ops in prop::collection::vec((0u32..KEY_SPACE, 0u64..5), 1..60),
        cutoff in 0u64..70,
    ) {
        let mut w = SlidingWindow::new(spec_for(kind));
        let mut now = 0u64;
        for (seq, &(key, dt)) in ops.iter().enumerate() {
            now += dt;
            w.insert(Tuple::new(StreamId::R, key, seq as u64, 0), now);
        }
        for k in 0..KEY_SPACE {
            let expected = w.iter().filter(|t| t.key == k && t.seq < cutoff).count() as u32;
            prop_assert_eq!(w.probe_before(k, cutoff), expected);
        }
    }
}
