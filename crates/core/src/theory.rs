//! Closed-form bounds from Section 5.2.2 — the curves of Figures 3 and 4.
//!
//! * Theorem 1: with `T_i = 1` under uniform data, `ε ≤ 1 − 2/N`.
//! * Theorem 2: with `T_i = log N`, `ε ≤ 1 − (1 + log N)/N`.
//! * Theorem 3: under Zipf skew `α`,
//!   `ε ≤ 1 − Σ_{i=1}^{2} αⁱ/N` for `O(1)` complexity and
//!   `ε ≤ 1 − (α − α^{log N + 1})/(1 − α)` for `O(log N)`.
//!
//! Message counts per tuple are `1` and `log N` respectively, versus the
//! baseline's `N − 1` (Figure 3b).

/// Theorem 1: error bound for `T_i = 1` under uniform data.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn uniform_error_bound_t1(n: u16) -> f64 {
    assert!(n >= 2, "bound defined for n >= 2");
    1.0 - 2.0 / n as f64
}

/// Theorem 2: error bound for `T_i = log N` under uniform data.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn uniform_error_bound_tlog(n: u16) -> f64 {
    assert!(n >= 2, "bound defined for n >= 2");
    let nf = n as f64;
    (1.0 - (1.0 + nf.log2()) / nf).max(0.0)
}

/// Theorem 3, `O(1)` branch: error bound under Zipf skew `alpha`.
///
/// # Panics
///
/// Panics if `n < 2` or `alpha` is outside `(0, 1)`.
pub fn zipf_error_bound_t1(n: u16, alpha: f64) -> f64 {
    assert!(n >= 2, "bound defined for n >= 2");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "Zipf skew must lie strictly in (0, 1)"
    );
    let sum: f64 = (1..=2).map(|i| alpha.powi(i)).sum();
    (1.0 - sum / n as f64).clamp(0.0, 1.0)
}

/// Theorem 3, `O(log N)` branch: error bound under Zipf skew `alpha`.
///
/// # Panics
///
/// Panics if `n < 2` or `alpha` is outside `(0, 1)`.
pub fn zipf_error_bound_tlog(n: u16, alpha: f64) -> f64 {
    assert!(n >= 2, "bound defined for n >= 2");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "Zipf skew must lie strictly in (0, 1)"
    );
    let logn = (n as f64).log2();
    let geom = (alpha - alpha.powf(logn + 1.0)) / (1.0 - alpha);
    (1.0 - geom).clamp(0.0, 1.0)
}

/// Messages per tuple at the `T_i = 1` operating point.
pub fn messages_t1(_n: u16) -> f64 {
    1.0
}

/// Messages per tuple at the `T_i = log N` operating point.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn messages_tlog(n: u16) -> f64 {
    assert!(n >= 2, "defined for n >= 2");
    (n as f64).log2().max(1.0)
}

/// Messages per tuple for the exact baseline (`N − 1` broadcasts).
pub fn messages_base(n: u16) -> f64 {
    n.saturating_sub(1) as f64
}

/// One row of the Figure 3/4 series: all bounds at a given cluster size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsRow {
    /// Cluster size.
    pub n: u16,
    /// Theorem 1 uniform error bound (`T = 1`).
    pub uniform_eps_t1: f64,
    /// Theorem 2 uniform error bound (`T = log N`).
    pub uniform_eps_tlog: f64,
    /// Theorem 3 Zipf error bound (`T = 1`).
    pub zipf_eps_t1: f64,
    /// Theorem 3 Zipf error bound (`T = log N`).
    pub zipf_eps_tlog: f64,
    /// Messages per tuple at `T = 1`.
    pub msgs_t1: f64,
    /// Messages per tuple at `T = log N`.
    pub msgs_tlog: f64,
    /// Messages per tuple for the exact baseline.
    pub msgs_base: f64,
}

/// The full Figure 3/4 table for clusters of 2..=`max_n` nodes at Zipf skew
/// `alpha`.
///
/// # Panics
///
/// Panics if `max_n < 2` or `alpha` is outside `(0, 1)`.
pub fn bounds_table(max_n: u16, alpha: f64) -> Vec<BoundsRow> {
    assert!(max_n >= 2, "need at least two nodes");
    (2..=max_n)
        .map(|n| BoundsRow {
            n,
            uniform_eps_t1: uniform_error_bound_t1(n),
            uniform_eps_tlog: uniform_error_bound_tlog(n),
            zipf_eps_t1: zipf_error_bound_t1(n, alpha),
            zipf_eps_tlog: zipf_error_bound_tlog(n, alpha),
            msgs_t1: messages_t1(n),
            msgs_tlog: messages_tlog(n),
            msgs_base: messages_base(n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_examples() {
        assert!((uniform_error_bound_t1(2) - 0.0).abs() < 1e-12);
        assert!((uniform_error_bound_t1(4) - 0.5).abs() < 1e-12);
        assert!((uniform_error_bound_t1(20) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn theorem2_below_theorem1() {
        for n in 3..=20 {
            assert!(
                uniform_error_bound_tlog(n) <= uniform_error_bound_t1(n) + 1e-12,
                "log N budget can only help (n={n})"
            );
        }
    }

    #[test]
    fn uniform_bounds_grow_with_n() {
        for n in 2..20 {
            assert!(uniform_error_bound_t1(n + 1) > uniform_error_bound_t1(n));
        }
    }

    #[test]
    fn zipf_log_bound_shrinks_with_n() {
        // Figure 4's key property: with O(log N) complexity under skew, the
        // bound decreases as nodes are added.
        let alpha = 0.4;
        for n in 2..20 {
            assert!(
                zipf_error_bound_tlog(n + 1, alpha) <= zipf_error_bound_tlog(n, alpha) + 1e-12,
                "n={n}"
            );
        }
        assert!(zipf_error_bound_tlog(2, alpha) > zipf_error_bound_tlog(20, alpha));
    }

    #[test]
    fn zipf_bounds_in_unit_interval() {
        for n in 2..=20 {
            for &alpha in &[0.1, 0.4, 0.9] {
                for b in [
                    zipf_error_bound_t1(n, alpha),
                    zipf_error_bound_tlog(n, alpha),
                ] {
                    assert!((0.0..=1.0).contains(&b), "n={n} alpha={alpha}: {b}");
                }
            }
        }
    }

    #[test]
    fn message_reduction_vs_baseline() {
        // Figure 3b: at N=20 the baseline sends 19 messages, log N ≈ 4.3 —
        // better than a three-fold reduction.
        assert!(messages_base(20) / messages_tlog(20) > 3.0);
        assert_eq!(messages_t1(20), 1.0);
    }

    #[test]
    fn table_is_complete() {
        let t = bounds_table(20, 0.4);
        assert_eq!(t.len(), 19);
        assert_eq!(t[0].n, 2);
        assert_eq!(t[18].n, 20);
    }

    #[test]
    #[should_panic(expected = "Zipf skew must lie strictly in (0, 1)")]
    fn alpha_one_rejected() {
        zipf_error_bound_tlog(4, 1.0);
    }
}
