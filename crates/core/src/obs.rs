//! Structured run observability: one [`Registry`] of counters, gauges,
//! histograms and per-phase wall timers per experiment run, serialized as
//! JSON lines.
//!
//! The runner ([`crate::ClusterConfig::run`]) and the live cluster fill a
//! registry per run and hand it to [`emit`]. Emission is a no-op unless a
//! harness has both installed a [`Collector`] and declared the current
//! experiment scope ([`scoped`]) — so library users and unit tests pay
//! nothing, while `repro --metrics-out` gets one merged record per
//! experiment, ordered by submission index. Scopes are thread-local; a
//! parallel executor re-establishes the caller's scope inside its workers
//! (see `dsj_bench::suite`).
//!
//! Deliberately *not* part of [`crate::ExperimentReport`]: reports are
//! compared bit-for-bit in determinism and trace-replay tests, while wall
//! timings differ on every run.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

pub use dsj_simnet::metrics::Log2Histogram as Histogram;

/// Wall-clock accounting of one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Times the phase executed.
    pub calls: u64,
    /// Total wall seconds across calls.
    pub secs: f64,
}

/// A metrics registry for one run: monotonically increasing counters,
/// last-write gauges, log₂ histograms, and per-phase wall timers.
///
/// Registries from multiple runs of the same experiment [`merge`] into
/// one record: counters, histograms and phase timers accumulate; gauges
/// keep the merged-in (latest) value.
///
/// [`merge`]: Registry::merge
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    phases: BTreeMap<String, PhaseStat>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges an externally maintained histogram into histogram `name`.
    pub fn histogram_merge(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Adds one `elapsed` interval to phase `name`.
    pub fn phase_add(&mut self, name: &str, elapsed: Duration) {
        let p = self.phases.entry(name.to_string()).or_default();
        p.calls += 1;
        p.secs += elapsed.as_secs_f64();
    }

    /// Runs `f`, recording its wall time under phase `name`.
    pub fn time_phase<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phase_add(name, start.elapsed());
        out
    }

    /// Counter `name`'s value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge `name`'s value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Phase `name`'s accumulated timing, if it ran.
    pub fn phase(&self, name: &str) -> Option<PhaseStat> {
        self.phases.get(name).copied()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.phases.is_empty()
    }

    /// Accumulates `other` into this registry (see type docs for the
    /// per-kind semantics).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, p) in &other.phases {
            let mine = self.phases.entry(k.clone()).or_default();
            mine.calls += p.calls;
            mine.secs += p.secs;
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("\"phases\":{");
        for (i, (name, p)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(out, ":{{\"calls\":{},\"secs\":", p.calls);
            write_json_f64(out, p.secs);
            out.push('}');
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            out.push(':');
            write_json_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            write_json_f64(out, h.mean());
            out.push_str(",\"buckets\":[");
            for (j, (upper, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{count}]");
            }
            out.push_str("]}");
        }
        out.push('}');
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One experiment's merged metrics, as drained from a [`Collector`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Submission index (orders the JSONL output deterministically).
    pub index: u64,
    /// Experiment label (e.g. `"fig9"`).
    pub label: String,
    /// Number of runs merged into [`ExperimentRecord::registry`].
    pub runs: u64,
    /// The merged metrics.
    pub registry: Registry,
}

impl ExperimentRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"experiment\":");
        write_json_string(&mut out, &self.label);
        let _ = write!(out, ",\"index\":{},\"runs\":{},", self.index, self.runs);
        self.registry.write_json(&mut out);
        out.push('}');
        out
    }
}

#[derive(Default)]
struct CollectorInner {
    records: Mutex<BTreeMap<u64, (String, u64, Registry)>>,
}

/// Collects every [`emit`]ted registry, merged per experiment scope.
///
/// Installing a collector makes it the process-wide sink; at most one is
/// installed at a time (a second installer blocks until the first is
/// dropped, which also serializes tests). Dropping uninstalls.
pub struct Collector {
    inner: Arc<CollectorInner>,
    _exclusive: MutexGuard<'static, ()>,
}

fn exclusivity() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn sink() -> &'static Mutex<Option<Arc<CollectorInner>>> {
    static SINK: OnceLock<Mutex<Option<Arc<CollectorInner>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

impl Collector {
    /// Installs a fresh collector as the process-wide sink.
    pub fn install() -> Collector {
        let exclusive = exclusivity().lock().unwrap_or_else(|e| e.into_inner());
        let inner = Arc::new(CollectorInner::default());
        *sink().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&inner));
        Collector {
            inner,
            _exclusive: exclusive,
        }
    }

    /// Removes and returns everything collected so far, ordered by
    /// submission index.
    pub fn drain(&self) -> Vec<ExperimentRecord> {
        let mut records = self.inner.records.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *records)
            .into_iter()
            .map(|(index, (label, runs, registry))| ExperimentRecord {
                index,
                label,
                runs,
                registry,
            })
            .collect()
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        *sink().lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

thread_local! {
    static SCOPE: RefCell<Option<(String, u64)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current thread's experiment scope set to
/// `(label, index)`, restoring the previous scope afterwards. Registries
/// [`emit`]ted inside merge into that experiment's record.
pub fn scoped<R>(label: &str, index: u64, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| s.replace(Some((label.to_string(), index))));
    // Guard restores `prev` even if `f` panics.
    let _guard = RestoreScope(prev);
    f()
}

struct RestoreScope(Option<(String, u64)>);

impl Drop for RestoreScope {
    fn drop(&mut self) {
        let prev = self.0.take();
        SCOPE.with(|s| *s.borrow_mut() = prev);
    }
}

/// The current thread's experiment scope, if any — parallel executors use
/// this to propagate the caller's scope into worker threads.
pub fn current_scope() -> Option<(String, u64)> {
    SCOPE.with(|s| s.borrow().clone())
}

/// `true` when a [`Collector`] is installed and this thread has a scope —
/// i.e. when filling a registry will not be wasted work.
pub fn enabled() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
        && sink().lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// Hands a run's registry to the installed collector under the current
/// scope. A no-op (the registry is dropped) when no collector is
/// installed or no scope is set.
pub fn emit(registry: Registry) {
    let Some((label, index)) = current_scope() else {
        return;
    };
    let Some(inner) = sink()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
    else {
        return;
    };
    let mut records = inner.records.lock().unwrap_or_else(|e| e.into_inner());
    let slot = records
        .entry(index)
        .or_insert_with(|| (label, 0, Registry::new()));
    slot.1 += 1;
    slot.2.merge(&registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_kinds_and_merge() {
        let mut a = Registry::new();
        a.counter_add("msgs", 3);
        a.counter_add("msgs", 2);
        a.gauge_set("eps", 0.15);
        a.histogram_record("bytes", 100);
        a.phase_add("simulate", Duration::from_millis(10));
        assert_eq!(a.counter("msgs"), 5);
        assert_eq!(a.gauge("eps"), Some(0.15));
        assert_eq!(a.histogram("bytes").unwrap().count(), 1);
        assert!(a.phase("simulate").unwrap().secs > 0.0);
        assert_eq!(a.counter("absent"), 0);
        assert!(a.gauge("absent").is_none());

        let mut b = Registry::new();
        b.counter_add("msgs", 10);
        b.gauge_set("eps", 0.10);
        b.histogram_record("bytes", 200);
        b.phase_add("simulate", Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 15);
        assert_eq!(
            a.gauge("eps"),
            Some(0.10),
            "gauges keep the merged-in value"
        );
        assert_eq!(a.histogram("bytes").unwrap().count(), 2);
        assert_eq!(a.phase("simulate").unwrap().calls, 2);
    }

    #[test]
    fn time_phase_returns_value() {
        let mut r = Registry::new();
        let v = r.time_phase("work", || 42);
        assert_eq!(v, 42);
        assert_eq!(r.phase("work").unwrap().calls, 1);
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn json_line_is_well_formed() {
        let mut r = Registry::new();
        r.counter_add("node.00.arrivals", 7);
        r.gauge_set("epsilon", 0.25);
        r.gauge_set("weird\"name", f64::NAN);
        r.histogram_record("net.msg_bytes", 20);
        r.histogram_record("net.msg_bytes", 300);
        r.phase_add("simulate", Duration::from_secs(1));
        let line = ExperimentRecord {
            index: 2,
            label: "fig9".into(),
            runs: 3,
            registry: r,
        }
        .to_json_line();
        assert!(line.starts_with("{\"experiment\":\"fig9\",\"index\":2,\"runs\":3,"));
        assert!(line.contains("\"node.00.arrivals\":7"));
        assert!(line.contains("\"epsilon\":0.25"));
        assert!(line.contains("\"weird\\\"name\":null"));
        assert!(line.contains("\"buckets\":[[31,1],[511,1]]"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in line.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn collector_scoping_and_merge() {
        let collector = Collector::install();
        // No scope: dropped.
        let mut r = Registry::new();
        r.counter_add("x", 1);
        emit(r.clone());
        assert!(collector.drain().is_empty());
        assert!(!enabled());

        scoped("expA", 0, || {
            assert!(enabled());
            assert_eq!(current_scope(), Some(("expA".to_string(), 0)));
            emit(r.clone());
            emit(r.clone());
            scoped("expB", 1, || emit(r.clone()));
            // Scope restored after the nested block.
            emit(r.clone());
        });
        let records = collector.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "expA");
        assert_eq!(records[0].runs, 3);
        assert_eq!(records[0].registry.counter("x"), 3);
        assert_eq!(records[1].label, "expB");
        assert_eq!(records[1].runs, 1);
        drop(collector);
        // After uninstall, emits vanish quietly.
        scoped("expA", 0, || {
            assert!(!enabled());
            emit(Registry::new());
        });
    }
}
