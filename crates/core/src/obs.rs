//! Structured run observability: one [`Registry`] of counters, gauges,
//! histograms and per-phase wall timers per experiment run, serialized as
//! JSON lines.
//!
//! The runner ([`crate::ClusterConfig::run`]) and the live cluster fill a
//! registry per run and hand it to [`emit`]. Emission is a no-op unless a
//! harness has both installed a [`Collector`] and declared the current
//! experiment scope ([`scoped`]) — so library users and unit tests pay
//! nothing, while `repro --metrics-out` gets one merged record per
//! experiment, ordered by submission index. Scopes are thread-local; a
//! parallel executor re-establishes the caller's scope inside its workers
//! (see `dsj_bench::suite`).
//!
//! Deliberately *not* part of [`crate::ExperimentReport`]: reports are
//! compared bit-for-bit in determinism and trace-replay tests, while wall
//! timings differ on every run.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::{self, Write as _};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

pub use dsj_simnet::metrics::Log2Histogram as Histogram;

/// Wall-clock accounting of one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Times the phase executed.
    pub calls: u64,
    /// Total wall seconds across calls.
    pub secs: f64,
}

/// A metrics registry for one run: monotonically increasing counters,
/// last-write gauges, log₂ histograms, and per-phase wall timers.
///
/// Registries from multiple runs of the same experiment [`merge`] into
/// one record: counters, histograms and phase timers accumulate; gauges
/// keep the merged-in (latest) value.
///
/// [`merge`]: Registry::merge
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    phases: BTreeMap<String, PhaseStat>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges an externally maintained histogram into histogram `name`.
    pub fn histogram_merge(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Adds one `elapsed` interval to phase `name`.
    pub fn phase_add(&mut self, name: &str, elapsed: Duration) {
        let p = self.phases.entry(name.to_string()).or_default();
        p.calls += 1;
        p.secs += elapsed.as_secs_f64();
    }

    /// Runs `f`, recording its wall time under phase `name`.
    pub fn time_phase<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phase_add(name, start.elapsed());
        out
    }

    /// Counter `name`'s value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge `name`'s value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Phase `name`'s accumulated timing, if it ran.
    pub fn phase(&self, name: &str) -> Option<PhaseStat> {
        self.phases.get(name).copied()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.phases.is_empty()
    }

    /// Accumulates `other` into this registry (see type docs for the
    /// per-kind semantics).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, p) in &other.phases {
            let mine = self.phases.entry(k.clone()).or_default();
            mine.calls += p.calls;
            mine.secs += p.secs;
        }
    }

    fn write_json(&self, out: &mut String, include_phases: bool) {
        if include_phases {
            out.push_str("\"phases\":{");
            for (i, (name, p)) in self.phases.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, name);
                let _ = write!(out, ":{{\"calls\":{},\"secs\":", p.calls);
                write_json_f64(out, p.secs);
                out.push('}');
            }
            out.push_str("},");
        }
        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            out.push(':');
            write_json_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            write_json_f64(out, h.mean());
            out.push_str(",\"buckets\":[");
            for (j, (upper, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{count}]");
            }
            out.push_str("]}");
        }
        out.push('}');
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One experiment's merged metrics, as drained from a [`Collector`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Submission index (orders the JSONL output deterministically).
    pub index: u64,
    /// Experiment label (e.g. `"fig9"`).
    pub label: String,
    /// Number of runs merged into [`ExperimentRecord::registry`].
    pub runs: u64,
    /// The merged metrics.
    pub registry: Registry,
}

impl ExperimentRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.render(true)
    }

    /// Renders the record's *deterministic* projection: identical to
    /// [`Self::to_json_line`] minus the `phases` object, whose wall-clock
    /// seconds differ on every run. Two runs of the same seeded experiment
    /// must produce byte-identical stable lines.
    pub fn to_stable_json_line(&self) -> String {
        self.render(false)
    }

    fn render(&self, include_phases: bool) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"experiment\":");
        write_json_string(&mut out, &self.label);
        let _ = write!(out, ",\"index\":{},\"runs\":{},", self.index, self.runs);
        self.registry.write_json(&mut out, include_phases);
        out.push('}');
        out
    }

    /// Parses a line produced by [`Self::to_json_line`] or
    /// [`Self::to_stable_json_line`] back into a record (`null` numbers
    /// become NaN; a missing `phases` object parses as no phases).
    ///
    /// # Errors
    ///
    /// [`ParseError`] when the line is not valid JSON or does not have the
    /// record schema.
    pub fn from_json_line(line: &str) -> Result<ExperimentRecord, ParseError> {
        json::parse_record(line)
    }
}

/// Error from [`ExperimentRecord::from_json_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad metrics line: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// A minimal recursive-descent JSON reader, just enough for the record
/// schema [`Registry::write_json`] emits. Numbers keep their raw text so
/// `u64` values round-trip without passing through `f64`.
mod json {
    use super::{ExperimentRecord, Histogram, ParseError, PhaseStat, Registry};

    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Json {
        Null,
        Bool(bool),
        /// Raw number literal, parsed on demand.
        Num(String),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(raw) => raw.parse().ok(),
                Json::Null => Some(f64::NAN),
                _ => None,
            }
        }
    }

    fn err(msg: impl Into<String>) -> ParseError {
        ParseError(msg.into())
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Reader<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, b: u8) -> Result<(), ParseError> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(err(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(err(format!("expected `{word}` at byte {}", self.pos)))
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos).copied() {
                    None => return Err(err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.bytes.get(self.pos).copied();
                        self.pos += 1;
                        match esc {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| err("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(hex);
                            }
                            _ => return Err(err("bad escape")),
                        }
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 sequences pass through intact.
                        let start = self.pos;
                        self.pos += 1;
                        while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                            self.pos += 1;
                        }
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }

        fn value(&mut self) -> Result<Json, ParseError> {
            match self.peek() {
                Some(b'{') => {
                    self.pos += 1;
                    let mut fields = Vec::new();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    loop {
                        let key = self.string()?;
                        self.eat(b':')?;
                        fields.push((key, self.value()?));
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Json::Obj(fields));
                            }
                            _ => return Err(err("expected `,` or `}` in object")),
                        }
                    }
                }
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Json::Arr(items));
                            }
                            _ => return Err(err("expected `,` or `]` in array")),
                        }
                    }
                }
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| {
                        b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                    }) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| err("invalid number"))?;
                    Ok(Json::Num(raw.to_string()))
                }
                _ => Err(err(format!("unexpected input at byte {}", self.pos))),
            }
        }
    }

    fn parse(line: &str) -> Result<Json, ParseError> {
        let mut r = Reader {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let v = r.value()?;
        r.skip_ws();
        if r.pos != r.bytes.len() {
            return Err(err(format!("trailing input at byte {}", r.pos)));
        }
        Ok(v)
    }

    fn obj_fields(v: &Json, what: &str) -> Result<Vec<(String, Json)>, ParseError> {
        match v {
            Json::Obj(fields) => Ok(fields.clone()),
            _ => Err(err(format!("`{what}` is not an object"))),
        }
    }

    pub(super) fn parse_record(line: &str) -> Result<ExperimentRecord, ParseError> {
        let root = parse(line)?;
        let field = |key: &str| root.get(key).ok_or_else(|| err(format!("missing `{key}`")));
        let label = match field("experiment")? {
            Json::Str(s) => s.clone(),
            _ => return Err(err("`experiment` is not a string")),
        };
        let index = field("index")?.as_u64().ok_or_else(|| err("bad `index`"))?;
        let runs = field("runs")?.as_u64().ok_or_else(|| err("bad `runs`"))?;

        let mut registry = Registry::new();
        // `phases` is absent from stable lines.
        if let Some(phases) = root.get("phases") {
            for (name, p) in obj_fields(phases, "phases")? {
                let calls = p
                    .get("calls")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("bad phase `calls`"))?;
                let secs = p
                    .get("secs")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| err("bad phase `secs`"))?;
                registry.phases.insert(name, PhaseStat { calls, secs });
            }
        }
        for (name, v) in obj_fields(field("counters")?, "counters")? {
            let v = v.as_u64().ok_or_else(|| err("bad counter value"))?;
            registry.counters.insert(name, v);
        }
        for (name, v) in obj_fields(field("gauges")?, "gauges")? {
            let v = v.as_f64().ok_or_else(|| err("bad gauge value"))?;
            registry.gauges.insert(name, v);
        }
        for (name, h) in obj_fields(field("histograms")?, "histograms")? {
            let scalar = |key: &str| {
                h.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err(format!("bad histogram `{key}`")))
            };
            let buckets = match h.get("buckets") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|pair| match pair {
                        Json::Arr(uc) if uc.len() == 2 => uc[0]
                            .as_u64()
                            .zip(uc[1].as_u64())
                            .ok_or_else(|| err("bad bucket pair")),
                        _ => Err(err("bad bucket pair")),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(err("bad histogram `buckets`")),
            };
            let hist = Histogram::from_parts(
                &buckets,
                scalar("count")?,
                scalar("sum")?,
                scalar("min")?,
                scalar("max")?,
            )
            .ok_or_else(|| err(format!("inconsistent histogram `{name}`")))?;
            registry.histograms.insert(name, hist);
        }
        Ok(ExperimentRecord {
            index,
            label,
            runs,
            registry,
        })
    }
}

#[derive(Default)]
struct CollectorInner {
    records: Mutex<BTreeMap<u64, (String, u64, Registry)>>,
}

/// Collects every [`emit`]ted registry, merged per experiment scope.
///
/// Installing a collector makes it the process-wide sink; at most one is
/// installed at a time (a second installer blocks until the first is
/// dropped, which also serializes tests). Dropping uninstalls.
pub struct Collector {
    inner: Arc<CollectorInner>,
    _exclusive: MutexGuard<'static, ()>,
}

fn exclusivity() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn sink() -> &'static Mutex<Option<Arc<CollectorInner>>> {
    static SINK: OnceLock<Mutex<Option<Arc<CollectorInner>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

impl Collector {
    /// Installs a fresh collector as the process-wide sink.
    pub fn install() -> Collector {
        let exclusive = exclusivity().lock().unwrap_or_else(|e| e.into_inner());
        let inner = Arc::new(CollectorInner::default());
        *sink().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&inner));
        Collector {
            inner,
            _exclusive: exclusive,
        }
    }

    /// Removes and returns everything collected so far, ordered by
    /// submission index.
    pub fn drain(&self) -> Vec<ExperimentRecord> {
        let mut records = self.inner.records.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *records)
            .into_iter()
            .map(|(index, (label, runs, registry))| ExperimentRecord {
                index,
                label,
                runs,
                registry,
            })
            .collect()
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        *sink().lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

thread_local! {
    static SCOPE: RefCell<Option<(String, u64)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current thread's experiment scope set to
/// `(label, index)`, restoring the previous scope afterwards. Registries
/// [`emit`]ted inside merge into that experiment's record.
pub fn scoped<R>(label: &str, index: u64, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| s.replace(Some((label.to_string(), index))));
    // Guard restores `prev` even if `f` panics.
    let _guard = RestoreScope(prev);
    f()
}

struct RestoreScope(Option<(String, u64)>);

impl Drop for RestoreScope {
    fn drop(&mut self) {
        let prev = self.0.take();
        SCOPE.with(|s| *s.borrow_mut() = prev);
    }
}

/// The current thread's experiment scope, if any — parallel executors use
/// this to propagate the caller's scope into worker threads.
pub fn current_scope() -> Option<(String, u64)> {
    SCOPE.with(|s| s.borrow().clone())
}

thread_local! {
    static CAPTURE: RefCell<Option<Vec<Registry>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's [`emit`] calls diverted into a buffer, and
/// returns `f`'s result plus the captured registries in emission order.
///
/// Merging a registry into an experiment record is order-sensitive (gauges
/// are last-write-wins), so a parallel executor must not let worker
/// threads emit straight into the shared collector — completion order
/// would leak into the merged record. Workers capture instead, and the
/// caller re-emits every buffer in submission order.
pub fn captured<R>(f: impl FnOnce() -> R) -> (R, Vec<Registry>) {
    let prev = CAPTURE.with(|c| c.replace(Some(Vec::new())));
    // Guard restores the previous buffer even if `f` panics.
    struct RestoreCapture(Option<Option<Vec<Registry>>>);
    impl Drop for RestoreCapture {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                CAPTURE.with(|c| *c.borrow_mut() = prev);
            }
        }
    }
    let mut guard = RestoreCapture(Some(prev));
    let out = f();
    let prev = guard.0.take().unwrap_or_default();
    let buf = CAPTURE.with(|c| c.replace(prev)).unwrap_or_default();
    (out, buf)
}

/// `true` when a [`Collector`] is installed and this thread has a scope —
/// i.e. when filling a registry will not be wasted work.
pub fn enabled() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
        && sink().lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// Hands a run's registry to the installed collector under the current
/// scope. A no-op (the registry is dropped) when no collector is
/// installed or no scope is set.
pub fn emit(registry: Registry) {
    let registry = match CAPTURE.with(move |c| {
        let mut buf = c.borrow_mut();
        match buf.as_mut() {
            Some(captured) => {
                captured.push(registry);
                None
            }
            None => Some(registry),
        }
    }) {
        Some(r) => r,
        None => return,
    };
    let Some((label, index)) = current_scope() else {
        return;
    };
    let Some(inner) = sink()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
    else {
        return;
    };
    let mut records = inner.records.lock().unwrap_or_else(|e| e.into_inner());
    let slot = records
        .entry(index)
        .or_insert_with(|| (label, 0, Registry::new()));
    slot.1 += 1;
    slot.2.merge(&registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_kinds_and_merge() {
        let mut a = Registry::new();
        a.counter_add("msgs", 3);
        a.counter_add("msgs", 2);
        a.gauge_set("eps", 0.15);
        a.histogram_record("bytes", 100);
        a.phase_add("simulate", Duration::from_millis(10));
        assert_eq!(a.counter("msgs"), 5);
        assert_eq!(a.gauge("eps"), Some(0.15));
        assert_eq!(a.histogram("bytes").unwrap().count(), 1);
        assert!(a.phase("simulate").unwrap().secs > 0.0);
        assert_eq!(a.counter("absent"), 0);
        assert!(a.gauge("absent").is_none());

        let mut b = Registry::new();
        b.counter_add("msgs", 10);
        b.gauge_set("eps", 0.10);
        b.histogram_record("bytes", 200);
        b.phase_add("simulate", Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 15);
        assert_eq!(
            a.gauge("eps"),
            Some(0.10),
            "gauges keep the merged-in value"
        );
        assert_eq!(a.histogram("bytes").unwrap().count(), 2);
        assert_eq!(a.phase("simulate").unwrap().calls, 2);
    }

    #[test]
    fn time_phase_returns_value() {
        let mut r = Registry::new();
        let v = r.time_phase("work", || 42);
        assert_eq!(v, 42);
        assert_eq!(r.phase("work").unwrap().calls, 1);
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn json_line_is_well_formed() {
        let mut r = Registry::new();
        r.counter_add("node.00.arrivals", 7);
        r.gauge_set("epsilon", 0.25);
        r.gauge_set("weird\"name", f64::NAN);
        r.histogram_record("net.msg_bytes", 20);
        r.histogram_record("net.msg_bytes", 300);
        r.phase_add("simulate", Duration::from_secs(1));
        let line = ExperimentRecord {
            index: 2,
            label: "fig9".into(),
            runs: 3,
            registry: r,
        }
        .to_json_line();
        assert!(line.starts_with("{\"experiment\":\"fig9\",\"index\":2,\"runs\":3,"));
        assert!(line.contains("\"node.00.arrivals\":7"));
        assert!(line.contains("\"epsilon\":0.25"));
        assert!(line.contains("\"weird\\\"name\":null"));
        assert!(line.contains("\"buckets\":[[31,1],[511,1]]"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in line.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn json_line_round_trips() {
        let mut r = Registry::new();
        r.counter_add("node.00.arrivals", 7);
        r.counter_add("msgs", u64::MAX);
        r.gauge_set("epsilon", 0.25);
        r.gauge_set("ratio", -1.5e-3);
        r.gauge_set("weird\"na\\me\n", 2.0);
        r.histogram_record("net.msg_bytes", 0);
        r.histogram_record("net.msg_bytes", 20);
        r.histogram_record("net.msg_bytes", 300);
        r.histogram_record("lat", u64::MAX);
        r.phase_add("simulate", Duration::from_millis(1500));
        r.phase_add("simulate", Duration::from_millis(250));
        r.phase_add("aggregate", Duration::from_millis(3));
        let record = ExperimentRecord {
            index: 2,
            label: "fig9".into(),
            runs: 3,
            registry: r,
        };

        // Full line: everything survives, including phase timers.
        let parsed = ExperimentRecord::from_json_line(&record.to_json_line()).expect("parse");
        assert_eq!(parsed, record);
        assert_eq!(parsed.registry.phase("simulate").unwrap().calls, 2);

        // Stable line: phases are projected out, the rest survives.
        let stable =
            ExperimentRecord::from_json_line(&record.to_stable_json_line()).expect("parse stable");
        assert!(stable.registry.phase("simulate").is_none());
        assert_eq!(stable.registry.counters, record.registry.counters);
        assert_eq!(stable.registry.gauges, record.registry.gauges);
        assert_eq!(stable.registry.histograms, record.registry.histograms);
        // And re-rendering the parsed record is byte-identical.
        assert_eq!(stable.to_stable_json_line(), record.to_stable_json_line());
        assert_eq!(parsed.to_json_line(), record.to_json_line());
    }

    #[test]
    fn nan_gauges_round_trip_as_null() {
        let mut r = Registry::new();
        r.gauge_set("undefined", f64::NAN);
        let record = ExperimentRecord {
            index: 0,
            label: "x".into(),
            runs: 1,
            registry: r,
        };
        let line = record.to_json_line();
        assert!(line.contains("\"undefined\":null"));
        let parsed = ExperimentRecord::from_json_line(&line).expect("parse");
        assert!(parsed.registry.gauge("undefined").unwrap().is_nan());
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable_in_json() {
        // Values straddling every power-of-two boundary land in pinned
        // buckets: the serialized bounds are part of the JSONL contract.
        let mut r = Registry::new();
        for v in [0u64, 1, 2, 3, 4, 127, 128, u64::MAX] {
            r.histogram_record("h", v);
        }
        let line = ExperimentRecord {
            index: 0,
            label: "b".into(),
            runs: 1,
            registry: r,
        }
        .to_json_line();
        let expected =
            "\"buckets\":[[0,1],[1,1],[3,2],[7,1],[127,1],[255,1],[18446744073709551615,1]]";
        assert!(line.contains(expected), "{line}");
        let parsed = ExperimentRecord::from_json_line(&line).expect("parse");
        let h = parsed.registry.histogram("h").expect("histogram");
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "not json",
            "[1,2]",
            "{\"experiment\":\"x\"}",
            "{\"experiment\":7,\"index\":0,\"runs\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}}",
            "{\"experiment\":\"x\",\"index\":0,\"runs\":1,\"counters\":{\"c\":-1},\"gauges\":{},\"histograms\":{}}",
            // Bucket bound 5 is not a power-of-two boundary.
            "{\"experiment\":\"x\",\"index\":0,\"runs\":1,\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\"mean\":5,\"buckets\":[[5,1]]}}}",
            "{\"experiment\":\"x\",\"index\":0,\"runs\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}} trailing",
        ] {
            assert!(ExperimentRecord::from_json_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn collector_scoping_and_merge() {
        let collector = Collector::install();
        // No scope: dropped.
        let mut r = Registry::new();
        r.counter_add("x", 1);
        emit(r.clone());
        assert!(collector.drain().is_empty());
        assert!(!enabled());

        scoped("expA", 0, || {
            assert!(enabled());
            assert_eq!(current_scope(), Some(("expA".to_string(), 0)));
            emit(r.clone());
            emit(r.clone());
            scoped("expB", 1, || emit(r.clone()));
            // Scope restored after the nested block.
            emit(r.clone());
        });
        let records = collector.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "expA");
        assert_eq!(records[0].runs, 3);
        assert_eq!(records[0].registry.counter("x"), 3);
        assert_eq!(records[1].label, "expB");
        assert_eq!(records[1].runs, 1);
        drop(collector);
        // After uninstall, emits vanish quietly.
        scoped("expA", 0, || {
            assert!(!enabled());
            emit(Registry::new());
        });
    }
}
