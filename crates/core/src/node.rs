//! A distributed join node: windows, local join execution, routing and
//! summary dissemination (the per-node runtime of Fig. 7).

use crate::msg::Msg;
use crate::strategy::{peers_of, Algorithm, Route, Router, RouterConfig};
use dsj_stream::{SlidingWindow, StreamId, Tuple, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The paper's abstract promises "automatic throughput handling based on
/// resource availability": when a node's outbound byte rate approaches its
/// bandwidth allowance, it scales its message-complexity target down
/// (multiplicative decrease) and recovers gently when headroom returns
/// (additive increase) — AIMD over the routing budget.
#[derive(Debug, Clone)]
pub struct ThroughputGovernor {
    budget_bps: u64,
    window_us: u64,
    history: VecDeque<(u64, u64)>,
    bytes_in_window: u64,
    scale: f64,
}

impl ThroughputGovernor {
    /// Multiplicative back-off factor on overload.
    const DECREASE: f64 = 0.85;
    /// Additive recovery per arrival with headroom.
    const INCREASE: f64 = 0.02;
    /// The governor never silences a node entirely.
    const MIN_SCALE: f64 = 0.05;

    /// Creates a governor with a byte-rate allowance of `budget_bps` bits
    /// per second, measured over a one-second sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `budget_bps == 0`.
    pub fn new(budget_bps: u64) -> Self {
        assert!(budget_bps > 0, "bandwidth budget must be positive");
        ThroughputGovernor {
            budget_bps,
            window_us: 1_000_000,
            history: VecDeque::new(),
            bytes_in_window: 0,
            scale: 1.0,
        }
    }

    /// Records `bytes` sent at `now_us`.
    pub fn note_sent(&mut self, now_us: u64, bytes: u64) {
        self.history.push_back((now_us, bytes));
        self.bytes_in_window += bytes;
    }

    /// Updates and returns the target scale for a decision at `now_us`.
    pub fn scale(&mut self, now_us: u64) -> f64 {
        while let Some(&(t, b)) = self.history.front() {
            if now_us.saturating_sub(t) <= self.window_us {
                break;
            }
            self.history.pop_front();
            self.bytes_in_window -= b;
        }
        let rate_bps = self
            .bytes_in_window
            .saturating_mul(8)
            .saturating_mul(1_000_000)
            / self.window_us.max(1);
        if rate_bps > self.budget_bps {
            self.scale = (self.scale * Self::DECREASE).max(Self::MIN_SCALE);
        } else {
            self.scale = (self.scale + Self::INCREASE).min(1.0);
        }
        self.scale
    }

    /// The current scale without updating.
    pub fn current_scale(&self) -> f64 {
        self.scale
    }
}

/// Per-node counters aggregated into the experiment report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Tuples that arrived at this node from its stream sources.
    pub arrivals: u64,
    /// Matches found against this node's own windows at arrival time.
    pub local_matches: u64,
    /// Matches found when forwarded tuples probed this node's windows.
    pub remote_matches: u64,
    /// Tuple messages sent.
    pub tuple_msgs_sent: u64,
    /// Standalone summary messages sent.
    pub summary_msgs_sent: u64,
    /// Bytes of tuple payload sent (Figure 8's "net data").
    pub data_bytes_sent: u64,
    /// Bytes of summary content sent (Figure 8's overhead).
    pub overhead_bytes_sent: u64,
    /// Arrivals routed by the worst-case fallback policy.
    pub fallback_routes: u64,
    /// Forwarded tuples received from peers.
    pub tuples_received: u64,
    /// Standalone summary messages received.
    pub summaries_received: u64,
    /// Summary updates dropped because their index fell outside the
    /// router's configured shape (a version-skewed or corrupted peer).
    pub summary_index_drops: u64,
    /// Arrivals dropped at ingest because their key fell outside the
    /// configured attribute domain (a corrupt or mis-configured source).
    pub key_domain_drops: u64,
}

impl NodeMetrics {
    /// Total matches this node reported (local + remote probes).
    pub fn matches(&self) -> u64 {
        self.local_matches + self.remote_matches
    }

    /// Exports every counter into `registry` under
    /// `node.<id>.<counter>` keys (the per-node section of the
    /// `--metrics-out` record).
    pub fn record_into(&self, registry: &mut crate::obs::Registry, me: u16) {
        for (name, value) in [
            ("arrivals", self.arrivals),
            ("local_matches", self.local_matches),
            ("remote_matches", self.remote_matches),
            ("tuple_msgs_sent", self.tuple_msgs_sent),
            ("summary_msgs_sent", self.summary_msgs_sent),
            ("data_bytes_sent", self.data_bytes_sent),
            ("overhead_bytes_sent", self.overhead_bytes_sent),
            ("fallback_routes", self.fallback_routes),
            ("tuples_received", self.tuples_received),
            ("summaries_received", self.summaries_received),
            ("summary_index_drops", self.summary_index_drops),
            ("key_domain_drops", self.key_domain_drops),
        ] {
            registry.counter_add(&format!("node.{me:02}.{name}"), value);
        }
    }

    /// Adds another node's counters into this one.
    pub fn absorb(&mut self, other: &NodeMetrics) {
        self.arrivals += other.arrivals;
        self.local_matches += other.local_matches;
        self.remote_matches += other.remote_matches;
        self.tuple_msgs_sent += other.tuple_msgs_sent;
        self.summary_msgs_sent += other.summary_msgs_sent;
        self.data_bytes_sent += other.data_bytes_sent;
        self.overhead_bytes_sent += other.overhead_bytes_sent;
        self.fallback_routes += other.fallback_routes;
        self.tuples_received += other.tuples_received;
        self.summaries_received += other.summaries_received;
        self.summary_index_drops += other.summary_index_drops;
        self.key_domain_drops += other.key_domain_drops;
    }
}

/// One node of the distributed join cluster.
///
/// Owns segments `R_i`/`S_i` of the two streams (sliding windows), runs the
/// local symmetric join on every arrival, and consults its router to
/// forward the tuple toward likely join partners. Forwarded tuples probe
/// the receiver's windows but are never stored — windows hold only tuples
/// that arrived locally, exactly the paper's partitioning model.
#[derive(Debug)]
pub struct JoinNode {
    me: u16,
    n: u16,
    /// Attribute domain size; arrivals with `key >= domain` are dropped
    /// at ingest (mirroring `RunError::TraceKeyOutOfDomain`).
    domain: u32,
    count_from_seq: u64,
    r_win: SlidingWindow,
    s_win: SlidingWindow,
    router: Router,
    rng: StdRng,
    metrics: NodeMetrics,
    governor: Option<ThroughputGovernor>,
    /// Route scratch reused across arrivals (zero steady-state allocation).
    route_scratch: Route,
    /// Order-sensitive digest of every counted match observation — see
    /// [`JoinNode::match_digest`].
    match_digest: u64,
}

impl JoinNode {
    /// Creates node `cfg.me` of the cluster, running `algorithm`.
    /// Matches attributed to tuples with `seq < count_from_seq` are not
    /// counted (warm-up exclusion).
    pub(crate) fn new(
        algorithm: Algorithm,
        cfg: RouterConfig,
        spec: WindowSpec,
        count_from_seq: u64,
    ) -> Self {
        let me = cfg.me;
        let n = cfg.n;
        let domain = cfg.domain;
        let rng = StdRng::seed_from_u64(cfg.seed ^ (0xD5EED ^ u64::from(me) << 32));
        JoinNode {
            me,
            n,
            domain,
            count_from_seq,
            r_win: SlidingWindow::new(spec),
            s_win: SlidingWindow::new(spec),
            router: Router::new(algorithm, cfg),
            rng,
            metrics: NodeMetrics::default(),
            governor: None,
            route_scratch: Route::default(),
            match_digest: Self::DIGEST_BASIS,
        }
    }

    /// Installs a throughput governor with the given bandwidth allowance
    /// (bits/second of outbound traffic).
    pub fn with_bandwidth_budget(mut self, budget_bps: u64) -> Self {
        self.governor = Some(ThroughputGovernor::new(budget_bps));
        self
    }

    /// The governor's current target scale (1.0 when ungoverned).
    pub fn governor_scale(&self) -> f64 {
        self.governor
            .as_ref()
            .map_or(1.0, ThroughputGovernor::current_scale)
    }

    /// This node's id.
    pub fn id(&self) -> u16 {
        self.me
    }

    /// This node's counters.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Worst-case fallback activations recorded by the router.
    pub fn fallback_events(&self) -> u64 {
        self.router.fallback_events()
    }

    /// The window holding `stream`'s locally arrived tuples.
    pub fn window(&self, stream: StreamId) -> &SlidingWindow {
        match stream {
            StreamId::R => &self.r_win,
            StreamId::S => &self.s_win,
        }
    }

    fn counts(&self, seq: u64) -> bool {
        seq >= self.count_from_seq
    }

    /// FNV-1a offset basis / prime for the match digest.
    const DIGEST_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An order-sensitive digest of this node's counted match
    /// observations: every post-warm-up probe folds its `(seq, matches)`
    /// pair in FNV-1a style, in processing order. Two runs report the same
    /// digest exactly when this node observed the same match set in the
    /// same order — the "identical match sets" witness the cross-backend
    /// equivalence suite compares across simnet, threads and TCP.
    pub fn match_digest(&self) -> u64 {
        self.match_digest
    }

    #[inline]
    fn fold_match(&mut self, seq: u64, matches: u32) {
        self.match_digest = (self.match_digest ^ seq).wrapping_mul(Self::DIGEST_PRIME);
        self.match_digest =
            (self.match_digest ^ u64::from(matches)).wrapping_mul(Self::DIGEST_PRIME);
    }
}

impl JoinNode {
    /// Transport-agnostic arrival handling (Fig. 7): local join, summary
    /// maintenance, routing. Returns the messages to transmit, as
    /// `(peer, message)` pairs. `now_us` is the node's clock in
    /// microseconds (virtual or wall, depending on the runtime).
    pub fn handle_arrival(&mut self, tuple: Tuple, now_us: u64) -> Vec<(u16, Msg)> {
        let mut out = Vec::new();
        self.handle_arrival_into(tuple, now_us, &mut out);
        out
    }

    /// Allocation-free [`JoinNode::handle_arrival`]: clears and fills `out`
    /// with the `(peer, message)` pairs to transmit. The per-arrival route
    /// state lives in buffers reused across calls.
    // dsj-lint: hot-path
    pub fn handle_arrival_into(&mut self, tuple: Tuple, now_us: u64, out: &mut Vec<(u16, Msg)>) {
        out.clear();
        debug_assert_eq!(tuple.origin, self.me, "arrival routed to wrong node");
        // Domain guard (the runtime analogue of `RunError::TraceKeyOutOfDomain`):
        // an out-of-domain key from a corrupt source must neither panic the
        // routing hot path nor poison the window summaries — drop and count.
        if tuple.key >= self.domain {
            self.metrics.key_domain_drops += 1;
            return;
        }
        // Local join: probe the opposite window, then store. Every stored
        // tuple has a smaller seq, so each co-located pair counts exactly
        // once, at its later tuple's arrival.
        let local = self.window(tuple.stream.opposite()).probe(tuple.key);
        if self.counts(tuple.seq) {
            self.metrics.local_matches += u64::from(local);
            self.fold_match(tuple.seq, local);
        }
        // Insert into the tuple's window, then hand the evicted keys (a
        // borrow of the window's reusable eviction buffer — disjoint from
        // the router field) to summary maintenance.
        let evicted_keys: &[u32] = match tuple.stream {
            StreamId::R => {
                self.r_win.insert(tuple, now_us);
                self.r_win.evicted_keys()
            }
            StreamId::S => {
                self.s_win.insert(tuple, now_us);
                self.s_win.evicted_keys()
            }
        };
        self.router
            .local_update(tuple.stream, tuple.key, evicted_keys);
        self.router.note_arrival();
        self.metrics.arrivals += 1;

        // Route toward likely join partners, under the governor's current
        // resource-availability scale.
        let scale = match &mut self.governor {
            Some(g) => g.scale(now_us),
            None => 1.0,
        };
        let mut route = std::mem::take(&mut self.route_scratch);
        self.router
            .route_into(tuple.stream, tuple.key, scale, &mut self.rng, &mut route);
        if route.fallback {
            self.metrics.fallback_routes += 1;
        }
        for &peer in &route.peers {
            let piggyback = if self.router.sync_due(peer) {
                // dsj-lint: allow(hot-path-opaque-call) — summary serialization allocates by design; amortized over the sync interval, not per tuple
                self.router.full_summaries(peer)
            } else {
                // dsj-lint: allow(hot-path-opaque-call) — piggyback payload assembly allocates by design; bounded by the piggyback budget, not per tuple
                self.router.piggyback(peer)
            };
            let msg = Msg::Tuple { tuple, piggyback };
            self.metrics.tuple_msgs_sent += 1;
            self.metrics.data_bytes_sent += msg.data_bytes() as u64;
            self.metrics.overhead_bytes_sent += msg.overhead_bytes() as u64;
            self.router.note_sent(peer);
            if let Some(g) = &mut self.governor {
                g.note_sent(now_us, msg.wire_bytes() as u64);
            }
            out.push((peer, msg));
        }

        // Standalone summary batches for peers no tuple message reached in
        // too long (Fig. 7: "transmitted on their own").
        for peer in peers_of(self.me, self.n) {
            if route.peers.contains(&peer) || !self.router.sync_overdue(peer) {
                continue;
            }
            // dsj-lint: allow(hot-path-opaque-call) — standalone summary batches allocate by design; sent only when a peer's sync is overdue
            let payloads = self.router.full_summaries(peer);
            if payloads.is_empty() {
                continue;
            }
            let msg = Msg::Summary(payloads);
            self.metrics.summary_msgs_sent += 1;
            self.metrics.overhead_bytes_sent += msg.overhead_bytes() as u64;
            if let Some(g) = &mut self.governor {
                g.note_sent(now_us, msg.wire_bytes() as u64);
            }
            out.push((peer, msg));
        }
        self.route_scratch = route;
    }

    /// Transport-agnostic network-message handling: apply summaries, probe
    /// the local windows with forwarded tuples.
    pub fn handle_message(&mut self, from: u16, msg: Msg) {
        match msg {
            Msg::Tuple { tuple, piggyback } => {
                for p in &piggyback {
                    let dropped = self.router.apply_summary(from, p);
                    debug_assert!(
                        dropped == 0,
                        "peer {from} piggybacked {dropped} out-of-range summary updates"
                    );
                    self.metrics.summary_index_drops += dropped;
                }
                self.metrics.tuples_received += 1;
                // Probe-only: count pairs whose later tuple is the prober.
                let matches = self
                    .window(tuple.stream.opposite())
                    .probe_before(tuple.key, tuple.seq);
                if self.counts(tuple.seq) {
                    self.metrics.remote_matches += u64::from(matches);
                    self.fold_match(tuple.seq, matches);
                }
            }
            Msg::Summary(payloads) => {
                self.metrics.summaries_received += 1;
                for p in &payloads {
                    let dropped = self.router.apply_summary(from, p);
                    debug_assert!(
                        dropped == 0,
                        "peer {from} sent {dropped} out-of-range summary updates"
                    );
                    self.metrics.summary_index_drops += dropped;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NodeEngine;
    use crate::strategy::test_config;
    use dsj_simnet::{LinkConfig, SimTime, Simulation};

    fn cluster(algorithm: Algorithm, n: u16) -> Simulation<NodeEngine> {
        let nodes = (0..n)
            .map(|me| {
                NodeEngine::new(JoinNode::new(
                    algorithm,
                    test_config(me, n),
                    WindowSpec::count(32),
                    0,
                ))
            })
            .collect();
        Simulation::new(nodes, LinkConfig::instant(), 11)
    }

    fn inject_seq(sim: &mut Simulation<NodeEngine>, arrivals: &[(u16, StreamId, u32)]) {
        for (i, &(node, stream, key)) in arrivals.iter().enumerate() {
            let t = SimTime::from_micros(i as u64 * 1_000);
            sim.inject_at(t, node, Tuple::new(stream, key, i as u64, node));
        }
    }

    #[test]
    fn base_finds_all_cross_node_matches() {
        let mut sim = cluster(Algorithm::Base, 3);
        inject_seq(
            &mut sim,
            &[
                (0, StreamId::R, 7),
                (1, StreamId::S, 7),
                (2, StreamId::S, 7),
                (0, StreamId::R, 7),
            ],
        );
        sim.run_to_quiescence();
        let total: u64 = sim.iter_nodes().map(|n| n.metrics().matches()).sum();
        // Pairs: (r0,s1) (r0,s2) (r3,s1) (r3,s2) remote + (r0,r3? same
        // stream no) — 4 matches, plus none local.
        assert_eq!(total, 4);
    }

    #[test]
    fn local_matches_counted_once() {
        let mut sim = cluster(Algorithm::Base, 2);
        inject_seq(
            &mut sim,
            &[
                (0, StreamId::R, 5),
                (0, StreamId::S, 5),
                (0, StreamId::S, 5),
            ],
        );
        sim.run_to_quiescence();
        let m0 = *sim.node(0).metrics();
        assert_eq!(m0.local_matches, 2, "r0 joins s1 and s2 locally");
        // Forwards to node 1 find nothing.
        let m1 = *sim.node(1).metrics();
        assert_eq!(m1.remote_matches, 0);
    }

    #[test]
    fn warmup_exclusion_skips_early_matches() {
        let nodes = (0..2)
            .map(|me| {
                NodeEngine::new(JoinNode::new(
                    Algorithm::Base,
                    test_config(me, 2),
                    WindowSpec::count(32),
                    2, // count only from seq 2
                ))
            })
            .collect();
        let mut sim = Simulation::new(nodes, LinkConfig::instant(), 3);
        inject_seq(
            &mut sim,
            &[
                (0, StreamId::R, 5),
                (0, StreamId::S, 5),
                (0, StreamId::S, 5),
            ],
        );
        sim.run_to_quiescence();
        let total: u64 = sim.iter_nodes().map(|n| n.metrics().matches()).sum();
        assert_eq!(total, 1, "only the seq-2 probe counts");
    }

    #[test]
    fn dftt_cluster_converges_to_targeted_routing() {
        let mut sim = cluster(Algorithm::Dftt, 3);
        // Node 1 accumulates S tuples with key 10; node 2 with key 99.
        // After summaries propagate, node 0's R tuples with key 10 go to 1.
        let mut arrivals = Vec::new();
        for i in 0..120u32 {
            arrivals.push((1, StreamId::S, 10 + (i % 3)));
            arrivals.push((2, StreamId::S, 99 + (i % 3)));
            arrivals.push((0, StreamId::R, 10));
        }
        inject_seq(&mut sim, &arrivals);
        sim.run_to_quiescence();
        let sent_01 = sim.metrics().link_messages(0, 1);
        let sent_02 = sim.metrics().link_messages(0, 2);
        assert!(
            sent_01 > 2 * sent_02.max(1),
            "node 0 should target node 1: {sent_01} vs {sent_02}"
        );
        let found: u64 = sim.iter_nodes().map(|n| n.metrics().remote_matches).sum();
        assert!(found > 0, "remote matches must be reported");
    }

    #[test]
    fn governor_aimd_dynamics() {
        let mut g = ThroughputGovernor::new(8_000); // 1000 bytes/s
                                                    // Below budget: scale stays at 1.
        g.note_sent(0, 100);
        assert_eq!(g.scale(1_000), 1.0);
        // Blast 10x the budget into the window: multiplicative decrease.
        for i in 0..10 {
            g.note_sent(2_000 + i * 10, 1_000);
        }
        let s1 = g.scale(3_000);
        assert!(s1 < 1.0);
        let s2 = g.scale(3_100);
        assert!(s2 < s1, "overload keeps shrinking the scale");
        // A quiet second later the window drains and the scale recovers
        // additively.
        let recovered = g.scale(2_000_000);
        assert!(recovered > s2);
        assert!(recovered <= 1.0);
        // Scale never collapses to zero under sustained overload.
        let mut g2 = ThroughputGovernor::new(8);
        for i in 0..10_000u64 {
            g2.note_sent(i, 100);
            g2.scale(i);
        }
        assert!(g2.current_scale() >= 0.05);
    }

    #[test]
    fn metrics_absorb_sums() {
        let mut a = NodeMetrics {
            arrivals: 1,
            local_matches: 2,
            remote_matches: 3,
            tuple_msgs_sent: 4,
            summary_msgs_sent: 5,
            data_bytes_sent: 6,
            overhead_bytes_sent: 7,
            fallback_routes: 8,
            tuples_received: 9,
            summaries_received: 10,
            summary_index_drops: 11,
            key_domain_drops: 12,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.arrivals, 2);
        assert_eq!(a.matches(), 10);
        assert_eq!(a.summaries_received, 20);
        assert_eq!(a.summary_index_drops, 22);
        assert_eq!(a.key_domain_drops, 24);
    }

    #[test]
    fn out_of_domain_arrival_is_dropped_and_counted() {
        // test_config uses domain 256: key 300 must not reach the windows,
        // the router, or the wire — and must not panic.
        let mut node = JoinNode::new(Algorithm::Dftt, test_config(0, 3), WindowSpec::count(32), 0);
        let out = node.handle_arrival(Tuple::new(StreamId::R, 300, 0, 0), 0);
        assert!(out.is_empty(), "dropped arrivals send nothing");
        assert_eq!(node.metrics().key_domain_drops, 1);
        assert_eq!(node.metrics().arrivals, 0, "drop precedes the count");
        assert_eq!(node.window(StreamId::R).len(), 0, "never stored");
        // In-domain arrivals still flow.
        let _ = node.handle_arrival(Tuple::new(StreamId::R, 200, 1, 0), 1);
        assert_eq!(node.metrics().arrivals, 1);
    }
}
