//! Benchmark facade over the per-tuple routing hot path.
//!
//! The routing layer (`Router`, `Route`, `RouterConfig`) is crate-private
//! by design — simulation code goes through [`crate::JoinNode`]. The
//! `dsj-bench` micro-benchmarks and the hot-path determinism tests,
//! however, need to drive a router *directly*, without a window, a
//! simulator or message transport around it, so that `ns/op` numbers
//! isolate the routing decision itself. This module is that thin, stable
//! harness: it owns one router plus the node-identical seeded RNG and
//! exposes exactly the operations the per-tuple path performs.
//!
//! [`RouterHarness::route`] runs the optimized production path;
//! `RouterHarness::route_reference` (behind the `reference` feature)
//! runs a retained copy of the pre-optimization implementation so
//! equivalence (same peers, same fallback flag, same RNG draw counts)
//! stays checkable forever.

use crate::flow::FlowParams;
use crate::strategy::{Algorithm, Route, Router, RouterConfig};
use dsj_stream::StreamId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cluster dimensions for a [`RouterHarness`] — the subset of
/// [`crate::ClusterConfig`] the routing layer can see.
#[derive(Debug, Clone, Copy)]
pub struct HarnessParams {
    /// Number of nodes `N` (the router samples among the `N-1` peers).
    pub n: u16,
    /// Join-attribute domain size `D`.
    pub domain: u32,
    /// DFT compression factor κ: `K = max(1, D/κ)` coefficients retained;
    /// Bloom/sketch summaries are sized to the same bytes.
    pub kappa: u32,
    /// Per-stream window size `W` (sizes summaries and sync cadence).
    pub window: usize,
    /// Master seed; each harness derives its RNG exactly as
    /// [`crate::JoinNode`] does, so routing draws match a simulated node.
    pub seed: u64,
}

impl Default for HarnessParams {
    /// The paper-like defaults of [`crate::ClusterConfig::new`] at `N = 4`.
    fn default() -> Self {
        HarnessParams {
            n: 4,
            domain: 1 << 12,
            kappa: 256,
            window: 1024,
            seed: 42,
        }
    }
}

/// One node's router, RNG and route scratch — the per-tuple hot path with
/// everything else stripped away.
#[derive(Debug)]
pub struct RouterHarness {
    me: u16,
    router: Router,
    rng: StdRng,
    scratch: Route,
}

impl RouterHarness {
    /// Builds node `me`'s router exactly as [`crate::ClusterConfig`] would
    /// (same retained-coefficient sizing, same sync intervals, same
    /// node-derived RNG seed).
    ///
    /// # Panics
    ///
    /// Panics if `me >= p.n` or `p.n < 2`.
    pub fn new(algorithm: Algorithm, me: u16, p: HarnessParams) -> Self {
        assert!(p.n >= 2, "need at least two nodes");
        assert!(me < p.n, "node id out of range");
        let retained = ((p.domain / p.kappa.max(1)).max(1)) as usize;
        let cfg = RouterConfig {
            me,
            n: p.n,
            domain: p.domain,
            retained,
            window: p.window,
            flow: FlowParams::default(),
            seed: p.seed,
            sync_sent_interval: 256,
            sync_arrival_interval: 2048,
            rho_refresh: 64,
        };
        RouterHarness {
            me,
            router: Router::new(algorithm, cfg),
            rng: StdRng::seed_from_u64(p.seed ^ (0xD5EED ^ u64::from(me) << 32)),
            scratch: Route::default(),
        }
    }

    /// This harness's node id.
    pub fn id(&self) -> u16 {
        self.me
    }

    /// Feeds one local arrival (and the keys it evicted) into the router's
    /// summaries — what [`crate::JoinNode`] does on every window insert.
    pub fn local_update(&mut self, stream: StreamId, key: u32, evicted: &[u32]) {
        self.router.local_update(stream, key, evicted);
        self.router.note_arrival();
    }

    /// Ships this node's full summaries to `dst` — the bulk synchronization
    /// a simulated node performs when a peer's summary view goes stale.
    pub fn exchange_into(&mut self, dst: &mut RouterHarness) {
        for payload in self.router.full_summaries(dst.me) {
            dst.router.apply_summary(self.me, &payload);
        }
    }

    /// Routes one tuple through the production hot path; returns the chosen
    /// peers (sorted, deduplicated where the strategy does so) and whether
    /// the round-robin fallback produced them.
    pub fn route(&mut self, stream: StreamId, key: u32) -> (&[u16], bool) {
        let mut out = std::mem::take(&mut self.scratch);
        self.router
            .route_into(stream, key, 1.0, &mut self.rng, &mut out);
        self.scratch = out;
        (&self.scratch.peers, self.scratch.fallback)
    }

    /// Routes one tuple through the retained pre-optimization reference
    /// implementation. Consumes RNG draws exactly as [`Self::route`] does,
    /// so two identically-seeded harnesses — one routed, one
    /// reference-routed — must stay in lockstep forever.
    #[cfg(any(test, feature = "reference"))]
    pub fn route_reference(&mut self, stream: StreamId, key: u32) -> (Vec<u16>, bool) {
        let route = self.router.route_reference(stream, key, 1.0, &mut self.rng);
        (route.peers, route.fallback)
    }
}
