//! Flow control: turning correlation coefficients into bounded forwarding
//! probabilities (Section 5.2.2), detecting the uniform-data worst case,
//! and the round-robin fallback policy.
//!
//! For every arriving tuple, node `i` forwards to node `j` with probability
//! `p_{i,j} = w_i · ρ_{i,j}` (Eqn. 4). The weight `w_i` is chosen so the
//! expected number of transmissions `T_i = Σ_j p_{i,j}` satisfies
//! `1 ≤ T_i ≤ log N` (Eqn. 9). A near-zero variance among the `ρ_{i,j}`
//! signals uniformly distributed data — the worst case of Theorems 1/2 —
//! and triggers a heuristic fallback (round-robin) as the paper prescribes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The message-complexity operating point `T_i` (Eqn. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetComplexity {
    /// A fixed expected number of transmissions per tuple (the paper's
    /// `T_i = 1` bound is `Constant(1.0)`). Values below 1 under-send and
    /// are allowed for calibration sweeps.
    Constant(f64),
    /// `T_i = log₂ N` — the paper's upper operating point.
    LogN,
}

impl TargetComplexity {
    /// The numeric target for a cluster of `n` nodes, clamped to the
    /// feasible `[0, n−1]` range.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn target(&self, n: u16) -> f64 {
        assert!(n >= 2, "need at least two nodes");
        let raw = match *self {
            TargetComplexity::Constant(c) => c,
            TargetComplexity::LogN => (n as f64).log2().max(1.0),
        };
        raw.clamp(0.0, (n - 1) as f64)
    }
}

impl Default for TargetComplexity {
    fn default() -> Self {
        TargetComplexity::Constant(1.0)
    }
}

/// Tunables of the flow-filtering layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowParams {
    /// Message-complexity operating point.
    pub target: TargetComplexity,
    /// Coefficient-of-variation (σ/μ) threshold below which the per-peer
    /// correlations are considered indistinguishable (uniform-data worst
    /// case).
    pub uniform_cv_threshold: f64,
    /// Probability of routing a tuple by flow probabilities even when a
    /// membership test (DFTT/BLOOM) finds no candidate site — keeps the
    /// summaries honest when they go stale.
    pub explore: f64,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            target: TargetComplexity::default(),
            uniform_cv_threshold: 0.05,
            explore: 0.05,
        }
    }
}

/// Computes forwarding probabilities `p_j = clamp(w·ρ⁺_j, 0, 1)` with the
/// weight `w` chosen so `Σ_j p_j` meets `target` as closely as clamping
/// allows (two redistribution passes).
///
/// `None` entries are peers with no summary yet; they receive the blind
/// probability `target / len` so unknown peers are neither starved nor
/// flooded. Returns `None` when every known correlation is non-positive —
/// the caller should fall back to a heuristic policy.
pub fn forwarding_probabilities(rhos: &[Option<f64>], target: f64) -> Option<Vec<f64>> {
    let mut scratch = FlowScratch::default();
    let mut probs = Vec::new();
    forwarding_probabilities_into(rhos, target, &mut scratch, &mut probs).then_some(probs)
}

/// Reusable scratch for [`forwarding_probabilities_into`] — callers on the
/// per-tuple hot path keep one of these alive so the water-fill passes
/// allocate nothing at steady state.
#[derive(Debug, Clone, Default)]
pub struct FlowScratch {
    affinity: Vec<f64>,
    open: Vec<usize>,
    next_open: Vec<usize>,
}

/// Allocation-free core of [`forwarding_probabilities`]: fills `probs` in
/// place (cleared first) and returns whether a distribution exists. The
/// float operations run in exactly the order of the allocating wrapper,
/// so results are bit-identical.
// dsj-lint: hot-path
pub fn forwarding_probabilities_into(
    rhos: &[Option<f64>],
    target: f64,
    scratch: &mut FlowScratch,
    probs: &mut Vec<f64>,
) -> bool {
    probs.clear();
    if rhos.is_empty() || target <= 0.0 {
        return false;
    }
    let blind = (target / rhos.len() as f64).min(1.0);
    let known_positive: f64 = rhos.iter().flatten().map(|&r| r.max(0.0)).sum();
    if known_positive <= 1e-12 && rhos.iter().any(|r| r.is_some()) {
        return false;
    }
    // Effective affinity per peer: clamped ρ for known peers, a placeholder
    // proportional to the blind probability for unknown ones.
    let mean_known = {
        let k = rhos.iter().flatten().count();
        if k == 0 {
            1.0
        } else {
            (known_positive / k as f64).max(1e-6)
        }
    };
    scratch.affinity.clear();
    scratch.affinity.extend(rhos.iter().map(|r| match r {
        Some(v) => v.max(0.0),
        None => mean_known.min(blind.max(1e-6)),
    }));
    probs.resize(rhos.len(), 0.0);
    let mut remaining = target.min(rhos.len() as f64);
    // Water-fill in two passes: peers clamped at 1.0 release budget that is
    // redistributed over the rest.
    scratch.open.clear();
    scratch.open.extend(0..rhos.len());
    for _ in 0..2 {
        let mass: f64 = scratch.open.iter().map(|&j| scratch.affinity[j]).sum();
        if mass <= 1e-12 || remaining <= 1e-12 {
            break;
        }
        let w = remaining / mass;
        scratch.next_open.clear();
        for &j in &scratch.open {
            let p = (w * scratch.affinity[j]).min(1.0);
            probs[j] = p;
            if p < 1.0 {
                scratch.next_open.push(j);
            }
        }
        remaining = (target - probs.iter().sum::<f64>()).max(0.0);
        std::mem::swap(&mut scratch.open, &mut scratch.next_open);
    }
    // Budget the affinities could not justify is spread uniformly — a
    // target approaching N−1 must approach broadcast regardless of how
    // skewed (or zero) the correlations are.
    for _ in 0..2 {
        if remaining <= 1e-9 {
            break;
        }
        scratch.open.clear();
        scratch
            .open
            .extend((0..probs.len()).filter(|&j| probs[j] < 1.0));
        if scratch.open.is_empty() {
            break;
        }
        let share = remaining / scratch.open.len() as f64;
        for &j in &scratch.open {
            probs[j] = (probs[j] + share).min(1.0);
        }
        remaining = (target - probs.iter().sum::<f64>()).max(0.0);
    }
    true
}

/// `true` when the known correlations are too uniform to carry routing
/// signal — the Theorem 1/2 worst case (Section 5.2.2). The test is on the
/// coefficient of variation σ/μ: uniformly distributed data drives every
/// pairwise ρ to the same (high) value, while skewed data spreads them.
pub fn detect_uniform(rhos: &[Option<f64>], cv_threshold: f64) -> bool {
    // Two streaming passes over the known entries (count+sum, then
    // variance) — same summation order as collecting them into a buffer,
    // without the per-call allocation.
    let mut count = 0usize;
    let mut sum = 0.0f64;
    for &r in rhos.iter().flatten() {
        count += 1;
        sum += r;
    }
    if count < 2 || count * 2 < rhos.len() {
        // Too few summaries to judge; assume skew until proven otherwise.
        return false;
    }
    let n = count as f64;
    let mean = sum / n;
    if mean <= 1e-9 {
        // No correlation mass at all: let the probability builder decide.
        return false;
    }
    let var = rhos
        .iter()
        .flatten()
        .map(|&r| (r - mean) * (r - mean))
        .sum::<f64>()
        / n;
    var.sqrt() / mean < cv_threshold
}

/// Samples the set of peers to forward to, one Bernoulli draw per peer.
///
/// Exactly one draw is consumed per entry of `probs` — including clamped
/// certainties (`p >= 1`) and dead peers (`p <= 0`). Short-circuiting
/// those would shift the RNG stream seen by every later peer whenever a
/// single probability saturates, making routing decisions depend on
/// *which* peers were certain rather than only on the seed.
pub fn sample_recipients(probs: &[f64], rng: &mut StdRng) -> Vec<usize> {
    let mut out = Vec::new();
    sample_recipients_into(probs, rng, &mut out);
    out
}

/// Allocation-free [`sample_recipients`]: clears and fills `out`. The
/// one-draw-per-peer contract is identical, so both variants consume the
/// same RNG stream.
// dsj-lint: hot-path
pub fn sample_recipients_into(probs: &[f64], rng: &mut StdRng, out: &mut Vec<usize>) {
    out.clear();
    for (j, &p) in probs.iter().enumerate() {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            out.push(j);
        }
    }
}

/// Round-robin peer selection — the fallback distribution policy for the
/// uniform worst case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    cursor: u16,
}

impl RoundRobin {
    /// Creates a fresh round-robin state.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }

    /// Picks up to `count` distinct peers from a mesh of `n` nodes,
    /// skipping `me`, advancing the cursor across calls.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `me >= n`.
    pub fn pick(&mut self, me: u16, n: u16, count: usize) -> Vec<u16> {
        let mut out = Vec::new();
        self.pick_into(me, n, count, &mut out);
        out
    }

    /// Allocation-free [`RoundRobin::pick`]: clears and fills `out`,
    /// advancing the cursor identically.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `me >= n`.
    // dsj-lint: hot-path
    pub fn pick_into(&mut self, me: u16, n: u16, count: usize, out: &mut Vec<u16>) {
        assert!(n >= 2, "need at least two nodes");
        assert!(me < n, "node id out of range");
        let peers = (n - 1) as usize;
        let take = count.min(peers);
        out.clear();
        while out.len() < take {
            let candidate = self.cursor % n;
            self.cursor = (self.cursor + 1) % n;
            if candidate != me {
                out.push(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn target_values() {
        assert_eq!(TargetComplexity::Constant(1.0).target(8), 1.0);
        assert_eq!(TargetComplexity::LogN.target(8), 3.0);
        // log2(2) = 1 → floor at 1.
        assert_eq!(TargetComplexity::LogN.target(2), 1.0);
        // Clamped to n-1.
        assert_eq!(TargetComplexity::Constant(99.0).target(4), 3.0);
    }

    #[test]
    fn probabilities_meet_target() {
        let rhos = vec![Some(0.9), Some(0.3), Some(0.1), Some(0.5)];
        let p = forwarding_probabilities(&rhos, 1.0).unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // Monotone in ρ.
        assert!(p[0] > p[3] && p[3] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn probabilities_clamp_and_redistribute() {
        let rhos = vec![Some(1.0), Some(0.01), Some(0.01)];
        let p = forwarding_probabilities(&rhos, 2.0).unwrap();
        assert!(p[0] <= 1.0 + 1e-12);
        let sum: f64 = p.iter().sum();
        assert!(sum > 1.0, "clamped budget redistributed: {sum}");
    }

    #[test]
    fn negative_rho_gets_zero() {
        let rhos = vec![Some(-0.5), Some(0.5)];
        let p = forwarding_probabilities(&rhos, 1.0).unwrap();
        assert_eq!(p[0], 0.0);
        assert!(p[1] > 0.0);
    }

    #[test]
    fn all_nonpositive_is_none() {
        assert!(forwarding_probabilities(&[Some(-0.1), Some(0.0)], 1.0).is_none());
        assert!(forwarding_probabilities(&[], 1.0).is_none());
        assert!(forwarding_probabilities(&[Some(0.5)], 0.0).is_none());
    }

    #[test]
    fn unknown_peers_get_blind_probability() {
        let rhos = vec![None, None, None, None];
        let p = forwarding_probabilities(&rhos, 1.0).unwrap();
        for &pj in &p {
            assert!((pj - 0.25).abs() < 1e-9, "blind prob {pj}");
        }
    }

    #[test]
    fn uniform_detection() {
        let flat = vec![Some(0.30), Some(0.31), Some(0.295), Some(0.305)];
        assert!(detect_uniform(&flat, 0.05));
        let skewed = vec![Some(0.9), Some(0.1), Some(0.3), Some(0.2)];
        assert!(!detect_uniform(&skewed, 0.05));
        // Too few known values: undecided ⇒ not uniform.
        let sparse = vec![Some(0.3), None, None, None];
        assert!(!detect_uniform(&sparse, 0.05));
        // Small but *spread* correlations are signal, not uniformity.
        let small_spread = vec![Some(0.07), Some(0.13), Some(0.09), Some(0.06)];
        assert!(!detect_uniform(&small_spread, 0.05));
        // Zero mass: undecided (the probability builder falls back anyway).
        let zero = vec![Some(0.0), Some(0.0)];
        assert!(!detect_uniform(&zero, 0.05));
    }

    #[test]
    fn sampling_respects_certainty() {
        let mut rng = StdRng::seed_from_u64(1);
        let picks = sample_recipients(&[1.0, 0.0, 1.0], &mut rng);
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn sampling_consumes_one_draw_per_peer() {
        use rand::Rng;
        // Saturated (clamped) and zero probabilities still consume their
        // Bernoulli draw, so the stream position after sampling depends
        // only on the peer count — never on the probability values.
        let mut sampled = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        let picks = sample_recipients(&[1.0, 0.0, 0.3, 2.5], &mut sampled);
        assert!(
            picks.contains(&0) && picks.contains(&3),
            "certainties always picked"
        );
        assert!(!picks.contains(&1), "zero probability never picked");
        for _ in 0..4 {
            reference.gen_bool(0.5);
        }
        assert_eq!(
            sampled.gen::<u64>(),
            reference.gen::<u64>(),
            "exactly one draw per peer entry"
        );
    }

    #[test]
    fn sampling_expected_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let probs = vec![0.5, 0.25, 0.25];
        let total: usize = (0..10_000)
            .map(|_| sample_recipients(&probs, &mut rng).len())
            .sum();
        let avg = total as f64 / 10_000.0;
        assert!((avg - 1.0).abs() < 0.05, "average sends {avg}");
    }

    #[test]
    fn round_robin_cycles_without_self() {
        let mut rr = RoundRobin::new();
        let a = rr.pick(1, 4, 2);
        let b = rr.pick(1, 4, 2);
        let c = rr.pick(1, 4, 2);
        assert_eq!(a, vec![0, 2]);
        assert_eq!(b, vec![3, 0]);
        assert_eq!(c, vec![2, 3]);
        for v in [a, b, c] {
            assert!(!v.contains(&1));
        }
    }

    #[test]
    fn round_robin_caps_at_peer_count() {
        let mut rr = RoundRobin::new();
        let picks = rr.pick(0, 3, 10);
        assert_eq!(picks.len(), 2);
    }
}
