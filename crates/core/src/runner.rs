//! Experiment runner: builds a cluster, drives a workload through the
//! simulated WAN, and measures the paper's three metrics — ε-error,
//! messages per result tuple, and throughput (Section 6).

use crate::engine::NodeEngine;
use crate::error::RunError;
use crate::flow::{FlowParams, TargetComplexity};
use crate::node::{JoinNode, NodeMetrics};
use crate::obs;
use crate::strategy::{Algorithm, RouterConfig};
use dsj_simnet::{LinkConfig, SimDuration, SimTime, Simulation};
use dsj_stream::gen::{Arrival, ArrivalGen, WorkloadKind};
use dsj_stream::join::GroundTruth;
use dsj_stream::partition::Partitioner;
use dsj_stream::trace::Trace;
use dsj_stream::WindowSpec;
use serde::{Deserialize, Serialize};

/// Configuration of one cluster experiment — a builder whose `run()`
/// executes the full pipeline: workload generation, ground-truth
/// accounting, WAN simulation, and metric aggregation.
///
/// Defaults mirror the paper's setup scaled to laptop runtimes: Zipf
/// α = 0.4 keys, geographic partitioning, the 20–100 ms / 90 kbps WAN
/// model, κ = 256 compression and the `O(1)` message-complexity target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes `N`.
    pub n: u16,
    /// A recorded trace to replay instead of generating `workload`
    /// (node assignments in the trace must fit `n`). Not serialized —
    /// traces live in their own files (`dsj_stream::trace`).
    #[serde(skip)]
    pub trace: Option<Trace>,
    /// The join algorithm.
    pub algorithm: Algorithm,
    /// Per-stream window size `W` at each node.
    pub window: usize,
    /// Join-attribute domain size `D`.
    pub domain: u32,
    /// Total tuples injected (across all nodes, both streams).
    pub tuples: usize,
    /// Workload kind.
    pub workload: WorkloadKind,
    /// Geographic locality of the partitioner (probability a tuple lands
    /// on its key-range owner).
    pub locality: f64,
    /// DFT compression factor κ: `K = max(1, D/κ)` coefficients retained;
    /// Bloom/sketch summaries are sized to the same bytes.
    pub kappa: u32,
    /// Message-complexity operating point.
    pub target: TargetComplexity,
    /// Aggregate tuple arrival rate per node (tuples/second).
    pub arrival_rate: f64,
    /// WAN link model.
    pub link: LinkConfig,
    /// Fraction of the run treated as warm-up (matches not counted).
    pub warmup: f64,
    /// Master seed (workload, latencies, routing draws).
    pub seed: u64,
    /// Flow-control tunables.
    pub flow_overrides: Option<FlowParams>,
    /// Refresh a peer's summary after this many tuple messages to it.
    pub sync_sent_interval: u32,
    /// ... or after this many local arrivals, whichever first.
    pub sync_arrival_interval: u32,
    /// Correlation cache refresh period (arrivals).
    pub rho_refresh: u32,
    /// Per-node outbound bandwidth allowance (bits/second) enforced by the
    /// AIMD throughput governor — the abstract's "automatic throughput
    /// handling based on resource availability". `None` disables governing.
    pub bandwidth_budget_bps: Option<u64>,
    /// When set, windows are bounded by *time* instead of tuple count:
    /// each node keeps tuples seen within the last `ms` milliseconds of
    /// virtual time (the paper notes its method is agnostic to the window
    /// definition — this exercises that claim end-to-end). `window` is
    /// still used to size summaries.
    pub time_window_ms: Option<u64>,
    /// When set, the simulation is cut off this many milliseconds after
    /// the last injection instead of draining to quiescence; results still
    /// queued on saturated links are lost, modeling sustained overload
    /// (used by the Figure 11 throughput experiment). When `None`, every
    /// message is delivered before measuring.
    pub cutoff_grace_ms: Option<u64>,
}

impl ClusterConfig {
    /// Creates a configuration for `n` nodes running `algorithm`, with
    /// paper-like defaults for everything else.
    pub fn new(n: u16, algorithm: Algorithm) -> Self {
        ClusterConfig {
            n,
            trace: None,
            algorithm,
            window: 1024,
            domain: 1 << 12,
            tuples: 20_000,
            workload: WorkloadKind::Zipf { alpha: 0.4 },
            locality: 0.8,
            kappa: 256,
            target: TargetComplexity::Constant(1.0),
            arrival_rate: 200.0,
            link: LinkConfig::paper_wan(),
            warmup: 0.2,
            seed: 42,
            flow_overrides: None,
            sync_sent_interval: 256,
            sync_arrival_interval: 2048,
            rho_refresh: 64,
            bandwidth_budget_bps: None,
            time_window_ms: None,
            cutoff_grace_ms: None,
        }
    }

    /// Sets the per-node window size `W`.
    pub fn window(mut self, w: usize) -> Self {
        self.window = w;
        self
    }

    /// Sets the attribute domain size `D`.
    pub fn domain(mut self, d: u32) -> Self {
        self.domain = d;
        self
    }

    /// Sets the total tuple count.
    pub fn tuples(mut self, t: usize) -> Self {
        self.tuples = t;
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.workload = w;
        self
    }

    /// Sets the geographic locality.
    pub fn locality(mut self, l: f64) -> Self {
        self.locality = l;
        self
    }

    /// Sets the compression factor κ.
    pub fn kappa(mut self, k: u32) -> Self {
        self.kappa = k;
        self
    }

    /// Sets the message-complexity target.
    pub fn target(mut self, t: TargetComplexity) -> Self {
        self.target = t;
        self
    }

    /// Sets the per-node arrival rate (tuples/second).
    pub fn arrival_rate(mut self, r: f64) -> Self {
        self.arrival_rate = r;
        self
    }

    /// Sets the link model.
    pub fn link(mut self, l: LinkConfig) -> Self {
        self.link = l;
        self
    }

    /// Sets the warm-up fraction.
    pub fn warmup(mut self, w: f64) -> Self {
        self.warmup = w;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Overrides flow-control tunables.
    pub fn flow(mut self, f: FlowParams) -> Self {
        self.flow_overrides = Some(f);
        self
    }

    /// Replays a recorded [`Trace`] instead of generating the workload.
    /// The trace's length overrides `tuples`. Arrivals targeting nodes
    /// `>= n` or keys `>= domain` are rejected by [`ClusterConfig::run`]
    /// as a [`RunError`].
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.tuples = trace.len();
        self.trace = Some(trace);
        self
    }

    /// Caps each node's outbound rate at `budget_bps` bits/second via the
    /// AIMD throughput governor.
    pub fn bandwidth_budget(mut self, budget_bps: u64) -> Self {
        self.bandwidth_budget_bps = Some(budget_bps);
        self
    }

    /// Bounds windows by time (milliseconds of virtual time) instead of
    /// tuple count.
    pub fn time_window(mut self, ms: u64) -> Self {
        self.time_window_ms = Some(ms);
        self
    }

    /// Cuts the simulation off `ms` milliseconds after the last injection
    /// (sustained-overload semantics; see [`ClusterConfig::cutoff_grace_ms`]).
    pub fn cutoff_grace(mut self, ms: u64) -> Self {
        self.cutoff_grace_ms = Some(ms);
        self
    }

    /// Sets the summary synchronization intervals: refresh a peer's copy
    /// after `sent` tuple messages to it, or after `arrivals` local
    /// arrivals, whichever comes first.
    pub fn sync_intervals(mut self, sent: u32, arrivals: u32) -> Self {
        self.sync_sent_interval = sent;
        self.sync_arrival_interval = arrivals;
        self
    }

    /// Checks the configuration for the errors [`ClusterConfig::run`]
    /// would report, without running anything. Other runtimes hosting the
    /// same node logic (e.g. `dsj-runtime`'s live cluster) call this
    /// before spawning threads.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] the configuration violates.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.n < 2 {
            return Err(RunError::TooFewNodes(self.n));
        }
        if self.kappa > self.domain {
            return Err(RunError::KappaTooLarge {
                kappa: self.kappa,
                domain: self.domain,
            });
        }
        // Summary coefficient updates address the retained prefix with a
        // 16-bit wire index; a longer prefix would silently truncate on
        // encode (`CoeffUpdate.index`).
        let retained = ((self.domain / self.kappa.max(1)).max(1)) as usize;
        if retained > usize::from(u16::MAX) + 1 {
            return Err(RunError::RetainedTooLarge { retained });
        }
        if self.tuples == 0 {
            return Err(RunError::NoTuples);
        }
        if let Some(trace) = &self.trace {
            for a in trace.arrivals() {
                if a.node >= self.n {
                    return Err(RunError::TraceNodeOutOfRange {
                        node: a.node,
                        n: self.n,
                    });
                }
                if a.key >= self.domain {
                    return Err(RunError::TraceKeyOutOfDomain {
                        key: a.key,
                        domain: self.domain,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the experiment and returns its report.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] for invalid configurations (see
    /// [`RunError`]'s variants).
    pub fn run(&self) -> Result<ExperimentReport, RunError> {
        self.validate()?;
        let mut reg = obs::Registry::new();

        // Build the cluster: one engine per node over the simulated WAN
        // transport.
        let mut sim = reg.time_phase("build", || {
            let nodes: Vec<NodeEngine> = (0..self.n)
                .map(|me| NodeEngine::new(self.build_node(me)))
                .collect();
            Simulation::new(nodes, self.link, self.seed ^ 0x51A1)
        });

        // Generate the workload and account ground truth.
        let warmup_seq = (self.tuples as f64 * self.warmup) as u64;
        // Ground truth evicts with the same clock the nodes use: tuple
        // count for count windows, virtual arrival time for time windows.
        let dt_us = self.interarrival_us();
        let (arrivals, truth_matches) = reg.time_phase("workload", || {
            let arrivals = self.arrivals();
            let mut truth = GroundTruth::new(self.n as usize, self.window_spec());
            let mut truth_matches = 0u64;
            for a in &arrivals {
                let m = truth.observe(a.tuple(), a.seq * dt_us);
                if a.seq >= warmup_seq {
                    truth_matches += m.total();
                }
            }
            (arrivals, truth_matches)
        });

        // Inject at the configured aggregate rate and run to completion.
        let last_inject = reg.time_phase("inject", || {
            let mut last_inject = SimTime::ZERO;
            for a in &arrivals {
                let t = SimTime::ZERO + SimDuration::from_micros(a.seq * dt_us);
                last_inject = t;
                sim.inject_at(t, a.node, a.tuple());
            }
            last_inject
        });
        let horizon = reg.time_phase("simulate", || match self.cutoff_grace_ms {
            Some(ms) => {
                let horizon = last_inject + SimDuration::from_millis(ms);
                sim.run_until(horizon);
                horizon
            }
            None => {
                sim.run_to_quiescence();
                sim.now()
            }
        });

        // Aggregate.
        let report = reg.time_phase("aggregate", || {
            let mut total = NodeMetrics::default();
            let mut fallback_events = 0u64;
            let mut per_node_arrivals = Vec::with_capacity(self.n as usize);
            let mut per_node_sent = Vec::with_capacity(self.n as usize);
            for node in sim.iter_nodes() {
                total.absorb(node.metrics());
                fallback_events += node.fallback_events();
                per_node_arrivals.push(node.metrics().arrivals);
                per_node_sent.push(node.metrics().tuple_msgs_sent);
            }
            let mean_arrivals = self.tuples as f64 / self.n as f64;
            let load_imbalance = per_node_arrivals
                .iter()
                .fold(0.0_f64, |acc, &a| acc.max(a as f64))
                / mean_arrivals.max(1e-9);
            let reported = total.matches();
            let epsilon = if truth_matches == 0 {
                0.0
            } else {
                ((truth_matches as f64 - reported as f64) / truth_matches as f64).max(0.0)
            };
            let duration = horizon.as_secs_f64().max(1e-9);
            let messages = sim.metrics().messages_sent;
            ExperimentReport {
                algorithm: self.algorithm,
                workload: self.workload.label().to_string(),
                n: self.n,
                window: self.window,
                domain: self.domain,
                kappa: self.kappa,
                tuples: self.tuples,
                truth_matches,
                reported_matches: reported,
                epsilon,
                messages,
                tuple_msgs: total.tuple_msgs_sent,
                summary_msgs: total.summary_msgs_sent,
                bytes: sim.metrics().bytes_sent,
                data_bytes: total.data_bytes_sent,
                overhead_bytes: total.overhead_bytes_sent,
                overhead_ratio: if total.data_bytes_sent == 0 {
                    0.0
                } else {
                    total.overhead_bytes_sent as f64 / total.data_bytes_sent as f64
                },
                messages_per_result: messages as f64 / reported.max(1) as f64,
                msgs_per_tuple: total.tuple_msgs_sent as f64 / self.tuples as f64,
                duration_secs: duration,
                throughput: reported as f64 / duration,
                fallback_fraction: total.fallback_routes as f64 / self.tuples.max(1) as f64,
                fallback_events,
                per_node_arrivals,
                per_node_sent,
                load_imbalance,
                dropped_messages: sim.metrics().messages_dropped,
            }
        });
        // Structured observability: skipped entirely unless a harness
        // installed a collector and set an experiment scope (repro's
        // `--metrics-out`), so plain `run()` callers pay nothing.
        if obs::enabled() {
            self.export_observations(&mut reg, &report, sim.metrics());
            for (me, node) in sim.iter_nodes().enumerate() {
                node.metrics().record_into(&mut reg, me as u16);
            }
            obs::emit(reg);
        }
        Ok(report)
    }

    /// Fills `reg` with the run-level counters, gauges and network
    /// histograms of a finished run.
    fn export_observations(
        &self,
        reg: &mut obs::Registry,
        report: &ExperimentReport,
        net: &dsj_simnet::NetMetrics,
    ) {
        reg.counter_add("runs", 1);
        reg.counter_add("net.messages_sent", net.messages_sent);
        reg.counter_add("net.messages_delivered", net.messages_delivered);
        reg.counter_add("net.messages_dropped", net.messages_dropped);
        reg.counter_add("net.bytes_sent", net.bytes_sent);
        reg.histogram_merge("net.msg_bytes", &net.msg_bytes);
        reg.histogram_merge("net.delivery_latency_us", &net.delivery_latency_us);
        reg.counter_add("truth_matches", report.truth_matches);
        reg.counter_add("reported_matches", report.reported_matches);
        reg.counter_add("tuples", report.tuples as u64);
        reg.counter_add("fallback_events", report.fallback_events);
        reg.gauge_set("epsilon", report.epsilon);
        reg.gauge_set("messages_per_result", report.messages_per_result);
        reg.gauge_set("msgs_per_tuple", report.msgs_per_tuple);
        reg.gauge_set("overhead_ratio", report.overhead_ratio);
        reg.gauge_set("throughput", report.throughput);
        reg.gauge_set("load_imbalance", report.load_imbalance);
        reg.gauge_set("virtual_duration_secs", report.duration_secs);
    }

    /// Runs the workload in *lockstep*: each arrival is injected at the
    /// current virtual time and the simulation drains to global quiescence
    /// before the next — every probe and summary lands before another
    /// tuple moves. This is the cross-backend reference mode: driven this
    /// way, the simulated cluster, `dsj-runtime`'s threaded cluster and
    /// its TCP cluster process identical per-node event sequences, so
    /// their per-node metrics and match digests must agree exactly
    /// (`crates/runtime/tests/equivalence.rs` pins this for all five
    /// algorithms).
    ///
    /// Equivalence across backends additionally requires configuration
    /// whose behavior is clock-free: count-bounded windows (the default)
    /// and no bandwidth governor, since virtual and wall clocks disagree.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] for invalid configurations.
    pub fn run_lockstep(&self) -> Result<LockstepReport, RunError> {
        self.validate()?;
        let nodes: Vec<NodeEngine> = (0..self.n)
            .map(|me| NodeEngine::new(self.build_node(me)))
            .collect();
        let mut sim = Simulation::new(nodes, self.link, self.seed ^ 0x51A1);
        let arrivals = self.arrivals();
        for a in &arrivals {
            let t = sim.now();
            sim.inject_at(t, a.node, a.tuple());
            sim.run_to_quiescence();
        }
        let per_node: Vec<NodeMetrics> = sim.iter_nodes().map(|e| *e.metrics()).collect();
        let match_digests: Vec<u64> = sim.iter_nodes().map(NodeEngine::match_digest).collect();
        let totals = per_node.iter().fold(NodeMetrics::default(), |mut acc, m| {
            acc.absorb(m);
            acc
        });
        Ok(LockstepReport {
            truth_matches: self.ground_truth_matches(),
            reported_matches: totals.matches(),
            per_node,
            match_digests,
        })
    }

    /// Calibrates the message-complexity target so the measured error is at
    /// most `target_epsilon` (the paper fixes ε = 15% when comparing
    /// message counts and throughput), then returns the calibrated run.
    ///
    /// If even the maximum budget (`T = N−1`, the broadcast limit) cannot
    /// reach the target, the maximum-budget run is returned (best effort,
    /// like the paper's saturated configurations). [`Algorithm::Base`]
    /// needs no calibration.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the underlying runs.
    pub fn run_at_epsilon(&self, target_epsilon: f64) -> Result<(ExperimentReport, f64), RunError> {
        if self.algorithm == Algorithm::Base {
            return Ok((self.run()?, (self.n - 1) as f64));
        }
        let mut lo = 0.25_f64;
        let mut hi = (self.n - 1) as f64;
        let at = |t: f64| -> Result<ExperimentReport, RunError> {
            let mut cfg = self.clone();
            cfg.target = TargetComplexity::Constant(t);
            cfg.run()
        };
        let hi_report = at(hi)?;
        if hi_report.epsilon > target_epsilon {
            return Ok((hi_report, hi));
        }
        let lo_report = at(lo)?;
        if lo_report.epsilon <= target_epsilon {
            return Ok((lo_report, lo));
        }
        let mut best = (hi_report, hi);
        for _ in 0..6 {
            let mid = 0.5 * (lo + hi);
            let report = at(mid)?;
            if report.epsilon <= target_epsilon {
                hi = mid;
                best = (report, mid);
            } else {
                lo = mid;
            }
        }
        Ok(best)
    }

    /// The effective window policy (`window` tuples, or the configured
    /// time span).
    pub fn window_spec(&self) -> WindowSpec {
        match self.time_window_ms {
            Some(ms) => WindowSpec::Time(ms * 1_000),
            None => WindowSpec::count(self.window),
        }
    }

    /// Microseconds between consecutive global arrivals at the configured
    /// aggregate rate.
    pub fn interarrival_us(&self) -> u64 {
        (1_000_000.0 / (self.arrival_rate * self.n as f64)).max(1.0) as u64
    }

    /// Builds node `me` exactly as [`ClusterConfig::run`] would — the hook
    /// other runtimes (e.g. the live threaded cluster in `dsj-runtime`)
    /// use to host the same node logic over a different transport.
    ///
    /// # Panics
    ///
    /// Panics if `me >= self.n`.
    pub fn build_node(&self, me: u16) -> JoinNode {
        assert!(me < self.n, "node id out of range");
        let retained = ((self.domain / self.kappa.max(1)).max(1)) as usize;
        let mut flow = self.flow_overrides.unwrap_or_default();
        flow.target = self.target;
        let cfg = RouterConfig {
            me,
            n: self.n,
            domain: self.domain,
            retained,
            window: self.window,
            flow,
            seed: self.seed,
            sync_sent_interval: self.sync_sent_interval,
            sync_arrival_interval: self.sync_arrival_interval,
            rho_refresh: self.rho_refresh,
        };
        let node = JoinNode::new(
            self.algorithm,
            cfg,
            self.window_spec(),
            (self.tuples as f64 * self.warmup) as u64,
        );
        match self.bandwidth_budget_bps {
            Some(b) => node.with_bandwidth_budget(b),
            None => node,
        }
    }

    /// The deterministic arrival schedule this configuration runs — the
    /// recorded trace when one is attached, otherwise the generated
    /// workload.
    pub fn arrivals(&self) -> Vec<Arrival> {
        if let Some(trace) = &self.trace {
            return trace.arrivals().to_vec();
        }
        let mut gen = ArrivalGen::new(
            self.workload,
            Partitioner::geographic(self.n, self.locality),
            self.domain,
            self.seed ^ 0x6E17,
        );
        gen.take_vec(self.tuples)
    }

    /// The exact (post warm-up) result-set size `|Ψ|` for this
    /// configuration's workload.
    pub fn ground_truth_matches(&self) -> u64 {
        let dt_us = self.interarrival_us();
        let warmup_seq = (self.tuples as f64 * self.warmup) as u64;
        let mut truth = GroundTruth::new(self.n as usize, self.window_spec());
        let mut total = 0u64;
        for a in self.arrivals() {
            let m = truth.observe(a.tuple(), a.seq * dt_us);
            if a.seq >= warmup_seq {
                total += m.total();
            }
        }
        total
    }

    /// Finds the best operating point over a grid of message-complexity
    /// targets: among runs reaching `target_epsilon`, the one with the
    /// highest throughput; otherwise the run with the lowest error.
    ///
    /// Unlike [`ClusterConfig::run_at_epsilon`] this makes no monotonicity
    /// assumption — under link saturation *more* messages can mean *worse*
    /// error (queued results never arrive), which is exactly the regime of
    /// the paper's throughput experiment (Figure 11).
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the underlying runs;
    /// [`RunError::EmptyGrid`] when `grid` is empty.
    pub fn run_best_effort(
        &self,
        target_epsilon: f64,
        grid: &[f64],
    ) -> Result<(ExperimentReport, f64), RunError> {
        if grid.is_empty() {
            return Err(RunError::EmptyGrid);
        }
        if self.algorithm == Algorithm::Base {
            return Ok((self.run()?, (self.n - 1) as f64));
        }
        let mut best: Option<(ExperimentReport, f64)> = None;
        for &t in grid {
            let mut cfg = self.clone();
            cfg.target = TargetComplexity::Constant(t);
            let report = cfg.run()?;
            let better = match &best {
                None => true,
                Some((b, _)) => {
                    let b_ok = b.epsilon <= target_epsilon;
                    let r_ok = report.epsilon <= target_epsilon;
                    match (r_ok, b_ok) {
                        (true, true) => report.throughput > b.throughput,
                        (true, false) => true,
                        (false, true) => false,
                        (false, false) => report.epsilon < b.epsilon,
                    }
                }
            };
            if better {
                best = Some((report, t));
            }
        }
        best.ok_or(RunError::EmptyGrid)
    }
}

/// What [`ClusterConfig::run_lockstep`] measures: the backend-independent
/// slice of a run — exactly the facts the cross-backend equivalence suite
/// compares. (Throughput and wall/virtual durations are deliberately
/// absent: they differ across backends by construction.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockstepReport {
    /// Exact result-set size `|Ψ|` (post warm-up).
    pub truth_matches: u64,
    /// Matches the cluster reported (post warm-up).
    pub reported_matches: u64,
    /// Every node's counters, in node order.
    pub per_node: Vec<NodeMetrics>,
    /// Every node's order-sensitive match digest, in node order.
    pub match_digests: Vec<u64>,
}

/// The measured outcome of one cluster experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Workload label ("UNI", "ZIPF", "FIN", "NWRK").
    pub workload: String,
    /// Cluster size.
    pub n: u16,
    /// Per-node window size.
    pub window: usize,
    /// Attribute domain.
    pub domain: u32,
    /// Compression factor.
    pub kappa: u32,
    /// Tuples injected.
    pub tuples: usize,
    /// Exact result-set size `|Ψ|` (post warm-up).
    pub truth_matches: u64,
    /// Reported result-set size `|Ψ̂|` (post warm-up).
    pub reported_matches: u64,
    /// ε = (|Ψ| − |Ψ̂|)/|Ψ| (Eqn. 1).
    pub epsilon: f64,
    /// Total messages transmitted.
    pub messages: u64,
    /// Tuple messages transmitted.
    pub tuple_msgs: u64,
    /// Standalone summary messages transmitted.
    pub summary_msgs: u64,
    /// Total bytes transmitted.
    pub bytes: u64,
    /// Tuple payload bytes (Figure 8 denominator).
    pub data_bytes: u64,
    /// Summary bytes (Figure 8 numerator).
    pub overhead_bytes: u64,
    /// overhead_bytes / data_bytes.
    pub overhead_ratio: f64,
    /// Messages per reported result tuple (Figure 9's metric).
    pub messages_per_result: f64,
    /// Average tuple messages per arriving tuple (the measured `T_i`).
    pub msgs_per_tuple: f64,
    /// Virtual seconds until the system drained.
    pub duration_secs: f64,
    /// Reported result tuples per virtual second (Figure 11's metric).
    pub throughput: f64,
    /// Fraction of arrivals routed by the worst-case fallback.
    pub fallback_fraction: f64,
    /// Total fallback activations across nodes.
    pub fallback_events: u64,
    /// Tuple arrivals per node (geographic skew shows up here).
    pub per_node_arrivals: Vec<u64>,
    /// Tuple messages sent per node.
    pub per_node_sent: Vec<u64>,
    /// Hottest node's arrivals over the per-node mean (1.0 = balanced).
    pub load_imbalance: f64,
    /// Messages lost in flight (lossy-link injection; 0 by default).
    pub dropped_messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(algorithm: Algorithm) -> ClusterConfig {
        ClusterConfig::new(4, algorithm)
            .window(256)
            .domain(1 << 10)
            .tuples(4_000)
            .arrival_rate(500.0)
            .seed(3)
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            ClusterConfig::new(1, Algorithm::Base).run().unwrap_err(),
            RunError::TooFewNodes(1)
        );
        assert!(matches!(
            quick(Algorithm::Dft).kappa(1 << 20).run().unwrap_err(),
            RunError::KappaTooLarge { .. }
        ));
        assert_eq!(
            quick(Algorithm::Dft).tuples(0).run().unwrap_err(),
            RunError::NoTuples
        );
        // A domain/kappa combination whose retained prefix overflows the
        // 16-bit wire index must be a typed error, not silent truncation.
        assert_eq!(
            quick(Algorithm::Dft)
                .domain(1 << 18)
                .kappa(1)
                .validate()
                .unwrap_err(),
            RunError::RetainedTooLarge { retained: 1 << 18 }
        );
        // The largest encodable prefix (65536 coefficients, indices
        // 0..=u16::MAX) still validates.
        assert!(quick(Algorithm::Dft)
            .domain(1 << 16)
            .kappa(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn base_achieves_near_zero_error() {
        let report = quick(Algorithm::Base).run().unwrap();
        assert!(
            report.epsilon < 0.05,
            "broadcast should be near-exact: ε = {}",
            report.epsilon
        );
        // N-1 = 3 messages per tuple.
        assert!((report.msgs_per_tuple - 3.0).abs() < 0.01);
    }

    #[test]
    fn dftt_beats_dft_in_messages_per_result() {
        let dftt = quick(Algorithm::Dftt).run().unwrap();
        let dft = quick(Algorithm::Dft).run().unwrap();
        assert!(
            dftt.messages_per_result < dft.messages_per_result,
            "DFTT {} vs DFT {}",
            dftt.messages_per_result,
            dft.messages_per_result
        );
    }

    #[test]
    fn approximate_algorithms_send_fewer_messages_than_base() {
        let base = quick(Algorithm::Base).run().unwrap();
        for alg in [
            Algorithm::Dft,
            Algorithm::Dftt,
            Algorithm::Bloom,
            Algorithm::Sketch,
        ] {
            let r = quick(alg).run().unwrap();
            assert!(
                r.messages < base.messages,
                "{alg} sent {} >= BASE {}",
                r.messages,
                base.messages
            );
            assert!((0.0..=1.0).contains(&r.epsilon), "{alg} ε = {}", r.epsilon);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick(Algorithm::Dftt).run().unwrap();
        let b = quick(Algorithm::Dftt).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn build_node_matches_run_semantics() {
        let cfg = quick(Algorithm::Dftt);
        let node = cfg.build_node(2);
        assert_eq!(node.id(), 2);
        assert_eq!(node.metrics().arrivals, 0);
        // The arrival schedule is deterministic and dense.
        let arrivals = cfg.arrivals();
        assert_eq!(arrivals.len(), cfg.tuples);
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
            assert!(a.node < cfg.n);
            assert!(a.key < cfg.domain);
        }
        assert_eq!(cfg.arrivals(), arrivals, "schedule is a pure function");
    }

    #[test]
    fn ground_truth_matches_run_truth() {
        let cfg = quick(Algorithm::Base);
        let standalone = cfg.ground_truth_matches();
        let report = cfg.run().unwrap();
        assert_eq!(standalone, report.truth_matches);
        assert!(standalone > 0);
    }

    #[test]
    fn window_spec_reflects_time_mode() {
        use dsj_stream::WindowSpec;
        let count = quick(Algorithm::Base);
        assert_eq!(count.window_spec(), WindowSpec::Count(256));
        let timed = quick(Algorithm::Base).time_window(250);
        assert_eq!(timed.window_spec(), WindowSpec::Time(250_000));
    }

    #[test]
    fn best_effort_picks_feasible_operating_point() {
        let grid = [0.5, 1.0, 3.0];
        let (report, target) = quick(Algorithm::Dftt).run_best_effort(0.5, &grid).unwrap();
        assert!(grid.contains(&target));
        // Either feasible, or the least-bad point was chosen.
        assert!((0.0..=1.0).contains(&report.epsilon));
        // BASE needs no grid.
        let (base, t) = quick(Algorithm::Base).run_best_effort(0.5, &grid).unwrap();
        assert_eq!(t, 3.0);
        assert!(base.epsilon < 0.1);
        // An empty grid is a configuration error, not a panic.
        assert_eq!(
            quick(Algorithm::Dftt)
                .run_best_effort(0.5, &[])
                .unwrap_err(),
            RunError::EmptyGrid
        );
    }

    #[test]
    fn trace_replay_reproduces_generated_run() {
        use dsj_stream::trace::Trace;
        let cfg = quick(Algorithm::Dftt);
        let generated = cfg.run().unwrap();
        // Record the exact schedule the config generates and replay it.
        let trace = Trace::from_arrivals(cfg.arrivals());
        let replayed = quick(Algorithm::Dftt).with_trace(trace).run().unwrap();
        assert_eq!(generated, replayed, "a trace replay is bit-identical");
    }

    #[test]
    fn trace_with_foreign_nodes_rejected() {
        use dsj_stream::gen::Arrival;
        use dsj_stream::trace::Trace;
        use dsj_stream::StreamId;
        let trace = Trace::from_arrivals(vec![Arrival {
            stream: StreamId::R,
            key: 1,
            seq: 0,
            node: 99,
        }]);
        assert_eq!(
            quick(Algorithm::Base).with_trace(trace).run().unwrap_err(),
            RunError::TraceNodeOutOfRange { node: 99, n: 4 }
        );
        let trace = Trace::from_arrivals(vec![Arrival {
            stream: StreamId::R,
            key: 1 << 20,
            seq: 0,
            node: 0,
        }]);
        assert!(matches!(
            quick(Algorithm::Base).with_trace(trace).run().unwrap_err(),
            RunError::TraceKeyOutOfDomain { .. }
        ));
    }

    #[test]
    fn bandwidth_governor_throttles_messages() {
        // LogN budget, but a tight per-node allowance: the governor must
        // shave messages (and accuracy) versus the ungoverned run.
        let free = quick(Algorithm::Dft)
            .target(crate::TargetComplexity::LogN)
            .run()
            .unwrap();
        let capped = quick(Algorithm::Dft)
            .target(crate::TargetComplexity::LogN)
            .bandwidth_budget(20_000) // ~125 tuple msgs/s vs 500 arrivals/s
            .run()
            .unwrap();
        assert!(
            capped.msgs_per_tuple < 0.8 * free.msgs_per_tuple,
            "governor must shed load: {} vs {}",
            capped.msgs_per_tuple,
            free.msgs_per_tuple
        );
        assert!(capped.epsilon >= free.epsilon, "shedding costs accuracy");
    }

    #[test]
    fn uniform_workload_trips_fallback_within_budget() {
        use dsj_stream::gen::WorkloadKind;
        // Uniform keys drive every pairwise ρ to the same value — the
        // Theorem 1/2 worst case. End to end, the CV detector must fire
        // and hand routing to the round-robin fallback, while the flow
        // controller keeps the per-tuple message count at the configured
        // target rather than degenerating to broadcast. Eight nodes so
        // each site sees enough pairwise ρ samples for a stable CV.
        // Locality 0 so every node sees the same (uniform) key mix — with
        // geographic locality each site's window covers its own key range
        // and the pairwise ρs genuinely differ.
        let cfg = ClusterConfig::new(8, Algorithm::Dft)
            .window(256)
            .domain(1 << 10)
            .tuples(8_000)
            .arrival_rate(500.0)
            .locality(0.0)
            .kappa(16)
            .seed(3)
            .workload(WorkloadKind::Uniform);
        let report = cfg.clone().run().unwrap();
        assert!(
            report.fallback_events > 0,
            "uniform data must trip detect_uniform: {report:?}"
        );
        assert!(
            report.fallback_fraction > 0.3,
            "fallback should carry a large share of arrivals: {}",
            report.fallback_fraction
        );
        let target = cfg.target.target(cfg.n);
        assert!(
            report.msgs_per_tuple <= target * 1.25 + 0.1,
            "fallback must respect the {} msgs/tuple budget: {}",
            target,
            report.msgs_per_tuple
        );
        // Skewed data on the same configuration barely falls back — the
        // detector separates the regimes rather than firing always.
        let zipf = cfg
            .clone()
            .workload(WorkloadKind::Zipf { alpha: 0.8 })
            .run()
            .unwrap();
        assert!(
            zipf.fallback_fraction < report.fallback_fraction,
            "skewed {} vs uniform {}",
            zipf.fallback_fraction,
            report.fallback_fraction
        );
    }

    #[test]
    fn interarrival_matches_rate() {
        let cfg = quick(Algorithm::Base).arrival_rate(500.0); // 4 nodes
                                                              // 2000 tuples/s aggregate → 500 µs between arrivals.
        assert_eq!(cfg.interarrival_us(), 500);
    }

    #[test]
    fn run_emits_observation_record_when_scoped() {
        let collector = crate::obs::Collector::install();
        let cfg = quick(Algorithm::Dftt);
        let report = crate::obs::scoped("unit", 0, || cfg.run().unwrap());
        let records = collector.drain();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert_eq!((rec.index, rec.label.as_str(), rec.runs), (0, "unit", 1));
        let reg = &rec.registry;
        assert_eq!(reg.counter("net.messages_sent"), report.messages);
        assert_eq!(reg.counter("truth_matches"), report.truth_matches);
        assert_eq!(reg.gauge("epsilon"), Some(report.epsilon));
        for phase in ["build", "workload", "inject", "simulate", "aggregate"] {
            let p = reg
                .phase(phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert_eq!(p.calls, 1);
        }
        // Per-node counters cover every node and sum to the workload.
        let total_arrivals: u64 = (0..cfg.n)
            .map(|me| reg.counter(&format!("node.{me:02}.arrivals")))
            .sum();
        assert_eq!(total_arrivals, cfg.tuples as u64);
        assert_eq!(
            reg.histogram("net.msg_bytes").unwrap().count(),
            report.messages
        );
        assert_eq!(
            reg.histogram("net.delivery_latency_us").unwrap().count(),
            report.messages - report.dropped_messages
        );
        // And nothing leaks once the scope is gone.
        cfg.run().unwrap();
        assert!(collector.drain().is_empty());
    }

    #[test]
    fn calibration_reaches_or_reports_best() {
        let (report, target) = quick(Algorithm::Dftt).run_at_epsilon(0.5).unwrap();
        assert!(target > 0.0);
        // Either the target error was reached, or the maximum budget ran.
        assert!(report.epsilon <= 0.5 || (target - 3.0).abs() < 1e-9);
    }
}
