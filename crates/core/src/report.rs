//! Rendering experiment results as aligned text tables.
//!
//! The `repro` harness, the CLI and the examples all print result grids;
//! this module gives them one implementation: a [`Table`] builder with
//! alignment and a [`compare`] helper that lays several
//! [`ExperimentReport`]s side by side the way the paper's figures do.

use crate::runner::ExperimentReport;
use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
///
/// ```
/// use dsj_core::report::{Align, Table};
///
/// let mut t = Table::new(vec![("algo", Align::Left), ("eps", Align::Right)]);
/// t.row(vec!["DFTT".into(), "0.150".into()]);
/// let text = t.to_string();
/// assert!(text.contains("DFTT"));
/// assert!(text.lines().count() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<(String, Align)>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers and alignments.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<(&str, Align)>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers
                .into_iter()
                .map(|(h, a)| (h.to_string(), a))
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the column count.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|(h, _)| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, (h, _)) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.headers[i].1 {
                    Align::Left => write!(f, "{cell:<width$}", width = widths[i])?,
                    Align::Right => write!(f, "{cell:>width$}", width = widths[i])?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Lays several reports side by side on the paper's three headline
/// metrics: ε, messages per result tuple, and throughput.
pub fn compare(reports: &[ExperimentReport]) -> Table {
    let mut t = Table::new(vec![
        ("algo", Align::Left),
        ("eps", Align::Right),
        ("msgs/result", Align::Right),
        ("msgs/tuple", Align::Right),
        ("throughput", Align::Right),
        ("fallback%", Align::Right),
    ]);
    for r in reports {
        t.row(vec![
            r.algorithm.label().to_string(),
            format!("{:.3}", r.epsilon),
            format!("{:.2}", r.messages_per_result),
            format!("{:.2}", r.msgs_per_tuple),
            format!("{:.0}", r.throughput),
            format!("{:.1}", 100.0 * r.fallback_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Algorithm;
    use crate::ClusterConfig;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new(vec![("name", Align::Left), ("value", Align::Right)]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into()]); // short row padded
        t.row(vec!["x".into(), "22".into(), "extra".into()]); // long row truncated
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width (trailing cells padded).
        assert!(lines[1].starts_with("a     "));
        assert!(lines[1].ends_with("    1"));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn compare_renders_reports() {
        let reports: Vec<_> = [Algorithm::Base, Algorithm::Dftt]
            .into_iter()
            .map(|alg| {
                ClusterConfig::new(3, alg)
                    .window(64)
                    .domain(256)
                    .tuples(600)
                    .run()
                    .expect("valid configuration")
            })
            .collect();
        let table = compare(&reports);
        let text = table.to_string();
        assert!(text.contains("BASE"));
        assert!(text.contains("DFTT"));
        assert!(text.contains("msgs/result"));
        assert_eq!(table.len(), 2);
    }

    #[test]
    #[should_panic(expected = "a table needs at least one column")]
    fn empty_headers_rejected() {
        Table::new(vec![]);
    }
}
