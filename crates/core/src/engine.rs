//! One node engine, many transports.
//!
//! Before this module, every runtime re-implemented the same drive loop
//! around [`JoinNode`]: the simnet adapter fanned `handle_arrival` output
//! into [`Ctx::send`], the live threaded cluster fanned it into crossbeam
//! channels, and any new backend would have copied the loop a third time.
//! [`NodeEngine`] owns that loop once; backends implement [`Transport`]
//! (send / poll / clock / quiescence) and nothing else.
//!
//! Three transports exist:
//!
//! | backend  | where | send | clock |
//! |---|---|---|---|
//! | simnet   | `dsj-core` (here) | [`Ctx::send`], modeled WAN | virtual |
//! | threads  | `dsj-runtime::LiveCluster` | crossbeam channels | wall |
//! | TCP      | `dsj-runtime::TcpCluster` | framed loopback sockets | wall |
//!
//! The engine is deliberately thin: [`JoinNode`] stays transport-agnostic
//! and allocation-free on its per-tuple path, and the engine adds only the
//! fan-out of produced messages into the transport. The cross-backend
//! equivalence suite (`crates/runtime/tests/equivalence.rs`) pins that all
//! three backends produce identical per-node metrics and match digests for
//! the same seed when driven in lockstep.

use crate::msg::Msg;
use crate::node::{JoinNode, NodeMetrics};
use dsj_simnet::{Ctx, NodeId, SimNode};
use dsj_stream::Tuple;
use std::convert::Infallible;

/// What a transport hands the engine next.
#[derive(Debug)]
pub enum TransportEvent {
    /// A tuple arriving at this node from its local stream source.
    Arrival(Tuple),
    /// A wire message from a peer.
    Net {
        /// Sending node.
        from: u16,
        /// The message.
        msg: Msg,
    },
    /// The harness is done with this node; the engine's run loop returns.
    Shutdown,
}

/// What a node engine needs from the outside world.
///
/// Implementations decide how messages move (virtual links, channels,
/// sockets), what the clock is (virtual or wall microseconds) and how
/// quiescence is tracked. The contract for in-flight accounting: the
/// *producer* of an event counts it up before it becomes visible, and the
/// engine calls [`Transport::quiesce`] exactly once after fully processing
/// each polled event — so a zero in-flight count proves the cluster is
/// globally idle (every produced message has been consumed *and* acted on,
/// including any sends it triggered, which were counted before the
/// decrement).
pub trait Transport {
    /// Transport failure (socket error, closed channel, ...). Infallible
    /// for the simulated backend.
    type Error: std::error::Error;

    /// Ships `msg` to node `to`.
    ///
    /// # Errors
    ///
    /// Transport-specific delivery failure; the engine aborts its run loop
    /// on the first error.
    fn send(&mut self, to: u16, msg: Msg) -> Result<(), Self::Error>;

    /// Blocks until the next event for this node.
    ///
    /// # Errors
    ///
    /// Transport-specific receive failure (e.g. every sender dropped).
    fn poll(&mut self) -> Result<TransportEvent, Self::Error>;

    /// This node's clock, in microseconds. Virtual time under simulation,
    /// wall time since cluster start for live backends.
    fn now_us(&mut self) -> u64;

    /// Marks the event most recently returned by [`Transport::poll`] as
    /// fully processed (its sends, if any, already counted).
    fn quiesce(&mut self);
}

/// Drives one [`JoinNode`] over any [`Transport`].
///
/// This is the single owner of the per-node drive loop: arrivals run the
/// hot path and fan the produced messages into the transport; network
/// messages apply summaries and probe windows. The engine also carries the
/// node's reusable outgoing-message buffer so the steady-state loop
/// allocates nothing.
#[derive(Debug)]
pub struct NodeEngine {
    node: JoinNode,
    /// Outgoing-message buffer reused across arrivals.
    out: Vec<(u16, Msg)>,
}

impl NodeEngine {
    /// Wraps `node` for transport-driven execution.
    pub fn new(node: JoinNode) -> Self {
        NodeEngine {
            node,
            out: Vec::new(),
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &JoinNode {
        &self.node
    }

    /// Unwraps the node (for harnesses that aggregate after shutdown).
    pub fn into_node(self) -> JoinNode {
        self.node
    }

    /// The node's id.
    pub fn id(&self) -> u16 {
        self.node.id()
    }

    /// The node's counters.
    pub fn metrics(&self) -> &NodeMetrics {
        self.node.metrics()
    }

    /// Worst-case fallback activations recorded by the node's router.
    pub fn fallback_events(&self) -> u64 {
        self.node.fallback_events()
    }

    /// The node's order-sensitive digest of counted matches.
    pub fn match_digest(&self) -> u64 {
        self.node.match_digest()
    }

    /// Handles one locally arriving tuple: the per-tuple hot path plus
    /// fan-out of the produced messages into `transport`.
    ///
    /// # Errors
    ///
    /// The first [`Transport::send`] failure; remaining messages for this
    /// arrival are dropped (the run is aborting anyway).
    // dsj-lint: hot-path
    pub fn on_arrival<T: Transport>(
        &mut self,
        tuple: Tuple,
        transport: &mut T,
    ) -> Result<(), T::Error> {
        let now_us = transport.now_us();
        let mut out = std::mem::take(&mut self.out);
        self.node.handle_arrival_into(tuple, now_us, &mut out);
        let mut result = Ok(());
        for (peer, msg) in out.drain(..) {
            if result.is_ok() {
                // dsj-lint: allow(hot-path-opaque-call) — transport send is backend-specific: the simnet path pushes into a scratch buffer, channel/socket paths are measured cold by design
                result = transport.send(peer, msg);
            }
        }
        self.out = out;
        result
    }

    /// Handles one wire message from peer `from`.
    pub fn on_net(&mut self, from: u16, msg: Msg) {
        self.node.handle_message(from, msg);
    }

    /// The drive loop for polling transports: processes events until
    /// [`TransportEvent::Shutdown`].
    ///
    /// # Errors
    ///
    /// The first transport failure, from [`Transport::poll`] or a send.
    pub fn run<T: Transport>(&mut self, transport: &mut T) -> Result<(), T::Error> {
        loop {
            match transport.poll()? {
                TransportEvent::Arrival(tuple) => {
                    self.on_arrival(tuple, transport)?;
                    transport.quiesce();
                }
                TransportEvent::Net { from, msg } => {
                    self.on_net(from, msg);
                    transport.quiesce();
                }
                TransportEvent::Shutdown => return Ok(()),
            }
        }
    }
}

/// The simulated-WAN [`Transport`]: sends become [`Ctx::send`] with the
/// message's modeled (= encoded) wire size, the clock is virtual time.
/// Events are pushed by the simulation driver, so `poll` is never the
/// event source — the `SimNode` impl below dispatches directly.
struct SimTransport<'a, 'b> {
    ctx: &'a mut Ctx<'b, Msg>,
}

impl Transport for SimTransport<'_, '_> {
    type Error = Infallible;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), Infallible> {
        let bytes = msg.wire_bytes();
        self.ctx.send(to, msg, bytes);
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, Infallible> {
        // The simulation pushes events through `SimNode`; a pull-style
        // loop over this transport has nothing to wait on.
        Ok(TransportEvent::Shutdown)
    }

    fn now_us(&mut self) -> u64 {
        self.ctx.now().as_micros()
    }

    fn quiesce(&mut self) {
        // The simulation's event queue is its own quiescence tracker.
    }
}

impl SimNode for NodeEngine {
    type Input = Tuple;
    type Msg = Msg;

    fn on_input(&mut self, tuple: Tuple, ctx: &mut Ctx<'_, Msg>) {
        let mut transport = SimTransport { ctx };
        match self.on_arrival(tuple, &mut transport) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
        self.on_net(from, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{test_config, Algorithm};
    use dsj_stream::{StreamId, WindowSpec};
    use std::collections::VecDeque;

    /// A transcript transport: records sends, replays scripted events.
    #[derive(Default)]
    struct Script {
        sent: Vec<(u16, Msg)>,
        events: VecDeque<TransportEvent>,
        quiesced: u32,
        clock_us: u64,
    }

    impl Transport for Script {
        type Error = Infallible;
        fn send(&mut self, to: u16, msg: Msg) -> Result<(), Infallible> {
            self.sent.push((to, msg));
            Ok(())
        }
        fn poll(&mut self) -> Result<TransportEvent, Infallible> {
            Ok(self.events.pop_front().unwrap_or(TransportEvent::Shutdown))
        }
        fn now_us(&mut self) -> u64 {
            self.clock_us += 7;
            self.clock_us
        }
        fn quiesce(&mut self) {
            self.quiesced += 1;
        }
    }

    fn engine(me: u16, n: u16) -> NodeEngine {
        NodeEngine::new(JoinNode::new(
            Algorithm::Base,
            test_config(me, n),
            WindowSpec::count(16),
            0,
        ))
    }

    #[test]
    fn run_loop_dispatches_and_quiesces_each_event() {
        let mut eng = engine(0, 3);
        let mut tx = Script::default();
        tx.events
            .push_back(TransportEvent::Arrival(Tuple::new(StreamId::R, 5, 0, 0)));
        tx.events.push_back(TransportEvent::Net {
            from: 1,
            msg: Msg::Tuple {
                tuple: Tuple::new(StreamId::S, 5, 1, 1),
                piggyback: Vec::new(),
            },
        });
        tx.events.push_back(TransportEvent::Shutdown);
        eng.run(&mut tx).unwrap();
        // Base broadcasts the arrival to both peers...
        assert_eq!(tx.sent.len(), 2);
        // ...and the forwarded probe from node 1 finds the stored R tuple.
        assert_eq!(eng.metrics().remote_matches, 1);
        assert_eq!(eng.metrics().arrivals, 1);
        // Both processed events were quiesced; shutdown is not an event.
        assert_eq!(tx.quiesced, 2);
    }

    #[test]
    fn engine_behaves_identically_to_bare_node() {
        // The engine must add zero behavior: drive a bare JoinNode and an
        // engine-wrapped clone through the same arrivals and compare.
        let mut bare = JoinNode::new(Algorithm::Base, test_config(0, 3), WindowSpec::count(16), 0);
        let mut eng = engine(0, 3);
        let mut tx = Script::default();
        let mut bare_clock = 0u64;
        for seq in 0..20u64 {
            let t = Tuple::new(StreamId::R, (seq % 4) as u32, seq, 0);
            bare_clock += 7;
            let expect = bare.handle_arrival(t, bare_clock);
            let before = tx.sent.len();
            eng.on_arrival(t, &mut tx).unwrap();
            assert_eq!(&tx.sent[before..], &expect[..]);
        }
        assert_eq!(eng.metrics(), bare.metrics());
        assert_eq!(eng.match_digest(), bare.match_digest());
    }
}
