//! One node engine, many transports.
//!
//! Before this module, every runtime re-implemented the same drive loop
//! around [`JoinNode`]: the simnet adapter fanned `handle_arrival` output
//! into [`Ctx::send`], the live threaded cluster fanned it into crossbeam
//! channels, and any new backend would have copied the loop a third time.
//! [`NodeEngine`] owns that loop once; backends implement [`Transport`]
//! (send / poll / clock / quiescence) and nothing else.
//!
//! Four transports exist:
//!
//! | backend  | where | send | clock |
//! |---|---|---|---|
//! | simnet   | `dsj-core` (here) | [`Ctx::send`], modeled WAN | virtual |
//! | threads  | `dsj-runtime::LiveCluster` | crossbeam channels | wall |
//! | TCP mesh | `dsj-runtime::TcpCluster` (`ThreadPerLink`) | framed loopback sockets, reader thread per link | wall |
//! | TCP reactor | `dsj-runtime::TcpCluster` (`Reactor`) | framed loopback sockets, sharded nonblocking reactor, coalesced vectored writes | wall |
//!
//! The engine is deliberately thin: [`JoinNode`] stays transport-agnostic
//! and allocation-free on its per-tuple path, and the engine adds only the
//! fan-out of produced messages into the transport. The cross-backend
//! equivalence suite (`crates/runtime/tests/equivalence.rs`) pins that all
//! four backends produce identical per-node metrics and match digests for
//! the same seed when driven in lockstep.

use crate::msg::Msg;
use crate::node::{JoinNode, NodeMetrics};
use dsj_simnet::{Ctx, NodeId, SimNode};
use dsj_stream::Tuple;
use std::convert::Infallible;

/// Upper bound on how many pending events the run loop drains per frame.
///
/// Frames amortize per-event transport overhead (one clock read for every
/// arrival in the frame, one socket flush per peer per frame) without
/// changing behavior: events inside a frame run through the same per-event
/// logic in arrival order, so routing decisions are identical whatever the
/// frame boundaries (pinned by `crates/core/tests/batching.rs`).
pub const FRAME_MAX: usize = 64;

/// What a transport hands the engine next.
#[derive(Debug)]
pub enum TransportEvent {
    /// A tuple arriving at this node from its local stream source.
    Arrival(Tuple),
    /// A tuple arriving from an open-loop load generator, stamped with
    /// its injection time on the transport's clock. Processing is
    /// identical to [`TransportEvent::Arrival`]; additionally, the delay
    /// from injection to the end of the tuple's local processing (its
    /// matches are in the digest by then) is recorded into the engine's
    /// delivery-latency histogram. Closed-loop feeders never construct
    /// this variant, so the steady-state arrival path pays nothing for it.
    StampedArrival {
        /// The tuple.
        tuple: Tuple,
        /// Injection time in microseconds on the cluster-epoch clock (the
        /// same clock [`Transport::now_us`] reports for live backends).
        injected_us: u64,
    },
    /// A wire message from a peer.
    Net {
        /// Sending node.
        from: u16,
        /// The message.
        msg: Msg,
    },
    /// The harness is done with this node; the engine's run loop returns.
    Shutdown,
}

/// What a node engine needs from the outside world.
///
/// Implementations decide how messages move (virtual links, channels,
/// sockets), what the clock is (virtual or wall microseconds) and how
/// quiescence is tracked. The contract for in-flight accounting: the
/// *producer* of an event counts it up before it becomes visible, and the
/// engine calls [`Transport::quiesce`] exactly once after fully processing
/// each polled event — so a zero in-flight count proves the cluster is
/// globally idle (every produced message has been consumed *and* acted on,
/// including any sends it triggered, which were counted before the
/// decrement).
pub trait Transport {
    /// Transport failure (socket error, closed channel, ...). Infallible
    /// for the simulated backend.
    type Error: std::error::Error;

    /// Ships `msg` to node `to`.
    ///
    /// # Errors
    ///
    /// Transport-specific delivery failure; the engine aborts its run loop
    /// on the first error.
    fn send(&mut self, to: u16, msg: Msg) -> Result<(), Self::Error>;

    /// Blocks until the next event for this node.
    ///
    /// # Errors
    ///
    /// Transport-specific receive failure (e.g. every sender dropped).
    fn poll(&mut self) -> Result<TransportEvent, Self::Error>;

    /// Blocks for at least one event, then drains up to `max` total events
    /// into `frame` without blocking again.
    ///
    /// The default forwards a single blocking [`Transport::poll`], so
    /// transports that have no cheap "is anything pending?" probe degrade
    /// to one-event frames. Backends with non-blocking receive (channels,
    /// sockets) override this to hand the engine a whole backlog at once.
    ///
    /// # Errors
    ///
    /// Transport-specific receive failure (e.g. every sender dropped).
    fn poll_frame(
        &mut self,
        max: usize,
        frame: &mut Vec<TransportEvent>,
    ) -> Result<(), Self::Error> {
        debug_assert!(max >= 1, "a frame must admit at least one event");
        frame.push(self.poll()?);
        Ok(())
    }

    /// Pushes any outgoing bytes buffered by [`Transport::send`] to the
    /// wire. The run loop calls this once per frame, after every event in
    /// the frame has been processed; unbuffered transports keep the no-op
    /// default.
    ///
    /// # Errors
    ///
    /// Transport-specific delivery failure.
    fn flush(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    /// This node's clock, in microseconds. Virtual time under simulation,
    /// wall time since cluster start for live backends.
    fn now_us(&mut self) -> u64;

    /// Marks the event most recently returned by [`Transport::poll`] as
    /// fully processed (its sends, if any, already counted).
    fn quiesce(&mut self);
}

/// Drives one [`JoinNode`] over any [`Transport`].
///
/// This is the single owner of the per-node drive loop: arrivals run the
/// hot path and fan the produced messages into the transport; network
/// messages apply summaries and probe windows. The engine also carries the
/// node's reusable outgoing-message buffer so the steady-state loop
/// allocates nothing.
#[derive(Debug)]
pub struct NodeEngine {
    node: JoinNode,
    /// Outgoing-message buffer reused across arrivals.
    out: Vec<(u16, Msg)>,
    /// Injection → end-of-processing delay of stamped arrivals
    /// (microseconds). Only open-loop feeders send
    /// [`TransportEvent::StampedArrival`], so closed-loop runs leave this
    /// empty and record nothing.
    latency: crate::obs::Histogram,
}

impl NodeEngine {
    /// Wraps `node` for transport-driven execution.
    pub fn new(node: JoinNode) -> Self {
        NodeEngine {
            node,
            out: Vec::new(),
            latency: crate::obs::Histogram::new(),
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &JoinNode {
        &self.node
    }

    /// Unwraps the node (for harnesses that aggregate after shutdown).
    pub fn into_node(self) -> JoinNode {
        self.node
    }

    /// The node's id.
    pub fn id(&self) -> u16 {
        self.node.id()
    }

    /// The node's counters.
    pub fn metrics(&self) -> &NodeMetrics {
        self.node.metrics()
    }

    /// Worst-case fallback activations recorded by the node's router.
    pub fn fallback_events(&self) -> u64 {
        self.node.fallback_events()
    }

    /// The node's order-sensitive digest of counted matches.
    pub fn match_digest(&self) -> u64 {
        self.node.match_digest()
    }

    /// Per-tuple delivery latency recorded for stamped (open-loop)
    /// arrivals: microseconds from the feeder's injection stamp to the end
    /// of the tuple's local processing, at which point its matches are in
    /// the digest. Empty for closed-loop runs.
    pub fn delivery_latency(&self) -> &crate::obs::Histogram {
        &self.latency
    }

    /// Handles one locally arriving tuple: the per-tuple hot path plus
    /// fan-out of the produced messages into `transport`.
    ///
    /// # Errors
    ///
    /// The first [`Transport::send`] failure; remaining messages for this
    /// arrival are dropped (the run is aborting anyway).
    // dsj-lint: hot-path
    pub fn on_arrival<T: Transport>(
        &mut self,
        tuple: Tuple,
        transport: &mut T,
    ) -> Result<(), T::Error> {
        let now_us = transport.now_us();
        self.arrival_at(tuple, now_us, transport)
    }

    /// The shared arrival core: runs the per-tuple hot path at an already
    /// sampled timestamp and fans the produced messages into `transport`.
    // dsj-lint: hot-path
    fn arrival_at<T: Transport>(
        &mut self,
        tuple: Tuple,
        now_us: u64,
        transport: &mut T,
    ) -> Result<(), T::Error> {
        let mut out = std::mem::take(&mut self.out);
        self.node.handle_arrival_into(tuple, now_us, &mut out);
        let mut result = Ok(());
        for (peer, msg) in out.drain(..) {
            if result.is_ok() {
                // dsj-lint: allow(hot-path-opaque-call) — transport send is backend-specific: the simnet path pushes into a scratch buffer, channel/socket paths are measured cold by design
                result = transport.send(peer, msg);
            }
        }
        self.out = out;
        result
    }

    /// Handles one wire message from peer `from`.
    pub fn on_net(&mut self, from: u16, msg: Msg) {
        self.node.handle_message(from, msg);
    }

    /// Processes one frame of events in arrival order, quiescing after
    /// each. Returns `true` when the frame contained
    /// [`TransportEvent::Shutdown`].
    ///
    /// Every event runs through the same per-event logic as the unbatched
    /// loop, so routing decisions are independent of how events were
    /// grouped into frames; the only frame-level amortization is the clock,
    /// which is sampled once for all arrivals in the frame.
    ///
    /// # Errors
    ///
    /// The first [`Transport::send`] failure; the rest of the frame is
    /// dropped (the run is aborting anyway).
    // dsj-lint: hot-path
    pub fn on_frame<T: Transport>(
        &mut self,
        frame: &mut Vec<TransportEvent>,
        transport: &mut T,
    ) -> Result<bool, T::Error> {
        let mut frame_now_us = None;
        for event in frame.drain(..) {
            match event {
                TransportEvent::Arrival(tuple) => {
                    let now_us = match frame_now_us {
                        Some(now_us) => now_us,
                        None => {
                            let now_us = transport.now_us();
                            frame_now_us = Some(now_us);
                            now_us
                        }
                    };
                    self.arrival_at(tuple, now_us, transport)?;
                    transport.quiesce();
                }
                TransportEvent::StampedArrival { tuple, injected_us } => {
                    let now_us = match frame_now_us {
                        Some(now_us) => now_us,
                        None => {
                            let now_us = transport.now_us();
                            frame_now_us = Some(now_us);
                            now_us
                        }
                    };
                    self.arrival_at(tuple, now_us, transport)?;
                    // Match-digest time: the tuple's matches are folded in,
                    // so a fresh clock sample here is the delivery latency
                    // an open-loop client would observe.
                    let done_us = transport.now_us();
                    // dsj-lint: allow(hot-path-opaque-call) — latency bookkeeping for open-loop load runs only; closed-loop feeders never send stamped arrivals, so the steady-state path never reaches this record
                    self.latency.record(done_us.saturating_sub(injected_us));
                    transport.quiesce();
                }
                TransportEvent::Net { from, msg } => {
                    // dsj-lint: allow(hot-path-opaque-call) — summary application is the amortized control path (runs once per sync interval or piggyback, not per tuple); its allocations are by design
                    self.node.handle_message(from, msg);
                    transport.quiesce();
                }
                TransportEvent::Shutdown => return Ok(true),
            }
        }
        Ok(false)
    }

    /// The drive loop for polling transports: drains events in frames of up
    /// to [`FRAME_MAX`] until [`TransportEvent::Shutdown`], flushing any
    /// buffered sends once per frame.
    ///
    /// # Errors
    ///
    /// The first transport failure, from [`Transport::poll_frame`], a send,
    /// or [`Transport::flush`].
    pub fn run<T: Transport>(&mut self, transport: &mut T) -> Result<(), T::Error> {
        let mut frame = Vec::with_capacity(FRAME_MAX);
        loop {
            transport.poll_frame(FRAME_MAX, &mut frame)?;
            let shutdown = self.on_frame(&mut frame, transport)?;
            transport.flush()?;
            if shutdown {
                return Ok(());
            }
        }
    }
}

/// The simulated-WAN [`Transport`]: sends become [`Ctx::send`] with the
/// message's modeled (= encoded) wire size, the clock is virtual time.
/// Events are pushed by the simulation driver, so `poll` is never the
/// event source — the `SimNode` impl below dispatches directly.
struct SimTransport<'a, 'b> {
    ctx: &'a mut Ctx<'b, Msg>,
}

impl Transport for SimTransport<'_, '_> {
    type Error = Infallible;

    fn send(&mut self, to: u16, msg: Msg) -> Result<(), Infallible> {
        let bytes = msg.wire_bytes();
        self.ctx.send(to, msg, bytes);
        Ok(())
    }

    fn poll(&mut self) -> Result<TransportEvent, Infallible> {
        // The simulation pushes events through `SimNode`; a pull-style
        // loop over this transport has nothing to wait on.
        Ok(TransportEvent::Shutdown)
    }

    fn now_us(&mut self) -> u64 {
        self.ctx.now().as_micros()
    }

    fn quiesce(&mut self) {
        // The simulation's event queue is its own quiescence tracker.
    }
}

impl SimNode for NodeEngine {
    type Input = Tuple;
    type Msg = Msg;

    fn on_input(&mut self, tuple: Tuple, ctx: &mut Ctx<'_, Msg>) {
        let mut transport = SimTransport { ctx };
        match self.on_arrival(tuple, &mut transport) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
        self.on_net(from, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{test_config, Algorithm};
    use dsj_stream::{StreamId, WindowSpec};
    use std::collections::VecDeque;

    /// A transcript transport: records sends, replays scripted events.
    #[derive(Default)]
    struct Script {
        sent: Vec<(u16, Msg)>,
        events: VecDeque<TransportEvent>,
        quiesced: u32,
        clock_us: u64,
    }

    impl Transport for Script {
        type Error = Infallible;
        fn send(&mut self, to: u16, msg: Msg) -> Result<(), Infallible> {
            self.sent.push((to, msg));
            Ok(())
        }
        fn poll(&mut self) -> Result<TransportEvent, Infallible> {
            Ok(self.events.pop_front().unwrap_or(TransportEvent::Shutdown))
        }
        fn now_us(&mut self) -> u64 {
            self.clock_us += 7;
            self.clock_us
        }
        fn quiesce(&mut self) {
            self.quiesced += 1;
        }
    }

    fn engine(me: u16, n: u16) -> NodeEngine {
        NodeEngine::new(JoinNode::new(
            Algorithm::Base,
            test_config(me, n),
            WindowSpec::count(16),
            0,
        ))
    }

    #[test]
    fn run_loop_dispatches_and_quiesces_each_event() {
        let mut eng = engine(0, 3);
        let mut tx = Script::default();
        tx.events
            .push_back(TransportEvent::Arrival(Tuple::new(StreamId::R, 5, 0, 0)));
        tx.events.push_back(TransportEvent::Net {
            from: 1,
            msg: Msg::Tuple {
                tuple: Tuple::new(StreamId::S, 5, 1, 1),
                piggyback: Vec::new(),
            },
        });
        tx.events.push_back(TransportEvent::Shutdown);
        eng.run(&mut tx).unwrap();
        // Base broadcasts the arrival to both peers...
        assert_eq!(tx.sent.len(), 2);
        // ...and the forwarded probe from node 1 finds the stored R tuple.
        assert_eq!(eng.metrics().remote_matches, 1);
        assert_eq!(eng.metrics().arrivals, 1);
        // Both processed events were quiesced; shutdown is not an event.
        assert_eq!(tx.quiesced, 2);
    }

    /// A batching transcript transport: drains its whole backlog per
    /// frame and counts flushes.
    struct BatchScript {
        inner: Script,
        flushes: u32,
    }

    impl Transport for BatchScript {
        type Error = Infallible;
        fn send(&mut self, to: u16, msg: Msg) -> Result<(), Infallible> {
            self.inner.send(to, msg)
        }
        fn poll(&mut self) -> Result<TransportEvent, Infallible> {
            self.inner.poll()
        }
        fn poll_frame(
            &mut self,
            max: usize,
            frame: &mut Vec<TransportEvent>,
        ) -> Result<(), Infallible> {
            frame.push(self.inner.poll()?);
            while frame.len() < max {
                match self.inner.events.pop_front() {
                    Some(event) => frame.push(event),
                    None => break,
                }
            }
            Ok(())
        }
        fn now_us(&mut self) -> u64 {
            self.inner.now_us()
        }
        fn quiesce(&mut self) {
            self.inner.quiesce()
        }
        fn flush(&mut self) -> Result<(), Infallible> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn framed_run_batches_events_and_flushes_once_per_frame() {
        let mut eng = engine(0, 3);
        let mut tx = BatchScript {
            inner: Script::default(),
            flushes: 0,
        };
        tx.inner
            .events
            .push_back(TransportEvent::Arrival(Tuple::new(StreamId::R, 5, 0, 0)));
        tx.inner
            .events
            .push_back(TransportEvent::Arrival(Tuple::new(StreamId::R, 6, 1, 0)));
        tx.inner.events.push_back(TransportEvent::Net {
            from: 1,
            msg: Msg::Tuple {
                tuple: Tuple::new(StreamId::S, 5, 2, 1),
                piggyback: Vec::new(),
            },
        });
        tx.inner.events.push_back(TransportEvent::Shutdown);
        eng.run(&mut tx).unwrap();
        // The whole backlog fits one frame: both arrivals share a single
        // clock sample and the frame is flushed exactly once.
        assert_eq!(tx.inner.clock_us, 7);
        assert_eq!(tx.flushes, 1);
        // Each processed event quiesced; shutdown is not an event.
        assert_eq!(tx.inner.quiesced, 3);
        // Base broadcasts both arrivals to both peers...
        assert_eq!(tx.inner.sent.len(), 4);
        // ...and the forwarded probe still finds the stored R tuple.
        assert_eq!(eng.metrics().arrivals, 2);
        assert_eq!(eng.metrics().remote_matches, 1);
    }

    #[test]
    fn engine_behaves_identically_to_bare_node() {
        // The engine must add zero behavior: drive a bare JoinNode and an
        // engine-wrapped clone through the same arrivals and compare.
        let mut bare = JoinNode::new(Algorithm::Base, test_config(0, 3), WindowSpec::count(16), 0);
        let mut eng = engine(0, 3);
        let mut tx = Script::default();
        let mut bare_clock = 0u64;
        for seq in 0..20u64 {
            let t = Tuple::new(StreamId::R, (seq % 4) as u32, seq, 0);
            bare_clock += 7;
            let expect = bare.handle_arrival(t, bare_clock);
            let before = tx.sent.len();
            eng.on_arrival(t, &mut tx).unwrap();
            assert_eq!(&tx.sent[before..], &expect[..]);
        }
        assert_eq!(eng.metrics(), bare.metrics());
        assert_eq!(eng.match_digest(), bare.match_digest());
    }
}
