//! Wire messages and their byte-size model.
//!
//! The simulator charges every message its modeled wire size against the
//! 90 kbps links, so the byte model below *is* the bandwidth cost the
//! algorithms pay. Summary content (DFT coefficient updates, Bloom filters,
//! AGMS sketches) is accounted separately from tuple payload so that
//! Figure 8's overhead-vs-net-data ratio can be reported.

use dsj_dft::Complex64;
use dsj_sketch::{AgmsSketch, CountingBloomFilter};
use dsj_stream::{StreamId, Tuple};
use serde::{Deserialize, Serialize};

/// One DFT coefficient update: bin index plus new value.
///
/// Wire size: 2 (index) + 16 (complex) = [`CoeffUpdate::WIRE_BYTES`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoeffUpdate {
    /// Coefficient (frequency bin) index.
    pub index: u16,
    /// New coefficient value.
    pub value: Complex64,
}

impl CoeffUpdate {
    /// Bytes per update on the wire.
    pub const WIRE_BYTES: usize = 18;
}

/// Algorithm-specific summary content exchanged between nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SummaryPayload {
    /// Changed DFT coefficients of one stream's window histogram.
    Dft {
        /// Which stream's window the coefficients summarize.
        stream: StreamId,
        /// Length of the summarized signal (the attribute domain).
        signal_len: u32,
        /// The changed coefficients.
        updates: Vec<CoeffUpdate>,
    },
    /// A full counting Bloom filter of one stream's window.
    Bloom {
        /// Which stream's window the filter summarizes.
        stream: StreamId,
        /// The filter.
        filter: CountingBloomFilter,
    },
    /// A full AGMS sketch of one stream's window.
    Sketch {
        /// Which stream's window the sketch summarizes.
        stream: StreamId,
        /// The sketch.
        sketch: AgmsSketch,
    },
}

impl SummaryPayload {
    /// Wire size in bytes — by invariant (pinned in `crate::wire`'s tests)
    /// exactly the bytes `wire::encode` produces for this payload.
    ///
    /// Each variant pays a 1-byte kind/stream tag plus its parameters:
    /// DFT ships `signal_len` and a coefficient count (4 + 4), Bloom ships
    /// `(m, k, seed, items)` (4 + 4 + 8 + 8), sketches `(s0, s1, seed,
    /// updates)` (4 + 4 + 8 + 8) — then the content itself. Earlier
    /// revisions modeled a flat 4-byte header for all three, undercounting
    /// every summary on the wire; the codec made the drift visible and
    /// this model now matches it byte-for-byte.
    pub fn wire_bytes(&self) -> usize {
        match self {
            SummaryPayload::Dft { updates, .. } => 9 + updates.len() * CoeffUpdate::WIRE_BYTES,
            SummaryPayload::Bloom { filter, .. } => 25 + filter.size_bytes(),
            SummaryPayload::Sketch { sketch, .. } => 25 + sketch.size_bytes(),
        }
    }
}

/// A message on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// A forwarded tuple, optionally carrying piggy-backed summary updates
    /// (Fig. 7 line 5: coefficient changes ride on tuple messages).
    Tuple {
        /// The forwarded tuple (probe-only at the receiver; never stored).
        tuple: Tuple,
        /// Piggy-backed summary content (empty when none).
        piggyback: Vec<SummaryPayload>,
    },
    /// A standalone summary batch (sent when no tuple message has carried
    /// pending updates to a peer for too long).
    Summary(Vec<SummaryPayload>),
}

impl Msg {
    /// Wire size in bytes — by invariant (pinned in `crate::wire`'s tests)
    /// exactly `wire::encode(self).len()`.
    ///
    /// A tuple message is one [`Tuple::WIRE_BYTES`] frame (length prefix,
    /// version/kind byte and tuple body) plus its self-delimiting piggyback
    /// payloads. A standalone summary pays the same 5 framing bytes
    /// (`wire::FRAME_OVERHEAD`) plus its payloads; earlier revisions
    /// modeled summaries as frameless, undercounting each by 5.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Msg::Tuple { piggyback, .. } => {
                Tuple::WIRE_BYTES
                    + piggyback
                        .iter()
                        .map(SummaryPayload::wire_bytes)
                        .sum::<usize>()
            }
            Msg::Summary(ps) => 5 + ps.iter().map(SummaryPayload::wire_bytes).sum::<usize>(),
        }
    }

    /// Bytes attributable to *tuple data* (the "net data" of Figure 8).
    pub fn data_bytes(&self) -> usize {
        match self {
            Msg::Tuple { .. } => Tuple::WIRE_BYTES,
            Msg::Summary(_) => 0,
        }
    }

    /// Bytes attributable to *summary overhead* (Figure 8's numerator).
    pub fn overhead_bytes(&self) -> usize {
        self.wire_bytes() - self.data_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsj_stream::StreamId;

    fn coeffs(n: usize) -> Vec<CoeffUpdate> {
        (0..n)
            .map(|i| CoeffUpdate {
                index: i as u16,
                value: Complex64::new(i as f64, -(i as f64)),
            })
            .collect()
    }

    #[test]
    fn tuple_msg_size() {
        let bare = Msg::Tuple {
            tuple: Tuple::new(StreamId::R, 1, 2, 3),
            piggyback: Vec::new(),
        };
        assert_eq!(bare.wire_bytes(), Tuple::WIRE_BYTES);
        assert_eq!(bare.data_bytes(), Tuple::WIRE_BYTES);
        assert_eq!(bare.overhead_bytes(), 0);
    }

    #[test]
    fn piggyback_adds_overhead_only() {
        let m = Msg::Tuple {
            tuple: Tuple::new(StreamId::R, 1, 2, 3),
            piggyback: vec![SummaryPayload::Dft {
                stream: StreamId::R,
                signal_len: 1024,
                updates: coeffs(3),
            }],
        };
        assert_eq!(m.data_bytes(), Tuple::WIRE_BYTES);
        assert_eq!(m.overhead_bytes(), 9 + 3 * CoeffUpdate::WIRE_BYTES);
        assert_eq!(m.wire_bytes(), m.data_bytes() + m.overhead_bytes());
    }

    #[test]
    fn summary_sizes_match_content() {
        let dft = Msg::Summary(vec![SummaryPayload::Dft {
            stream: StreamId::S,
            signal_len: 64,
            updates: coeffs(10),
        }]);
        // 5 frame bytes + the payload's 9-byte header + 10 coefficients.
        assert_eq!(dft.wire_bytes(), 5 + 9 + 180);
        assert_eq!(dft.data_bytes(), 0);

        let filter = CountingBloomFilter::new(256, 4, 1);
        let bloom = Msg::Summary(vec![SummaryPayload::Bloom {
            stream: StreamId::R,
            filter: filter.clone(),
        }]);
        assert_eq!(bloom.wire_bytes(), 5 + 25 + filter.size_bytes());

        let sketch = AgmsSketch::new(25, 5, 1);
        let skch = Msg::Summary(vec![SummaryPayload::Sketch {
            stream: StreamId::R,
            sketch: sketch.clone(),
        }]);
        assert_eq!(skch.wire_bytes(), 5 + 25 + sketch.size_bytes());
    }
}
