//! Error types for cluster experiment runs.

use std::fmt;

/// Error raised when an experiment configuration cannot be run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Fewer than two nodes were requested — a distributed join needs peers.
    TooFewNodes(u16),
    /// The compression factor exceeds the attribute domain (no coefficients
    /// would be retained).
    KappaTooLarge {
        /// Requested compression factor.
        kappa: u32,
        /// Attribute domain size.
        domain: u32,
    },
    /// No tuples were requested.
    NoTuples,
    /// Calibration failed to reach the requested error rate within the
    /// search budget.
    CalibrationFailed {
        /// The target error rate.
        target_epsilon: f64,
        /// Best error reached.
        achieved: f64,
    },
    /// A best-effort search was given an empty grid of operating points.
    EmptyGrid,
    /// An attached trace schedules an arrival on a node outside the
    /// cluster.
    TraceNodeOutOfRange {
        /// The offending node id.
        node: u16,
        /// Cluster size.
        n: u16,
    },
    /// An attached trace carries a key outside the attribute domain.
    TraceKeyOutOfDomain {
        /// The offending key.
        key: u32,
        /// Attribute domain size.
        domain: u32,
    },
    /// The retained coefficient prefix is too long for the wire format:
    /// summary updates address coefficients with a 16-bit index, so a
    /// prefix beyond 65536 entries would silently truncate on encode.
    RetainedTooLarge {
        /// Retained prefix length implied by `domain / kappa`.
        retained: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TooFewNodes(n) => {
                write!(f, "distributed join needs at least 2 nodes, got {n}")
            }
            RunError::KappaTooLarge { kappa, domain } => write!(
                f,
                "compression factor {kappa} exceeds attribute domain {domain}"
            ),
            RunError::NoTuples => write!(f, "experiment must process at least one tuple"),
            RunError::CalibrationFailed {
                target_epsilon,
                achieved,
            } => write!(
                f,
                "could not calibrate to epsilon {target_epsilon}: best achieved {achieved}"
            ),
            RunError::EmptyGrid => {
                write!(f, "best-effort search needs at least one operating point")
            }
            RunError::TraceNodeOutOfRange { node, n } => {
                write!(f, "trace node {node} out of range for a {n}-node cluster")
            }
            RunError::TraceKeyOutOfDomain { key, domain } => {
                write!(f, "trace key {key} out of attribute domain {domain}")
            }
            RunError::RetainedTooLarge { retained } => write!(
                f,
                "retained prefix of {retained} coefficients exceeds the 16-bit \
                 wire index space (max 65536); raise kappa or shrink the domain"
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RunError::TooFewNodes(1).to_string().contains("at least 2"));
        assert!(RunError::KappaTooLarge {
            kappa: 1024,
            domain: 256
        }
        .to_string()
        .contains("1024"));
        assert!(RunError::NoTuples.to_string().contains("at least one"));
        assert!(RunError::CalibrationFailed {
            target_epsilon: 0.15,
            achieved: 0.4
        }
        .to_string()
        .contains("0.15"));
        assert!(RunError::EmptyGrid.to_string().contains("operating point"));
        assert!(RunError::TraceNodeOutOfRange { node: 99, n: 4 }
            .to_string()
            .contains("99"));
        assert!(RunError::TraceKeyOutOfDomain {
            key: 5000,
            domain: 1024
        }
        .to_string()
        .contains("5000"));
        assert!(RunError::RetainedTooLarge { retained: 131_072 }
            .to_string()
            .contains("131072"));
    }
}
