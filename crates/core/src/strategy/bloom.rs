//! BLOOM: counting-Bloom-filter membership routing (Section 6).
//!
//! Each node maintains a counting Bloom filter per stream window and ships
//! it to peers; an arriving tuple is tested against each peer's opposite-
//! stream filter and forwarded to the sites reporting membership. Flow
//! factors (used when membership gives no signal) derive from the running
//! positive-hit rate per peer, as the paper describes. Filter size is
//! equalized to the DFT summary: `16·K` bytes = `4·K` counters.

use super::{peers_of, Route, RouterConfig, SyncState};
use crate::flow::{detect_uniform, forwarding_probabilities, sample_recipients, RoundRobin};
use crate::msg::SummaryPayload;
use dsj_sketch::CountingBloomFilter;
use dsj_stream::StreamId;
use rand::rngs::StdRng;
use rand::Rng;

/// EWMA smoothing for positive-hit rates.
const HIT_EWMA: f64 = 0.02;

/// Counting-Bloom-filter router.
#[derive(Debug)]
pub(crate) struct BloomRouter {
    cfg: RouterConfig,
    local: [CountingBloomFilter; 2],
    remote: Vec<[Option<CountingBloomFilter>; 2]>,
    /// Positive-hit rate per peer per tuple stream.
    hit_rate: Vec<[f64; 2]>,
    sync: SyncState,
    rr: RoundRobin,
    fallback_events: u64,
}

impl BloomRouter {
    /// Creates the router with filters sized to match the DFT summary.
    pub fn new(cfg: RouterConfig) -> Self {
        let n = cfg.n as usize;
        let bytes = (cfg.retained * 16).max(16);
        let mk = || CountingBloomFilter::with_size_bytes(bytes, cfg.window.max(1), cfg.seed);
        BloomRouter {
            local: [mk(), mk()],
            remote: vec![[None, None]; n],
            hit_rate: vec![[0.0, 0.0]; n],
            sync: SyncState::new(
                cfg.n,
                cfg.sync_sent_interval,
                cfg.sync_arrival_interval,
                cfg.window,
            ),
            rr: RoundRobin::new(),
            fallback_events: 0,
            cfg,
        }
    }

    /// Sync bookkeeping.
    pub fn sync(&self) -> &SyncState {
        &self.sync
    }

    /// Sync bookkeeping, mutable.
    pub fn sync_mut(&mut self) -> &mut SyncState {
        &mut self.sync
    }

    /// Times the worst-case fallback fired.
    pub fn fallback_events(&self) -> u64 {
        self.fallback_events
    }

    /// Applies a local window change.
    pub fn local_update(&mut self, stream: StreamId, added: u32, evicted: &[u32]) {
        let s = stream.index();
        self.local[s].insert(u64::from(added));
        for &e in evicted {
            self.local[s].remove(u64::from(e));
        }
    }

    /// Routes one arriving tuple.
    pub fn route(&mut self, stream: StreamId, key: u32, scale: f64, rng: &mut StdRng) -> Route {
        let target =
            (self.cfg.flow.target.target(self.cfg.n) * scale).clamp(0.0, (self.cfg.n - 1) as f64);
        let s = stream.index();
        let opp = stream.opposite().index();
        let peers: Vec<u16> = peers_of(self.cfg.me, self.cfg.n).collect();

        // Membership tests + hit-rate maintenance.
        let mut candidates: Vec<(u16, f64)> = Vec::new();
        let mut any_filter = false;
        for &j in &peers {
            if let Some(filter) = &self.remote[j as usize][opp] {
                any_filter = true;
                let est = filter.count_estimate(u64::from(key));
                let hit = if est >= 1 { 1.0 } else { 0.0 };
                let rate = &mut self.hit_rate[j as usize][s];
                *rate = (1.0 - HIT_EWMA) * *rate + HIT_EWMA * hit;
                if est >= 1 {
                    candidates.push((j, f64::from(est)));
                }
            }
        }

        let rhos: Vec<Option<f64>> = peers
            .iter()
            .map(|&j| {
                self.remote[j as usize][opp]
                    .is_some()
                    .then(|| self.hit_rate[j as usize][s])
            })
            .collect();
        if any_filter && detect_uniform(&rhos, self.cfg.flow.uniform_cv_threshold) {
            return self.fallback(target);
        }

        if !candidates.is_empty() {
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
            let take = (target.ceil() as usize).max(1);
            let mut picked: Vec<u16> = candidates.into_iter().take(take).map(|(j, _)| j).collect();
            // Spend any remaining budget on hit-rate-weighted coverage of
            // sites the filters may have under-reported.
            let leftover = target - picked.len() as f64;
            if leftover > 0.05 {
                let residual: Vec<Option<f64>> = peers
                    .iter()
                    .zip(&rhos)
                    .map(|(&j, r)| if picked.contains(&j) { Some(0.0) } else { *r })
                    .collect();
                if let Some(probs) = forwarding_probabilities(&residual, leftover) {
                    picked.extend(sample_recipients(&probs, rng).into_iter().map(|i| peers[i]));
                    picked.sort_unstable();
                    picked.dedup();
                }
            }
            return Route {
                peers: picked,
                fallback: false,
            };
        }
        // The suppression confidence relaxes with the message budget: at
        // T = N−1 the caller asked for broadcast coverage, so "no candidate"
        // must not drop tuples; at T = 1 suppression is the whole win.
        let frac = ((target - 1.0) / ((self.cfg.n as f64) - 2.0).max(1.0)).clamp(0.0, 1.0);
        let explore_eff = (self.cfg.flow.explore + frac * (1.0 - self.cfg.flow.explore)).min(1.0);
        if any_filter && !rng.gen_bool(explore_eff) {
            return Route::default();
        }

        match forwarding_probabilities(&rhos, target) {
            Some(probs) => Route {
                peers: sample_recipients(&probs, rng)
                    .into_iter()
                    .map(|idx| peers[idx])
                    .collect(),
                fallback: false,
            },
            None => self.fallback(target),
        }
    }

    fn fallback(&mut self, target: f64) -> Route {
        self.fallback_events += 1;
        let count = (target.round() as usize).max(1);
        Route {
            peers: self.rr.pick(self.cfg.me, self.cfg.n, count),
            fallback: true,
        }
    }

    /// Ingests a peer's filter.
    pub fn apply_summary(&mut self, from: u16, payload: &SummaryPayload) {
        let SummaryPayload::Bloom { stream, filter } = payload else {
            debug_assert!(false, "BLOOM router received a non-Bloom summary");
            return;
        };
        let mut filter = filter.clone();
        filter.rehydrate();
        self.remote[from as usize][stream.index()] = Some(filter);
    }

    /// Ships both stream filters to `peer` (full refresh; filters do not
    /// delta-encode).
    pub fn full_summaries(&mut self, peer: u16) -> Vec<SummaryPayload> {
        self.sync.reset(peer);
        StreamId::BOTH
            .into_iter()
            .map(|stream| SummaryPayload::Bloom {
                stream,
                filter: self.local[stream.index()].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_config;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn fill(r: &mut BloomRouter, stream: StreamId, keys: &[u32]) {
        for &k in keys {
            r.local_update(stream, k, &[]);
        }
    }

    fn exchange(src: &mut BloomRouter, src_id: u16, dst: &mut BloomRouter) {
        for p in src.full_summaries(dst.cfg.me) {
            dst.apply_summary(src_id, &p);
        }
    }

    #[test]
    fn membership_routes_to_holder() {
        let mut n0 = BloomRouter::new(test_config(0, 3));
        let mut n1 = BloomRouter::new(test_config(1, 3));
        let mut n2 = BloomRouter::new(test_config(2, 3));
        fill(&mut n1, StreamId::S, &[10, 10, 11]);
        fill(&mut n2, StreamId::S, &[200, 201]);
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);
        let mut rng = rng();
        let route = n0.route(StreamId::R, 10, 1.0, &mut rng);
        assert_eq!(route.peers, vec![1]);
    }

    #[test]
    fn absent_key_mostly_suppressed() {
        let mut n0 = BloomRouter::new(test_config(0, 2));
        let mut n1 = BloomRouter::new(test_config(1, 2));
        fill(&mut n1, StreamId::S, &[1, 2, 3]);
        exchange(&mut n1, 1, &mut n0);
        let mut rng = rng();
        let sent: usize = (0..200)
            .map(|_| n0.route(StreamId::R, 99, 1.0, &mut rng).peers.len())
            .sum();
        // Exploration (5%) plus possible false positives only.
        assert!(sent < 40, "absent key sent {sent}/200 times");
    }

    #[test]
    fn eviction_clears_membership() {
        let mut n0 = BloomRouter::new(test_config(0, 2));
        let mut n1 = BloomRouter::new(test_config(1, 2));
        fill(&mut n1, StreamId::S, &[42]);
        n1.local_update(StreamId::S, 7, &[42]); // 42 evicted
        exchange(&mut n1, 1, &mut n0);
        let mut rng = rng();
        let sent: usize = (0..100)
            .map(|_| n0.route(StreamId::R, 42, 1.0, &mut rng).peers.len())
            .sum();
        assert!(sent < 20, "evicted key still routed {sent}/100");
    }

    #[test]
    fn no_filters_routes_blind() {
        let mut n0 = BloomRouter::new(test_config(0, 5));
        let mut rng = rng();
        let total: usize = (0..400)
            .map(|_| n0.route(StreamId::R, 3, 1.0, &mut rng).peers.len())
            .sum();
        let avg = total as f64 / 400.0;
        assert!((0.5..1.5).contains(&avg), "blind average {avg}");
    }
}
