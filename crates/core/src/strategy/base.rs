//! BASE: the exact broadcast baseline (Section 5.1).
//!
//! Every arriving tuple is forwarded to all `N−1` peers — complete results
//! at `O(N)` message complexity per tuple, `O(N²)` system-wide.

use super::{peers_of, Route, RouterConfig};

/// Broadcast router.
#[derive(Debug)]
pub(crate) struct BaseRouter {
    me: u16,
    n: u16,
}

impl BaseRouter {
    /// Creates the broadcast router.
    pub fn new(cfg: RouterConfig) -> Self {
        BaseRouter {
            me: cfg.me,
            n: cfg.n,
        }
    }

    /// Routes to every peer (allocating convenience over
    /// [`BaseRouter::route_into`]; production goes through the latter).
    #[cfg(test)]
    pub fn route(&self) -> Route {
        let mut out = Route::default();
        self.route_into(&mut out);
        out
    }

    /// Allocation-free broadcast: refills `out` with every peer.
    // dsj-lint: hot-path
    pub fn route_into(&self, out: &mut Route) {
        out.peers.clear();
        out.peers.extend(peers_of(self.me, self.n));
        out.fallback = false;
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_config;
    use super::*;

    #[test]
    fn broadcasts_to_all_peers() {
        let r = BaseRouter::new(test_config(1, 4));
        let route = r.route();
        assert_eq!(route.peers, vec![0, 2, 3]);
        assert!(!route.fallback);
    }
}
