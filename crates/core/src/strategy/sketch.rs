//! SKCH: AGMS-sketch join-size-weighted routing (Section 6).
//!
//! Each node sketches its two windows; peers exchange sketches and
//! estimate, for every partition pair `(R_i, S_j)`, the join size
//! `|R_i ⋈ S_j|`. Tuples are forwarded with probabilities proportional to
//! these estimates. Unlike BLOOM/DFTT there is no per-key membership test,
//! so routing is "blind" within a partition pair — the reason the paper
//! finds SKCH transmits more messages per result than the testers (Fig. 9).
//! Sketch size is equalized to the DFT summary (`16·K` bytes), keeping the
//! paper's 5:1 `s0:s1` ratio.

use super::{peers_of, Route, RouterConfig, SyncState};
use crate::flow::{detect_uniform, forwarding_probabilities, sample_recipients, RoundRobin};
use crate::msg::SummaryPayload;
use dsj_sketch::AgmsSketch;
use dsj_stream::StreamId;
use rand::rngs::StdRng;

/// AGMS-sketch router.
#[derive(Debug)]
pub(crate) struct SketchRouter {
    cfg: RouterConfig,
    local: [AgmsSketch; 2],
    remote: Vec<[Option<AgmsSketch>; 2]>,
    /// Cached pairwise join-size estimates per peer per tuple stream.
    est: Vec<[Option<f64>; 2]>,
    est_stale: Vec<[bool; 2]>,
    arrivals_since_refresh: u32,
    sync: SyncState,
    rr: RoundRobin,
    fallback_events: u64,
}

impl SketchRouter {
    /// Creates the router with sketches sized to match the DFT summary.
    /// All nodes derive hash families from the shared cluster seed so
    /// sketches are mutually joinable.
    pub fn new(cfg: RouterConfig) -> Self {
        let n = cfg.n as usize;
        let bytes = (cfg.retained * 16).max(48);
        let mk = || AgmsSketch::with_size_bytes(bytes, cfg.seed);
        SketchRouter {
            local: [mk(), mk()],
            remote: vec![[None, None]; n],
            est: vec![[None, None]; n],
            est_stale: vec![[true, true]; n],
            arrivals_since_refresh: 0,
            sync: SyncState::new(
                cfg.n,
                cfg.sync_sent_interval,
                cfg.sync_arrival_interval,
                cfg.window,
            ),
            rr: RoundRobin::new(),
            fallback_events: 0,
            cfg,
        }
    }

    /// Sync bookkeeping.
    pub fn sync(&self) -> &SyncState {
        &self.sync
    }

    /// Sync bookkeeping, mutable.
    pub fn sync_mut(&mut self) -> &mut SyncState {
        &mut self.sync
    }

    /// Times the worst-case fallback fired.
    pub fn fallback_events(&self) -> u64 {
        self.fallback_events
    }

    /// Applies a local window change.
    pub fn local_update(&mut self, stream: StreamId, added: u32, evicted: &[u32]) {
        let s = stream.index();
        self.local[s].update(u64::from(added), 1);
        for &e in evicted {
            self.local[s].update(u64::from(e), -1);
        }
        self.arrivals_since_refresh += 1;
        if self.arrivals_since_refresh >= self.cfg.rho_refresh {
            self.arrivals_since_refresh = 0;
            for flags in &mut self.est_stale {
                *flags = [true, true];
            }
        }
    }

    fn refresh_estimates(&mut self, stream: StreamId) {
        let s = stream.index();
        let opp = stream.opposite().index();
        for j in 0..self.cfg.n as usize {
            if j == self.cfg.me as usize || !self.est_stale[j][s] {
                continue;
            }
            // The cluster-wide seed keeps sketches compatible; a mismatch
            // (impossible by construction) reads as "no estimate".
            self.est[j][s] = self.remote[j][opp]
                .as_ref()
                .and_then(|sk| self.local[s].join_size(sk).ok());
            self.est_stale[j][s] = false;
        }
    }

    /// Routes one arriving tuple.
    pub fn route(&mut self, stream: StreamId, key: u32, scale: f64, rng: &mut StdRng) -> Route {
        let _ = key; // sketches carry no per-key signal
        let target =
            (self.cfg.flow.target.target(self.cfg.n) * scale).clamp(0.0, (self.cfg.n - 1) as f64);
        self.refresh_estimates(stream);
        let s = stream.index();
        let peers: Vec<u16> = peers_of(self.cfg.me, self.cfg.n).collect();
        // Normalize join-size estimates into [0, 1] affinities.
        let raw: Vec<Option<f64>> = peers.iter().map(|&j| self.est[j as usize][s]).collect();
        let max = raw
            .iter()
            .flatten()
            .fold(0.0_f64, |acc, &v| acc.max(v.max(0.0)));
        let rhos: Vec<Option<f64>> = raw
            .iter()
            .map(|o| o.map(|v| if max > 0.0 { (v.max(0.0)) / max } else { 0.0 }))
            .collect();

        if detect_uniform(&rhos, self.cfg.flow.uniform_cv_threshold) {
            return self.fallback(target);
        }
        match forwarding_probabilities(&rhos, target) {
            Some(probs) => Route {
                peers: sample_recipients(&probs, rng)
                    .into_iter()
                    .map(|idx| peers[idx])
                    .collect(),
                fallback: false,
            },
            None => self.fallback(target),
        }
    }

    fn fallback(&mut self, target: f64) -> Route {
        self.fallback_events += 1;
        let count = (target.round() as usize).max(1);
        Route {
            peers: self.rr.pick(self.cfg.me, self.cfg.n, count),
            fallback: true,
        }
    }

    /// Ingests a peer's sketch.
    pub fn apply_summary(&mut self, from: u16, payload: &SummaryPayload) {
        let SummaryPayload::Sketch { stream, sketch } = payload else {
            debug_assert!(false, "SKCH router received a non-sketch summary");
            return;
        };
        let mut sketch = sketch.clone();
        sketch.rehydrate();
        let j = from as usize;
        self.remote[j][stream.index()] = Some(sketch);
        self.est_stale[j][stream.opposite().index()] = true;
    }

    /// Ships both stream sketches to `peer` (full refresh).
    pub fn full_summaries(&mut self, peer: u16) -> Vec<SummaryPayload> {
        self.sync.reset(peer);
        StreamId::BOTH
            .into_iter()
            .map(|stream| SummaryPayload::Sketch {
                stream,
                sketch: self.local[stream.index()].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_config;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn fill(r: &mut SketchRouter, stream: StreamId, keys: &[u32]) {
        for &k in keys {
            r.local_update(stream, k, &[]);
        }
    }

    fn exchange(src: &mut SketchRouter, src_id: u16, dst: &mut SketchRouter) {
        for p in src.full_summaries(dst.cfg.me) {
            dst.apply_summary(src_id, &p);
        }
    }

    #[test]
    fn join_size_weights_routing() {
        let mut n0 = SketchRouter::new(test_config(0, 3));
        let mut n1 = SketchRouter::new(test_config(1, 3));
        let mut n2 = SketchRouter::new(test_config(2, 3));
        let mine: Vec<u32> = (0..64).map(|i| i % 8).collect();
        fill(&mut n0, StreamId::R, &mine);
        fill(&mut n1, StreamId::S, &mine); // large join with n0's R
        fill(
            &mut n2,
            StreamId::S,
            &(0..64).map(|i| 100 + i % 8).collect::<Vec<_>>(),
        );
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);
        let mut rng = rng();
        let mut to1 = 0;
        let mut to2 = 0;
        for _ in 0..500 {
            let r = n0.route(StreamId::R, 3, 1.0, &mut rng);
            to1 += r.peers.iter().filter(|&&p| p == 1).count();
            to2 += r.peers.iter().filter(|&&p| p == 2).count();
        }
        assert!(
            to1 > 3 * to2.max(1),
            "high-join peer should dominate: {to1} vs {to2}"
        );
    }

    #[test]
    fn key_is_ignored_by_sketch_routing() {
        // SKCH routes identically for every key — it has no per-key info.
        let mut n0 = SketchRouter::new(test_config(0, 2));
        let mut n1 = SketchRouter::new(test_config(1, 2));
        fill(&mut n0, StreamId::R, &[1; 32]);
        fill(&mut n1, StreamId::S, &[1; 32]);
        exchange(&mut n1, 1, &mut n0);
        let mut rng = rng();
        let present: usize = (0..200)
            .map(|_| n0.route(StreamId::R, 1, 1.0, &mut rng).peers.len())
            .sum();
        let absent: usize = (0..200)
            .map(|_| n0.route(StreamId::R, 99, 1.0, &mut rng).peers.len())
            .sum();
        let diff = (present as f64 - absent as f64).abs() / 200.0;
        assert!(diff < 0.2, "sketch routing should be key-blind: {diff}");
    }

    #[test]
    fn identical_windows_fall_back() {
        let mut n0 = SketchRouter::new(test_config(0, 4));
        let mut others: Vec<SketchRouter> = (1..4)
            .map(|i| SketchRouter::new(test_config(i, 4)))
            .collect();
        let flat: Vec<u32> = (0..128).collect();
        fill(&mut n0, StreamId::R, &flat);
        for (i, o) in others.iter_mut().enumerate() {
            fill(o, StreamId::S, &flat);
            exchange(o, (i + 1) as u16, &mut n0);
        }
        let mut rng = rng();
        let route = n0.route(StreamId::R, 7, 1.0, &mut rng);
        assert!(route.fallback, "identical partitions are the worst case");
    }
}
