//! Routing strategies: the five algorithms compared in Section 6.
//!
//! Every strategy answers the same question — *which peers should this
//! arriving tuple be forwarded to?* — from different summaries:
//!
//! | Algorithm | Summary exchanged | Per-tuple signal |
//! |---|---|---|
//! | [`Algorithm::Base`]   | none                   | broadcast |
//! | [`Algorithm::Dft`]    | DFT coefficient prefix | window-level correlation `ρ` |
//! | [`Algorithm::Dftt`]   | DFT coefficient prefix | per-key membership via inverse-DFT reconstruction |
//! | [`Algorithm::Bloom`]  | counting Bloom filter  | per-key membership (false positives) |
//! | [`Algorithm::Sketch`] | AGMS sketch            | partition-pair join-size estimate |
//!
//! Summary sizes are equalized: `K` retained DFT coefficients occupy
//! `16·K` bytes, so Bloom filters get `4·K` counters and sketches `2·K`
//! `i64` counters, as in the paper's methodology.

mod base;
mod bloom;
mod dft;
mod sketch;

pub(crate) use base::BaseRouter;
pub(crate) use bloom::BloomRouter;
pub(crate) use dft::DftRouter;
pub(crate) use sketch::SketchRouter;

use crate::flow::FlowParams;
use crate::msg::SummaryPayload;
use dsj_stream::StreamId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The distributed join algorithm a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Exact broadcast baseline (`N−1` messages per tuple).
    Base,
    /// DFT flow filtering (correlation-weighted probabilistic forwarding).
    Dft,
    /// DFT flow filtering + tuple matching against reconstructed remote
    /// windows (the paper's best performer).
    Dftt,
    /// Counting-Bloom-filter membership routing.
    Bloom,
    /// AGMS-sketch join-size-weighted routing.
    Sketch,
}

impl Algorithm {
    /// All five algorithms, in the paper's comparison order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Base,
        Algorithm::Dft,
        Algorithm::Dftt,
        Algorithm::Bloom,
        Algorithm::Sketch,
    ];

    /// The paper's label for this algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Base => "BASE",
            Algorithm::Dft => "DFT",
            Algorithm::Dftt => "DFTT",
            Algorithm::Bloom => "BLOOM",
            Algorithm::Sketch => "SKCH",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-node configuration shared by all routers.
#[derive(Debug, Clone)]
pub(crate) struct RouterConfig {
    /// This node's id.
    pub me: u16,
    /// Cluster size.
    pub n: u16,
    /// Join-attribute domain size `D`.
    pub domain: u32,
    /// Retained DFT coefficients `K = D/κ` (also sizes Bloom/sketch
    /// summaries: `16·K` bytes each).
    pub retained: usize,
    /// Per-stream window size `W`.
    pub window: usize,
    /// Flow-control parameters.
    pub flow: FlowParams,
    /// Cluster-wide seed (keys sketch/Bloom hash families so summaries
    /// from different nodes are comparable).
    pub seed: u64,
    /// Refresh a peer's summary after this many tuple messages to it.
    pub sync_sent_interval: u32,
    /// ... or after this many local arrivals, whichever comes first.
    pub sync_arrival_interval: u32,
    /// Recompute cached correlations every this many arrivals.
    pub rho_refresh: u32,
}

/// A routing decision for one arriving tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Route {
    /// Peers to forward the tuple to.
    pub peers: Vec<u16>,
    /// Whether the worst-case fallback policy produced this route.
    pub fallback: bool,
}

/// Summary-synchronization bookkeeping shared by the summary-bearing
/// strategies: a peer's copy of our summary is refreshed after enough
/// tuple messages have been sent to it, after enough local arrivals, or
/// immediately at bootstrap.
#[derive(Debug, Clone)]
pub(crate) struct SyncState {
    sent_since: Vec<u32>,
    arrivals_since: Vec<u32>,
    synced_once: Vec<bool>,
    sent_interval: u32,
    arrival_interval: u32,
    bootstrap_after: u32,
}

impl SyncState {
    pub fn new(n: u16, sent_interval: u32, arrival_interval: u32, window: usize) -> Self {
        SyncState {
            sent_since: vec![0; n as usize],
            arrivals_since: vec![0; n as usize],
            synced_once: vec![false; n as usize],
            sent_interval: sent_interval.max(1),
            arrival_interval: arrival_interval.max(1),
            bootstrap_after: (window as u32 / 4).clamp(8, 512),
        }
    }

    /// Notes one local tuple arrival (advances all peers' staleness).
    pub fn note_arrival(&mut self) {
        for a in &mut self.arrivals_since {
            *a = a.saturating_add(1);
        }
    }

    /// Notes a tuple message sent to `peer`.
    pub fn note_sent(&mut self, peer: u16) {
        self.sent_since[peer as usize] = self.sent_since[peer as usize].saturating_add(1);
    }

    /// `true` when `peer`'s copy of our summary should be refreshed now.
    pub fn due(&self, peer: u16) -> bool {
        let p = peer as usize;
        if !self.synced_once[p] {
            return self.arrivals_since[p] >= self.bootstrap_after;
        }
        self.sent_since[p] >= self.sent_interval || self.arrivals_since[p] >= self.arrival_interval
    }

    /// `true` when `peer` is overdue enough to justify a standalone
    /// summary message (no tuple message carried one in time).
    pub fn overdue(&self, peer: u16) -> bool {
        let p = peer as usize;
        if !self.synced_once[p] {
            return self.arrivals_since[p] >= 2 * self.bootstrap_after;
        }
        self.arrivals_since[p] >= 2 * self.arrival_interval
    }

    /// Marks `peer` as freshly synchronized.
    pub fn reset(&mut self, peer: u16) {
        let p = peer as usize;
        self.sent_since[p] = 0;
        self.arrivals_since[p] = 0;
        self.synced_once[p] = true;
    }
}

/// Enum-dispatched router: one variant per algorithm family.
#[derive(Debug)]
pub(crate) enum Router {
    Base(BaseRouter),
    Dft(Box<DftRouter>),
    Bloom(Box<BloomRouter>),
    Sketch(Box<SketchRouter>),
}

impl Router {
    /// Builds the router for `algorithm`.
    pub fn new(algorithm: Algorithm, cfg: RouterConfig) -> Self {
        match algorithm {
            Algorithm::Base => Router::Base(BaseRouter::new(cfg)),
            Algorithm::Dft => Router::Dft(Box::new(DftRouter::new(cfg, false))),
            Algorithm::Dftt => Router::Dft(Box::new(DftRouter::new(cfg, true))),
            Algorithm::Bloom => Router::Bloom(Box::new(BloomRouter::new(cfg))),
            Algorithm::Sketch => Router::Sketch(Box::new(SketchRouter::new(cfg))),
        }
    }

    /// Records a local window change: `added` entered `stream`'s window,
    /// `evicted` left it.
    pub fn local_update(&mut self, stream: StreamId, added: u32, evicted: &[u32]) {
        match self {
            Router::Base(_) => {}
            Router::Dft(r) => r.local_update(stream, added, evicted),
            Router::Bloom(r) => r.local_update(stream, added, evicted),
            Router::Sketch(r) => r.local_update(stream, added, evicted),
        }
    }

    /// Decides where to forward an arriving tuple of `stream` with join
    /// attribute `key`. `scale` multiplies the configured message-complexity
    /// target (the throughput governor's resource-availability dial;
    /// `1.0` = nominal budget).
    ///
    /// Allocating convenience retained for tests and the determinism
    /// suite; production goes through `Router::route_into`.
    #[cfg(any(test, feature = "reference"))]
    pub fn route(&mut self, stream: StreamId, key: u32, scale: f64, rng: &mut StdRng) -> Route {
        let mut out = Route::default();
        self.route_into(stream, key, scale, rng, &mut out);
        out
    }

    /// Allocation-free variant of `Router::route`: clears and refills
    /// `out`, reusing its `peers` capacity across tuples. BASE and the
    /// DFT family are fully scratch-based; BLOOM/SKCH still build their
    /// route internally (their per-tuple cost is dominated by hashing,
    /// not allocation) and move it into `out`.
    // dsj-lint: hot-path
    pub fn route_into(
        &mut self,
        stream: StreamId,
        key: u32,
        scale: f64,
        rng: &mut StdRng,
        out: &mut Route,
    ) {
        match self {
            Router::Base(r) => r.route_into(out),
            Router::Dft(r) => r.route_into(stream, key, scale, rng, out),
            // dsj-lint: allow(hot-path-opaque-call) — BLOOM builds its route internally; per-tuple cost is hashing-dominated, not allocation
            Router::Bloom(r) => *out = r.route(stream, key, scale, rng),
            // dsj-lint: allow(hot-path-opaque-call) — SKCH builds its route internally; per-tuple cost is hashing-dominated, not allocation
            Router::Sketch(r) => *out = r.route(stream, key, scale, rng),
        }
    }

    /// The pre-optimization routing implementation, retained so the
    /// determinism suite can prove the scratch-based path never diverges
    /// from it. Identical to `Router::route` for strategies that were
    /// not rewritten.
    #[cfg(any(test, feature = "reference"))]
    pub fn route_reference(
        &mut self,
        stream: StreamId,
        key: u32,
        scale: f64,
        rng: &mut StdRng,
    ) -> Route {
        match self {
            Router::Dft(r) => r.route_reference(stream, key, scale, rng),
            _ => self.route(stream, key, scale, rng),
        }
    }

    /// Ingests a summary received from `from`. Returns the number of
    /// updates the router *dropped* because they fell outside its
    /// configured shape (e.g. a DFT coefficient index beyond the retained
    /// prefix) — zero for the summary kinds that replace state wholesale.
    pub fn apply_summary(&mut self, from: u16, payload: &SummaryPayload) -> u64 {
        match self {
            Router::Base(_) => 0,
            Router::Dft(r) => r.apply_summary(from, payload),
            Router::Bloom(r) => {
                r.apply_summary(from, payload);
                0
            }
            Router::Sketch(r) => {
                r.apply_summary(from, payload);
                0
            }
        }
    }

    /// Notes a local arrival for sync bookkeeping.
    pub fn note_arrival(&mut self) {
        if let Some(s) = self.sync_mut() {
            s.note_arrival();
        }
    }

    /// Notes a tuple message sent to `peer`.
    pub fn note_sent(&mut self, peer: u16) {
        if let Some(s) = self.sync_mut() {
            s.note_sent(peer);
        }
    }

    /// `true` when `peer` should receive a summary refresh on the next
    /// tuple message to it.
    pub fn sync_due(&self, peer: u16) -> bool {
        self.sync_ref().is_some_and(|s| s.due(peer))
    }

    /// `true` when `peer` warrants a standalone summary message.
    pub fn sync_overdue(&self, peer: u16) -> bool {
        self.sync_ref().is_some_and(|s| s.overdue(peer))
    }

    /// Produces the full summary refresh for `peer` and marks it synced.
    pub fn full_summaries(&mut self, peer: u16) -> Vec<SummaryPayload> {
        match self {
            Router::Base(_) => Vec::new(),
            Router::Dft(r) => r.full_summaries(peer),
            Router::Bloom(r) => r.full_summaries(peer),
            Router::Sketch(r) => r.full_summaries(peer),
        }
    }

    /// Produces a small piggyback delta for `peer` (DFT-family only).
    pub fn piggyback(&mut self, peer: u16) -> Vec<SummaryPayload> {
        match self {
            Router::Dft(r) => r.piggyback(peer),
            _ => Vec::new(),
        }
    }

    /// Number of times the worst-case fallback policy fired.
    pub fn fallback_events(&self) -> u64 {
        match self {
            Router::Base(_) => 0,
            Router::Dft(r) => r.fallback_events(),
            Router::Bloom(r) => r.fallback_events(),
            Router::Sketch(r) => r.fallback_events(),
        }
    }

    fn sync_ref(&self) -> Option<&SyncState> {
        match self {
            Router::Base(_) => None,
            Router::Dft(r) => Some(r.sync()),
            Router::Bloom(r) => Some(r.sync()),
            Router::Sketch(r) => Some(r.sync()),
        }
    }

    fn sync_mut(&mut self) -> Option<&mut SyncState> {
        match self {
            Router::Base(_) => None,
            Router::Dft(r) => Some(r.sync_mut()),
            Router::Bloom(r) => Some(r.sync_mut()),
            Router::Sketch(r) => Some(r.sync_mut()),
        }
    }
}

/// Iterates over all peers of `me` in ascending order.
pub(crate) fn peers_of(me: u16, n: u16) -> impl Iterator<Item = u16> {
    (0..n).filter(move |&j| j != me)
}

#[cfg(test)]
pub(crate) fn test_config(me: u16, n: u16) -> RouterConfig {
    RouterConfig {
        me,
        n,
        domain: 256,
        retained: 32,
        window: 64,
        flow: FlowParams::default(),
        seed: 7,
        sync_sent_interval: 16,
        sync_arrival_interval: 64,
        rho_refresh: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Base.label(), "BASE");
        assert_eq!(Algorithm::Dftt.to_string(), "DFTT");
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn sync_state_bootstrap_then_intervals() {
        let mut s = SyncState::new(3, 4, 10, 64);
        // Bootstrap threshold is window/4 = 16.
        for _ in 0..15 {
            s.note_arrival();
        }
        assert!(!s.due(1));
        s.note_arrival();
        assert!(s.due(1), "bootstrap sync after warm-up");
        s.reset(1);
        assert!(!s.due(1));
        // Sent-interval path.
        for _ in 0..4 {
            s.note_sent(1);
        }
        assert!(s.due(1));
        s.reset(1);
        // Arrival-interval path.
        for _ in 0..10 {
            s.note_arrival();
        }
        assert!(s.due(1));
        assert!(!s.overdue(1));
        for _ in 0..10 {
            s.note_arrival();
        }
        assert!(s.overdue(1));
    }

    #[test]
    fn peers_of_skips_self() {
        let peers: Vec<u16> = peers_of(2, 5).collect();
        assert_eq!(peers, vec![0, 1, 3, 4]);
    }
}
