//! DFT and DFTT routing (Sections 5.2–5.3, Fig. 7).
//!
//! Each node incrementally maintains the DFT coefficient prefix of its two
//! windows' join-attribute distributions ([`PointDft`]) and gossips the
//! prefix to peers — piggy-backed on tuple messages where possible,
//! standalone when overdue. From the local and remote prefixes the router
//! computes the cross-correlation coefficient `ρ_{i,j}` (Eqn. 4) and
//! forwards a tuple to peer `j` with probability `w_i·ρ_{i,j}` bounded by
//! the configured message-complexity target (Eqn. 9).
//!
//! With `tuple_testing` enabled (**DFTT**), the router additionally
//! reconstructs every remote window's attribute multiset by inverse DFT +
//! rounding (Eqn. 10) and forwards a tuple *only* to the sites whose
//! reconstruction shows at least one join partner for its key — the
//! `JoinEstimate`/`ChooseSite` steps of Fig. 7. When no site qualifies, a
//! small exploration probability keeps routing honest against stale
//! summaries.
//!
//! A near-zero variance across the `ρ_{i,j}` is the uniform-data worst
//! case (Theorems 1/2); the router then falls back to round-robin, as the
//! paper prescribes.

use super::{peers_of, Route, RouterConfig, SyncState};
use crate::flow::{
    detect_uniform, forwarding_probabilities_into, sample_recipients_into, FlowScratch, RoundRobin,
};
#[cfg(any(test, feature = "reference"))]
use crate::flow::{forwarding_probabilities, sample_recipients};
use crate::msg::{CoeffUpdate, SummaryPayload};
use dsj_dft::sliding::PointDft;
use dsj_dft::spectrum::cross_correlation_coefficient;
use dsj_dft::{Complex64, ControlVector, IncrementalRecon};
use dsj_stream::StreamId;
use rand::rngs::StdRng;
use rand::Rng;

/// Minimum absolute coefficient change worth piggy-backing on a tuple
/// message; combined with a relative component so large-magnitude bins
/// (e.g. DC) only ship when they moved materially.
const PIGGYBACK_TAU_ABS: f64 = 32.0;
/// Relative component of the piggyback threshold.
const PIGGYBACK_TAU_REL: f64 = 0.25;
/// Minimum local arrivals between piggybacks to the same peer — caps the
/// steady-state coefficient overhead at a small fraction of the tuple
/// data, the regime Figure 8 reports.
const PIGGYBACK_GAP: u64 = 192;

/// One remote window's reconstruction, materialized lazily bucket by
/// bucket (DFTT only).
///
/// Routing reads *one* bucket per peer per tuple, so eagerly maintaining
/// all `W` buckets on every summary is almost entirely wasted work — the
/// original reconstruction cliff. Instead each bucket carries a validity
/// stamp: a dense refresh invalidates the whole memo by bumping `epoch`
/// (*O(1)*), and a read of a non-current bucket recomputes just that
/// bucket from the coefficient prefix via [`IncrementalRecon::eval`]
/// (*O(K)*). Sparse updates (piggybacks) keep already-materialized
/// buckets current in place via [`IncrementalRecon::apply`], preserving
/// the memo across the common steady-state message.
#[derive(Debug, Clone)]
struct ReconMemo {
    /// Bucket estimates; meaningful only where `stamps[key] == epoch`.
    values: Vec<f64>,
    /// Per-bucket materialization stamp.
    stamps: Vec<u32>,
    /// Current validity epoch; bumping it invalidates every bucket.
    epoch: u32,
}

impl ReconMemo {
    fn new(w: usize) -> Self {
        // `stamps` start below `epoch`, so every bucket begins invalid.
        ReconMemo {
            values: vec![0.0; w],
            stamps: vec![0; w],
            epoch: 1,
        }
    }

    /// Invalidates every bucket in *O(1)* — the dense-refresh path.
    fn invalidate(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One `O(W)` reset per 2³² refreshes keeps wrapped stamps from
            // aliasing as current; unreachable in any real run.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }
}

/// Reads one reconstruction bucket through the memo: the memoized value
/// when current, otherwise a fresh *O(K)* pointwise evaluation that is
/// stored back. `None` for out-of-domain keys.
///
/// Free function (not a method) so callers can split-borrow the router's
/// `recon_plan`, `recon` and `remote` fields independently.
// dsj-lint: hot-path
#[inline]
fn membership_estimate(
    plan: &IncrementalRecon,
    memo: &mut ReconMemo,
    coeffs: &[Complex64],
    key: usize,
) -> Option<f64> {
    let stamp = memo.stamps.get_mut(key)?;
    if *stamp == memo.epoch {
        return Some(memo.values[key]);
    }
    let est = plan.eval(coeffs, key);
    memo.values[key] = est;
    *stamp = memo.epoch;
    Some(est)
}

/// Router for the DFT (flow filtering) and DFTT (flow filtering + tuple
/// matching) algorithms.
#[derive(Debug)]
pub(crate) struct DftRouter {
    cfg: RouterConfig,
    tuple_testing: bool,
    /// Local window-histogram DFTs, indexed by [`StreamId::index`].
    local: [PointDft; 2],
    /// Remote coefficient prefixes: `remote[peer][stream]`.
    remote: Vec<[Option<Vec<Complex64>>; 2]>,
    /// What each peer last received of our coefficients.
    snapshot: Vec<[Option<Vec<Complex64>>; 2]>,
    /// Reconstructed remote histograms (DFTT only), kept as lazy
    /// bucket-level memos: dense refreshes invalidate in *O(1)*, sparse
    /// updates fold in place through [`IncrementalRecon`], and buckets
    /// materialize on first read via the *O(K)* pointwise inverse DFT.
    recon: Vec<[Option<ReconMemo>; 2]>,
    /// Shared inverse-DFT update plan for every per-peer reconstruction
    /// (DFTT only): precomputed twiddles, *O(W)* per changed coefficient.
    recon_plan: Option<IncrementalRecon>,
    /// Retained prefix length, clamped to the domain (matches `local`).
    retained: usize,
    /// Cached `ρ` per peer per *tuple* stream (correlating `local[s]`
    /// against `remote[peer][s.opposite()]`).
    rho: Vec<[Option<f64>; 2]>,
    rho_stale: Vec<[bool; 2]>,
    arrivals_since_rho: u32,
    arrivals: u64,
    last_piggyback: Vec<u64>,
    sync: SyncState,
    rr: RoundRobin,
    fallback_events: u64,
    /// The fixed peer list (`peers_of` order), computed once.
    peers: Vec<u16>,
    /// Per-tuple scratch, reused across `route_into` calls so the steady
    /// state allocates nothing: ρ snapshot aligned with `peers`, membership
    /// candidates, residual affinities, forwarding probabilities, sampled
    /// peer indices.
    rhos_scratch: Vec<Option<f64>>,
    candidates: Vec<(u16, f64)>,
    residual: Vec<Option<f64>>,
    probs: Vec<f64>,
    sampled: Vec<usize>,
    /// Indexed by node id; marks membership-picked peers during the
    /// residual pass (replaces a linear `picked.contains` rescan). Always
    /// all-`false` between calls.
    picked_mask: Vec<bool>,
    flow_scratch: FlowScratch,
    /// Cached uniform-CV verdict per *tuple* stream. The inputs (the ρ
    /// cache) change only under `rho_stale`, so this is invalidated exactly
    /// where staleness is introduced and recomputed at most once per
    /// refresh period instead of per tuple.
    uniform_cache: [Option<bool>; 2],
}

impl DftRouter {
    /// Creates the router; `tuple_testing` selects DFTT over plain DFT.
    pub fn new(cfg: RouterConfig, tuple_testing: bool) -> Self {
        let n = cfg.n as usize;
        let domain = cfg.domain as usize;
        let k = cfg.retained.min(domain).max(1);
        // Floating-point drift over experiment-scale update counts is
        // ~1e-11 of a count and cannot affect rounding decisions, so the
        // routers skip periodic exact recomputation; the control-vector
        // trade-off itself is exercised by the Table 1 benchmarks.
        let mk = || PointDft::new(domain, k, ControlVector::never());
        DftRouter {
            tuple_testing,
            local: [mk(), mk()],
            remote: vec![[None, None]; n],
            snapshot: vec![[None, None]; n],
            recon: vec![[None, None]; n],
            recon_plan: tuple_testing.then(|| IncrementalRecon::new(domain, k)),
            retained: k,
            rho: vec![[None, None]; n],
            rho_stale: vec![[true, true]; n],
            arrivals_since_rho: 0,
            arrivals: 0,
            last_piggyback: vec![0; n],
            sync: SyncState::new(
                cfg.n,
                cfg.sync_sent_interval,
                cfg.sync_arrival_interval,
                cfg.window,
            ),
            rr: RoundRobin::new(),
            fallback_events: 0,
            peers: peers_of(cfg.me, cfg.n).collect(),
            rhos_scratch: Vec::new(),
            candidates: Vec::new(),
            residual: Vec::new(),
            probs: Vec::new(),
            sampled: Vec::new(),
            picked_mask: vec![false; n],
            flow_scratch: FlowScratch::default(),
            uniform_cache: [None, None],
            cfg,
        }
    }

    /// Sync bookkeeping (shared accessor).
    pub fn sync(&self) -> &SyncState {
        &self.sync
    }

    /// Sync bookkeeping, mutable.
    pub fn sync_mut(&mut self) -> &mut SyncState {
        &mut self.sync
    }

    /// Times the worst-case fallback fired.
    pub fn fallback_events(&self) -> u64 {
        self.fallback_events
    }

    /// Applies a local window change.
    pub fn local_update(&mut self, stream: StreamId, added: u32, evicted: &[u32]) {
        let s = stream.index();
        self.local[s].add(added as usize, 1.0);
        for &e in evicted {
            self.local[s].add(e as usize, -1.0);
        }
        self.arrivals += 1;
        self.arrivals_since_rho += 1;
        if self.arrivals_since_rho >= self.cfg.rho_refresh {
            self.arrivals_since_rho = 0;
            for flags in &mut self.rho_stale {
                *flags = [true, true];
            }
            // ρ will move on the next refresh; the CV verdict may too.
            self.uniform_cache = [None, None];
        }
    }

    /// Number of low-frequency bins used for the correlation coefficient.
    /// Smoothing ρ to coarse resolution makes the uniform-data detector
    /// robust to sparse-window noise; the full prefix still serves
    /// reconstruction.
    const RHO_SMOOTH_BINS: usize = 16;

    fn refresh_rho(&mut self, stream: StreamId) {
        let s = stream.index();
        let opp = stream.opposite().index();
        for j in 0..self.cfg.n as usize {
            if j == self.cfg.me as usize || !self.rho_stale[j][s] {
                continue;
            }
            self.rho[j][s] = self.remote[j][opp].as_ref().map(|coeffs| {
                let k = coeffs.len().min(Self::RHO_SMOOTH_BINS);
                cross_correlation_coefficient(
                    &self.local[s].coefficients()[..k],
                    &coeffs[..k],
                    self.cfg.domain as usize,
                )
            });
            self.rho_stale[j][s] = false;
        }
    }

    /// Routes one arriving tuple (allocating convenience over
    /// [`DftRouter::route_into`]; production goes through the latter).
    #[cfg(test)]
    pub fn route(&mut self, stream: StreamId, key: u32, scale: f64, rng: &mut StdRng) -> Route {
        let mut out = Route::default();
        self.route_into(stream, key, scale, rng, &mut out);
        out
    }

    /// Allocation-free routing: clears and fills `out` using the router's
    /// persistent scratch buffers. Behaviorally identical to
    /// `DftRouter::route_reference` — same float operations, same RNG
    /// draws, same routes — which the determinism suite asserts on seeded
    /// streams.
    // dsj-lint: hot-path
    pub fn route_into(
        &mut self,
        stream: StreamId,
        key: u32,
        scale: f64,
        rng: &mut StdRng,
        out: &mut Route,
    ) {
        out.peers.clear();
        out.fallback = false;
        let target =
            (self.cfg.flow.target.target(self.cfg.n) * scale).clamp(0.0, (self.cfg.n - 1) as f64);
        self.refresh_rho(stream);
        let me = self.cfg.me as usize;
        let s = stream.index();
        // ρ snapshot aligned with `self.peers` (the `peers_of` order).
        self.rhos_scratch.clear();
        for j in 0..self.cfg.n as usize {
            if j == me {
                continue;
            }
            let r = self.rho[j][s];
            self.rhos_scratch.push(r);
        }

        // Uniform-data detection (Section 5.2.2): when the window-level
        // correlations are indistinguishable, neither ρ-weighted flow
        // filtering nor the membership reconstructions (flat histograms)
        // carry signal — fall back to round-robin. Membership tests still
        // take precedence whenever the correlations *do* spread.
        let uniform = match self.uniform_cache[s] {
            Some(u) => u,
            None => {
                let u = detect_uniform(&self.rhos_scratch, self.cfg.flow.uniform_cv_threshold);
                self.uniform_cache[s] = Some(u);
                u
            }
        };

        if self.tuple_testing && !uniform {
            let opp = stream.opposite().index();
            self.candidates.clear();
            let mut any_recon = false;
            if let Some(plan) = self.recon_plan.as_ref() {
                for j in 0..self.cfg.n as usize {
                    if j == me {
                        continue;
                    }
                    // The memo and the coefficient prefix are always
                    // created together in `apply_summary`.
                    let (Some(memo), Some(coeffs)) =
                        (self.recon[j][opp].as_mut(), self.remote[j][opp].as_ref())
                    else {
                        continue;
                    };
                    any_recon = true;
                    // Checked: an out-of-domain key (ingest guards it, but
                    // the hot path must be panic-free regardless) has no
                    // reconstruction bucket — no membership hit.
                    let Some(est) = membership_estimate(plan, memo, coeffs, key as usize) else {
                        continue;
                    };
                    if est >= 0.5 {
                        self.candidates.push((j as u16, est));
                    }
                }
            }
            if !self.candidates.is_empty() {
                // Stable sort on purpose: equal-score tie order must match
                // route_reference's stable sort for the lockstep suite.
                // dsj-lint: allow(hot-path-opaque-call) — std stable sort may allocate a merge buffer; kept for tie-order parity with route_reference
                self.candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                let take = (target.ceil() as usize).max(1);
                for idx in 0..take.min(self.candidates.len()) {
                    let j = self.candidates[idx].0;
                    out.peers.push(j);
                }
                // Budget beyond the membership hits buys correlation-routed
                // coverage of sites the (lossy) reconstruction may miss —
                // how DFTT trades extra messages for lower ε (Fig. 9).
                let leftover = target - out.peers.len() as f64;
                if leftover > 0.05 {
                    for &j in out.peers.iter() {
                        self.picked_mask[j as usize] = true;
                    }
                    self.residual.clear();
                    for idx in 0..self.peers.len() {
                        let j = self.peers[idx] as usize;
                        let r = if self.picked_mask[j] {
                            Some(0.0)
                        } else {
                            self.rhos_scratch[idx]
                        };
                        self.residual.push(r);
                    }
                    if forwarding_probabilities_into(
                        &self.residual,
                        leftover,
                        &mut self.flow_scratch,
                        &mut self.probs,
                    ) {
                        sample_recipients_into(&self.probs, rng, &mut self.sampled);
                        for &i in &self.sampled {
                            out.peers.push(self.peers[i]);
                        }
                        out.peers.sort_unstable();
                        out.peers.dedup();
                    }
                    // Restore the all-`false` mask invariant. Membership
                    // picks sit in the residual pass with probability zero,
                    // so they are never re-sampled and always survive the
                    // dedup — clearing through `out.peers` covers every
                    // bit that was set.
                    for &j in out.peers.iter() {
                        self.picked_mask[j as usize] = false;
                    }
                }
                return;
            }
            // The suppression confidence relaxes with the message budget:
            // at T = N−1 the caller asked for broadcast coverage, so "no
            // candidate" must not drop tuples; at T = 1 suppression is the
            // whole win.
            let frac = ((target - 1.0) / ((self.cfg.n as f64) - 2.0).max(1.0)).clamp(0.0, 1.0);
            let explore_eff =
                (self.cfg.flow.explore + frac * (1.0 - self.cfg.flow.explore)).min(1.0);
            if any_recon && !rng.gen_bool(explore_eff) {
                // Every reconstruction says "no partners anywhere": save
                // the messages (the DFTT advantage of Fig. 9).
                return;
            }
        }

        if uniform {
            self.fallback_into(target, out);
            return;
        }

        if forwarding_probabilities_into(
            &self.rhos_scratch,
            target,
            &mut self.flow_scratch,
            &mut self.probs,
        ) {
            sample_recipients_into(&self.probs, rng, &mut self.sampled);
            for &i in &self.sampled {
                out.peers.push(self.peers[i]);
            }
        } else {
            self.fallback_into(target, out);
        }
    }

    /// The pre-optimization `route` implementation, retained verbatim so
    /// the determinism suite can prove [`DftRouter::route_into`] never
    /// diverges from it (same peers, same fallback flag, same RNG draw
    /// counts) on seeded streams.
    #[cfg(any(test, feature = "reference"))]
    pub fn route_reference(
        &mut self,
        stream: StreamId,
        key: u32,
        scale: f64,
        rng: &mut StdRng,
    ) -> Route {
        let target =
            (self.cfg.flow.target.target(self.cfg.n) * scale).clamp(0.0, (self.cfg.n - 1) as f64);
        self.refresh_rho(stream);
        let peers: Vec<u16> = peers_of(self.cfg.me, self.cfg.n).collect();
        let rhos: Vec<Option<f64>> = peers
            .iter()
            .map(|&j| self.rho[j as usize][stream.index()])
            .collect();

        let uniform = detect_uniform(&rhos, self.cfg.flow.uniform_cv_threshold);

        if self.tuple_testing && !uniform {
            let opp = stream.opposite().index();
            let mut candidates: Vec<(u16, f64)> = Vec::new();
            for &j in &peers {
                let Some(plan) = self.recon_plan.as_ref() else {
                    break;
                };
                let (Some(memo), Some(coeffs)) = (
                    self.recon[j as usize][opp].as_mut(),
                    self.remote[j as usize][opp].as_ref(),
                ) else {
                    continue;
                };
                // The same memoized read as `route_into`: both paths share
                // the memo state, so they observe bitwise-identical bucket
                // estimates in lockstep.
                if let Some(est) = membership_estimate(plan, memo, coeffs, key as usize) {
                    if est >= 0.5 {
                        candidates.push((j, est));
                    }
                }
            }
            let any_recon = peers.iter().any(|&j| self.recon[j as usize][opp].is_some());
            if !candidates.is_empty() {
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                let take = (target.ceil() as usize).max(1);
                let mut picked: Vec<u16> =
                    candidates.into_iter().take(take).map(|(j, _)| j).collect();
                let leftover = target - picked.len() as f64;
                if leftover > 0.05 {
                    let residual: Vec<Option<f64>> = peers
                        .iter()
                        .zip(&rhos)
                        .map(|(&j, r)| if picked.contains(&j) { Some(0.0) } else { *r })
                        .collect();
                    if let Some(probs) = forwarding_probabilities(&residual, leftover) {
                        picked.extend(sample_recipients(&probs, rng).into_iter().map(|i| peers[i]));
                        picked.sort_unstable();
                        picked.dedup();
                    }
                }
                return Route {
                    peers: picked,
                    fallback: false,
                };
            }
            let frac = ((target - 1.0) / ((self.cfg.n as f64) - 2.0).max(1.0)).clamp(0.0, 1.0);
            let explore_eff =
                (self.cfg.flow.explore + frac * (1.0 - self.cfg.flow.explore)).min(1.0);
            if any_recon && !rng.gen_bool(explore_eff) {
                return Route::default();
            }
        }

        if uniform {
            return self.fallback(target);
        }

        match forwarding_probabilities(&rhos, target) {
            Some(probs) => Route {
                peers: sample_recipients(&probs, rng)
                    .into_iter()
                    .map(|idx| peers[idx])
                    .collect(),
                fallback: false,
            },
            None => self.fallback(target),
        }
    }

    #[cfg(any(test, feature = "reference"))]
    fn fallback(&mut self, target: f64) -> Route {
        let mut out = Route::default();
        self.fallback_into(target, &mut out);
        out
    }

    fn fallback_into(&mut self, target: f64, out: &mut Route) {
        self.fallback_events += 1;
        let count = (target.round() as usize).max(1);
        self.rr
            .pick_into(self.cfg.me, self.cfg.n, count, &mut out.peers);
        out.fallback = true;
    }

    /// Ingests a peer's coefficient updates and keeps the reconstruction
    /// memo consistent without ever running a full *O(W·κ)* inverse DFT:
    /// a sparse update folds each changed bin into the memo *in place*
    /// (*O(W)* per bin through the shared [`IncrementalRecon`] plan, no
    /// coefficient clone), and a dense refresh invalidates the memo in
    /// *O(1)*, deferring bucket values to on-demand *O(K)* pointwise
    /// evaluation at routing time.
    ///
    /// Returns the number of updates *dropped* because their index fell
    /// outside the retained prefix — the signature of a version-skewed or
    /// corrupted peer summary, surfaced via `NodeMetrics` rather than
    /// silently part-applying the payload.
    pub fn apply_summary(&mut self, from: u16, payload: &SummaryPayload) -> u64 {
        let SummaryPayload::Dft {
            stream, updates, ..
        } = payload
        else {
            debug_assert!(false, "DFT router received a non-DFT summary");
            return 0;
        };
        let j = from as usize;
        let s = stream.index();
        let k = self.retained;
        // One-time lazy init per (peer, stream); every later summary from
        // this peer reuses the buffer.
        let coeffs = self.remote[j][s].get_or_insert_with(|| vec![Complex64::ZERO; k]);
        let mut dropped = 0u64;
        match self.recon_plan.as_ref() {
            Some(plan) => {
                let memo =
                    self.recon[j][s].get_or_insert_with(|| ReconMemo::new(plan.signal_len()));
                // Hybrid maintenance. A *sparse* update (piggyback, small
                // drift delta) folds each changed bin into the memo's
                // buckets in place — O(W) per bin, and already-materialized
                // buckets stay current. A *dense* refresh (initial full
                // sync, large drift correction) just invalidates the memo
                // in O(1): routing reads so few distinct buckets between
                // refreshes that recomputing them on demand (O(K) each) is
                // orders of magnitude cheaper than rebuilding all W.
                // Senders only ship bins that actually moved, so the
                // in-range update count is the changed-bin count.
                let in_range = updates.iter().filter(|u| (u.index as usize) < k).count();
                dropped += (updates.len() - in_range) as u64;
                if in_range >= plan.dense_threshold() {
                    for u in updates {
                        if let Some(slot) = coeffs.get_mut(u.index as usize) {
                            *slot = u.value;
                        }
                    }
                    memo.invalidate();
                } else {
                    for u in updates {
                        if let Some(slot) = coeffs.get_mut(u.index as usize) {
                            let delta = u.value - *slot;
                            *slot = u.value;
                            // Stale buckets absorb the delta harmlessly —
                            // they are overwritten by a fresh pointwise
                            // evaluation whenever they are next read.
                            plan.apply(&mut memo.values, u.index as usize, delta);
                        }
                    }
                }
            }
            None => {
                for u in updates {
                    match coeffs.get_mut(u.index as usize) {
                        Some(slot) => *slot = u.value,
                        None => dropped += 1,
                    }
                }
            }
        }
        // Tuples of the *opposite* stream correlate against this summary.
        self.rho_stale[j][stream.opposite().index()] = true;
        // The uniform-CV verdict is a pure function of the ρ row, which only
        // changes after a staleness mark — invalidate the memo here and at
        // the local refresh tick, nowhere else.
        self.uniform_cache[stream.opposite().index()] = None;
        dropped
    }

    /// Test-only view of one reconstruction bucket through the production
    /// memoized read path (`membership_estimate`).
    #[cfg(test)]
    fn recon_bucket(&mut self, peer: usize, s: usize, key: usize) -> Option<f64> {
        let plan = self.recon_plan.as_ref()?;
        let memo = self.recon[peer][s].as_mut()?;
        let coeffs = self.remote[peer][s].as_ref()?;
        membership_estimate(plan, memo, coeffs, key)
    }

    /// Full refresh of both streams' coefficients for `peer`.
    pub fn full_summaries(&mut self, peer: u16) -> Vec<SummaryPayload> {
        // Indices travel as `u16` on the wire; config validation
        // (`RunError::RetainedTooLarge`) guarantees the prefix fits.
        debug_assert!(
            self.retained <= usize::from(u16::MAX) + 1,
            "retained prefix {} cannot be u16-index encoded",
            self.retained
        );
        let mut out = Vec::new();
        for stream in StreamId::BOTH {
            let s = stream.index();
            let cur = self.local[s].coefficients();
            let snap = &mut self.snapshot[peer as usize][s];
            let updates: Vec<CoeffUpdate> = match snap {
                Some(prev) => cur
                    .iter()
                    .enumerate()
                    .filter(|&(i, c)| (*c - prev[i]).abs() > 1e-9)
                    .map(|(i, c)| CoeffUpdate {
                        index: i as u16,
                        value: *c,
                    })
                    .collect(),
                None => cur
                    .iter()
                    .enumerate()
                    .map(|(i, c)| CoeffUpdate {
                        index: i as u16,
                        value: *c,
                    })
                    .collect(),
            };
            *snap = Some(cur.to_vec());
            if !updates.is_empty() {
                out.push(SummaryPayload::Dft {
                    stream,
                    signal_len: self.cfg.domain,
                    updates,
                });
            }
        }
        self.sync.reset(peer);
        out
    }

    /// A minimal piggyback delta: the single most-changed coefficient
    /// across both streams, when it moved past the (absolute + relative)
    /// threshold. Keeping this to one coefficient per tuple message holds
    /// the coefficient overhead at a few percent of the net data, the
    /// regime Figure 8 reports.
    pub fn piggyback(&mut self, peer: u16) -> Vec<SummaryPayload> {
        if self
            .arrivals
            .saturating_sub(self.last_piggyback[peer as usize])
            < PIGGYBACK_GAP
        {
            return Vec::new();
        }
        let mut best: Option<(StreamId, usize, f64)> = None;
        for stream in StreamId::BOTH {
            let s = stream.index();
            let Some(snap) = self.snapshot[peer as usize][s].as_ref() else {
                continue; // never fully synced: piggyback would be partial state
            };
            let cur = self.local[s].coefficients();
            for (i, c) in cur.iter().enumerate() {
                let delta = (*c - snap[i]).abs();
                let tau = PIGGYBACK_TAU_ABS + PIGGYBACK_TAU_REL * snap[i].abs();
                if delta > tau && best.is_none_or(|(_, _, d)| delta > d) {
                    best = Some((stream, i, delta));
                }
            }
        }
        let Some((stream, i, _)) = best else {
            return Vec::new();
        };
        let s = stream.index();
        let value = self.local[s].coefficients()[i];
        let Some(snap) = self.snapshot[peer as usize][s].as_mut() else {
            // Unreachable: `best` only selects streams with a snapshot.
            return Vec::new();
        };
        snap[i] = value;
        self.last_piggyback[peer as usize] = self.arrivals;
        vec![SummaryPayload::Dft {
            stream,
            signal_len: self.cfg.domain,
            updates: vec![CoeffUpdate {
                index: i as u16,
                value,
            }],
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_config;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    /// Fills a router's local S window with `keys`.
    fn fill(r: &mut DftRouter, stream: StreamId, keys: &[u32]) {
        for &k in keys {
            r.local_update(stream, k, &[]);
        }
    }

    /// Wires `src`'s summaries into `dst` as if exchanged over the network.
    fn exchange(src: &mut DftRouter, src_id: u16, dst: &mut DftRouter) {
        for p in src.full_summaries(dst.cfg.me) {
            dst.apply_summary(src_id, &p);
        }
    }

    #[test]
    fn dftt_targets_matching_site() {
        // Node 0 routes R tuples; node 1 has S window full of key 10,
        // node 2 has S window full of key 200.
        let mut n0 = DftRouter::new(test_config(0, 3), true);
        let mut n1 = DftRouter::new(test_config(1, 3), true);
        let mut n2 = DftRouter::new(test_config(2, 3), true);
        fill(&mut n1, StreamId::S, &[10; 40]);
        fill(&mut n2, StreamId::S, &[200; 40]);
        fill(
            &mut n0,
            StreamId::R,
            &(0..40).map(|i| i % 20).collect::<Vec<_>>(),
        );
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);

        let mut rng = rng();
        let route = n0.route(StreamId::R, 10, 1.0, &mut rng);
        assert_eq!(route.peers, vec![1], "key 10 lives only at node 1");
        let route = n0.route(StreamId::R, 200, 1.0, &mut rng);
        assert_eq!(route.peers, vec![2], "key 200 lives only at node 2");
    }

    #[test]
    fn dftt_suppresses_hopeless_tuples() {
        let mut n0 = DftRouter::new(test_config(0, 3), true);
        let mut n1 = DftRouter::new(test_config(1, 3), true);
        let mut n2 = DftRouter::new(test_config(2, 3), true);
        fill(&mut n1, StreamId::S, &[10; 40]);
        fill(&mut n2, StreamId::S, &[200; 40]);
        fill(&mut n0, StreamId::R, &[10; 40]);
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);
        let mut rng = rng();
        // Key 100 joins nowhere: almost every route should be empty
        // (modulo the 5% exploration rate).
        let empty = (0..200)
            .filter(|_| n0.route(StreamId::R, 100, 1.0, &mut rng).peers.is_empty())
            .count();
        assert!(empty > 170, "only {empty}/200 suppressed");
    }

    #[test]
    fn dft_prefers_correlated_peer() {
        // Node 1's S window matches node 0's R window distribution;
        // node 2's does not.
        let mut n0 = DftRouter::new(test_config(0, 3), false);
        let mut n1 = DftRouter::new(test_config(1, 3), false);
        let mut n2 = DftRouter::new(test_config(2, 3), false);
        let hot: Vec<u32> = (0..60).map(|i| i % 8).collect();
        let cold: Vec<u32> = (0..60).map(|i| 200 + (i % 8)).collect();
        fill(&mut n0, StreamId::R, &hot);
        fill(&mut n1, StreamId::S, &hot);
        fill(&mut n2, StreamId::S, &cold);
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);
        let mut rng = rng();
        let mut to1 = 0;
        let mut to2 = 0;
        for _ in 0..500 {
            let route = n0.route(StreamId::R, 3, 1.0, &mut rng);
            assert!(!route.fallback, "correlations are strongly skewed");
            to1 += route.peers.iter().filter(|&&p| p == 1).count();
            to2 += route.peers.iter().filter(|&&p| p == 2).count();
        }
        assert!(
            to1 > 5 * to2.max(1),
            "correlated peer should dominate: {to1} vs {to2}"
        );
    }

    #[test]
    fn uniform_windows_trigger_fallback() {
        // All three nodes hold statistically identical (flat) windows.
        let mut n0 = DftRouter::new(test_config(0, 3), false);
        let mut n1 = DftRouter::new(test_config(1, 3), false);
        let mut n2 = DftRouter::new(test_config(2, 3), false);
        let flat: Vec<u32> = (0..256).collect();
        fill(&mut n0, StreamId::R, &flat);
        fill(&mut n1, StreamId::S, &flat);
        fill(&mut n2, StreamId::S, &flat);
        exchange(&mut n1, 1, &mut n0);
        exchange(&mut n2, 2, &mut n0);
        let mut rng = rng();
        let route = n0.route(StreamId::R, 9, 1.0, &mut rng);
        assert!(route.fallback, "identical windows are the worst case");
        assert_eq!(route.peers.len(), 1, "T=1 round robin");
        assert!(n0.fallback_events() > 0);
    }

    #[test]
    fn unknown_peers_get_blind_routing() {
        let mut n0 = DftRouter::new(test_config(0, 5), false);
        fill(&mut n0, StreamId::R, &[1, 2, 3, 4]);
        let mut rng = rng();
        let mut total = 0;
        for _ in 0..400 {
            total += n0.route(StreamId::R, 2, 1.0, &mut rng).peers.len();
        }
        let avg = total as f64 / 400.0;
        assert!((0.5..1.5).contains(&avg), "blind routing ≈ target: {avg}");
    }

    #[test]
    fn full_summary_is_delta_after_first() {
        let mut r = DftRouter::new(test_config(0, 2), false);
        fill(&mut r, StreamId::R, &[5, 5, 5]);
        let first = r.full_summaries(1);
        // R has content, S is empty (all-zero coefficients skipped? no —
        // first sync sends everything including zeros for S).
        assert_eq!(first.len(), 2);
        let SummaryPayload::Dft { updates, .. } = &first[0] else {
            panic!("expected DFT payload")
        };
        assert_eq!(updates.len(), 32, "first sync ships the full prefix");
        // No change ⇒ no updates.
        let second = r.full_summaries(1);
        assert!(second.is_empty());
        // One more arrival ⇒ small delta.
        r.local_update(StreamId::R, 7, &[]);
        let third = r.full_summaries(1);
        assert_eq!(third.len(), 1);
        let SummaryPayload::Dft { updates, .. } = &third[0] else {
            panic!("expected DFT payload")
        };
        assert!(!updates.is_empty() && updates.len() <= 32);
    }

    #[test]
    fn piggyback_requires_prior_sync_and_big_change() {
        let mut r = DftRouter::new(test_config(0, 2), false);
        fill(&mut r, StreamId::R, &[5; 200]);
        assert!(r.piggyback(1).is_empty(), "no snapshot yet");
        let _ = r.full_summaries(1);
        assert!(r.piggyback(1).is_empty(), "nothing changed since sync");
        fill(&mut r, StreamId::R, &[9; 200]);
        let pb = r.piggyback(1);
        assert_eq!(pb.len(), 1, "one stream changed beyond tau");
        let SummaryPayload::Dft { updates, .. } = &pb[0] else {
            panic!("expected DFT payload")
        };
        assert_eq!(updates.len(), 1, "piggyback ships a single coefficient");
    }

    #[test]
    fn out_of_range_summary_indices_are_counted_not_applied() {
        // test_config retains 32 coefficients: indices ≥ 32 are the
        // signature of a version-skewed or corrupted peer and must be
        // dropped (and reported), never silently part-applied.
        let mut r = DftRouter::new(test_config(0, 2), true);
        let payload = SummaryPayload::Dft {
            stream: StreamId::S,
            signal_len: 256,
            updates: vec![
                CoeffUpdate {
                    index: 3,
                    value: Complex64::new(8.0, -2.0),
                },
                CoeffUpdate {
                    index: 32,
                    value: Complex64::new(1.0, 1.0),
                },
                CoeffUpdate {
                    index: u16::MAX,
                    value: Complex64::new(5.0, 5.0),
                },
            ],
        };
        let dropped = r.apply_summary(1, &payload);
        assert_eq!(dropped, 2, "two indices fall outside the prefix");
        let coeffs = r.remote[1][StreamId::S.index()].as_ref().unwrap();
        assert_eq!(coeffs.len(), 32, "buffer never grows for bad indices");
        assert_eq!(coeffs[3], Complex64::new(8.0, -2.0), "valid update lands");
        // The reconstruction absorbed exactly the valid update.
        let full = dsj_dft::CompressedDft::from_prefix(coeffs.clone(), 256).reconstruct();
        for (key, b) in full.iter().enumerate() {
            let a = r.recon_bucket(1, StreamId::S.index(), key).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
        // A fully in-range payload reports zero drops.
        let ok = SummaryPayload::Dft {
            stream: StreamId::S,
            signal_len: 256,
            updates: vec![CoeffUpdate {
                index: 0,
                value: Complex64::new(2.0, 0.0),
            }],
        };
        assert_eq!(r.apply_summary(1, &ok), 0);
    }

    #[test]
    fn incremental_recon_matches_full_reconstruction_across_exchanges() {
        // Full summaries, deltas and piggybacks all flow through the
        // incremental path; after every exchange the cached reconstruction
        // must equal a from-scratch inverse DFT of the remote prefix.
        let mut n0 = DftRouter::new(test_config(0, 2), true);
        let mut n1 = DftRouter::new(test_config(1, 2), true);
        let check = |n0: &mut DftRouter| {
            for s in [StreamId::R.index(), StreamId::S.index()] {
                let Some(coeffs) = n0.remote[1][s].clone() else {
                    continue;
                };
                let full = dsj_dft::CompressedDft::from_prefix(coeffs, 256).reconstruct();
                for (i, b) in full.iter().enumerate() {
                    let a = n0.recon_bucket(1, s, i).unwrap();
                    assert!((a - b).abs() < 1e-6, "bucket {i}: {a} vs {b}");
                }
            }
        };
        fill(
            &mut n1,
            StreamId::S,
            &(0..64).map(|i| 30 + i % 7).collect::<Vec<_>>(),
        );
        exchange(&mut n1, 1, &mut n0);
        check(&mut n0);
        // Evictions and fresh keys produce a sparse delta on the next sync.
        fill(&mut n1, StreamId::S, &[100; 48]);
        exchange(&mut n1, 1, &mut n0);
        check(&mut n0);
        // A piggyback ships a single coefficient through the same path.
        fill(&mut n1, StreamId::S, &[200; 300]);
        for p in n1.piggyback(0) {
            n0.apply_summary(1, &p);
        }
        check(&mut n0);
    }

    #[test]
    fn out_of_domain_key_routes_without_panic() {
        // The recon membership pass must tolerate keys beyond the domain
        // (ingest drops them, but the hot path is panic-free regardless).
        let mut n0 = DftRouter::new(test_config(0, 3), true);
        let mut n1 = DftRouter::new(test_config(1, 3), true);
        fill(&mut n1, StreamId::S, &[10; 40]);
        fill(&mut n0, StreamId::R, &(0..40).collect::<Vec<_>>());
        exchange(&mut n1, 1, &mut n0);
        let mut rng = rng();
        for _ in 0..50 {
            let route = n0.route(StreamId::R, 9_999, 1.0, &mut rng);
            // No reconstruction bucket exists, so membership never fires.
            assert!(!route.peers.contains(&0), "never routes to self");
        }
    }

    #[test]
    fn reconstruction_tracks_remote_window() {
        let mut n0 = DftRouter::new(test_config(0, 2), true);
        let mut n1 = DftRouter::new(test_config(1, 2), true);
        // A smooth-ish window: keys concentrated in one region.
        let keys: Vec<u32> = (0..64).map(|i| 40 + (i % 5)).collect();
        fill(&mut n1, StreamId::S, &keys);
        exchange(&mut n1, 1, &mut n0);
        // Keys present ~12.8 times each reconstruct to large estimates.
        for k in 40..45 {
            let r = n0.recon_bucket(1, StreamId::S.index(), k).unwrap();
            assert!(r > 0.5, "bucket {k} = {r}");
        }
    }
}
